//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives with parking_lot's ergonomics: `lock()` /
//! `read()` / `write()` return guards directly (poisoning is swallowed, as
//! parking_lot has no poisoning).

#![forbid(unsafe_code)]

use std::fmt;

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_unsized_coercion() {
        use std::sync::Arc;
        let m: Arc<Mutex<dyn fmt::Debug + Send>> = Arc::new(Mutex::new(7u8));
        assert!(format!("{:?}", &*m.lock()).contains('7'));
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
