//! Hand-rolled derive macros for the in-tree `serde` stub.
//!
//! The build environment has no registry access, so `syn`/`quote` are not
//! available; the item is parsed directly from the `proc_macro` token stream.
//! Supported shapes (everything this workspace derives on):
//!
//! * unit / tuple / named-field structs,
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default representation),
//! * explicit discriminants on unit variants (ignored),
//! * doc comments and other attributes on items, fields and variants.
//!
//! Generic parameters and `#[serde(...)]` attributes are intentionally
//! unsupported and produce a compile error naming this crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Derives `serde::Serialize` (value-tree flavour) for structs and enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

/// Derives `serde::Deserialize` (value-tree flavour) for structs and enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected item name, found `{other}`"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic type `{name}` is not supported by the in-tree serde stub");
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: unexpected enum body for `{name}`: {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]` attribute (doc comments arrive in this form too).
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            // `pub` optionally followed by `(crate)` / `(super)` / `(in ...)`.
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Splits a token sequence on top-level commas, treating `<...>` generic
/// argument lists (which are *not* token groups) as nesting.  A `>` that is
/// part of `->` does not close a generic list.
fn split_top_level_commas(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0usize;
    let mut prev_dash = false;
    for tok in stream {
        let mut this_dash = false;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' if !prev_dash => angle_depth = angle_depth.saturating_sub(1),
                '-' => this_dash = true,
                ',' if angle_depth == 0 => {
                    chunks.push(Vec::new());
                    prev_dash = false;
                    continue;
                }
                _ => {}
            }
        }
        prev_dash = this_dash;
        chunks.last_mut().expect("chunks is never empty").push(tok);
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            match chunk.get(i) {
                Some(TokenTree::Ident(id)) => {
                    let s = id.to_string();
                    s.strip_prefix("r#").unwrap_or(&s).to_owned()
                }
                other => panic!("serde_derive: expected field name, found {other:?}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level_commas(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    split_top_level_commas(stream)
        .into_iter()
        .map(|chunk| {
            let mut i = 0;
            skip_attrs_and_vis(&chunk, &mut i);
            let name = match chunk.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde_derive: expected variant name, found {other:?}"),
            };
            i += 1;
            // Payload group, explicit discriminant (`= expr`, ignored) or unit.
            let fields = match chunk.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            (name, fields)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Codegen (string-based; parsed back into a TokenStream at the end)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_owned(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
                Fields::Named(names) => obj_literal_from_self(names),
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => ::serde::Value::String(::std::string::String::from(\"{vname}\")),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let content = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_owned()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), {content})]),",
                            binds.join(", ")
                        )
                    }
                    Fields::Named(fnames) => {
                        let pairs: Vec<String> = fnames
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Object(::std::vec![{}]))]),",
                            fnames.join(", "),
                            pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn obj_literal_from_self(names: &[String]) -> String {
    let pairs: Vec<String> = names
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
            )
        })
        .collect();
    format!("::serde::Value::Object(::std::vec![{}])", pairs.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "let items = v.as_array_n({n})?;\n\
                         ::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Fields::Named(fnames) => {
                    let inits: Vec<String> = fnames
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(v.field_or_null(\"{f}\"))\
                                 .map_err(|e| e.context(\"{name}.{f}\"))?"
                            )
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {body}\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(vname, _)| {
                    format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(vname, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(content).map_err(|e| e.context(\"{name}::{vname}\"))?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        Some(format!(
                            "\"{vname}\" => {{ let items = content.as_array_n({n})?; ::std::result::Result::Ok({name}::{vname}({})) }},",
                            items.join(", ")
                        ))
                    }
                    Fields::Named(fnames) => {
                        let inits: Vec<String> = fnames
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(content.field_or_null(\"{f}\")).map_err(|e| e.context(\"{name}::{vname}.{f}\"))?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname} {{ {} }}),",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::new(\
                                     ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (tag, content) = &fields[0];\n\
                                 let _ = content;\n\
                                 match tag.as_str() {{\n\
                                     {}\n\
                                     other => ::std::result::Result::Err(::serde::DeError::new(\
                                         ::std::format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                                 }}\n\
                             }},\n\
                             other => ::std::result::Result::Err(::serde::DeError::new(\
                                 ::std::format!(\"expected {name} variant, got {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    }
}
