//! Offline stand-in for `criterion`.
//!
//! Provides the macro/API surface this workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`, `Bencher`,
//! `BenchmarkGroup`, `BenchmarkId`, `black_box`) backed by a simple
//! wall-clock timing loop: warm-up, then `sample_size` timed samples, then a
//! mean/min report on stdout.  There is no statistics engine, plotting or
//! baseline storage — the point is that `cargo bench` compiles and produces
//! honest per-iteration timings offline.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver configured by `criterion_group!`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1, "sample_size must be at least 1");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            config: self.clone(),
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Sets the target measurement time for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Sets the warm-up time for benchmarks in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    /// Runs a benchmark identified by `id` in this group.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.0);
        let mut bencher = Bencher {
            samples: Vec::new(),
            config: self.criterion.clone(),
        };
        f(&mut bencher);
        bencher.report(&label);
        self
    }

    /// Runs a benchmark that receives a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let mut bencher = Bencher {
            samples: Vec::new(),
            config: self.criterion.clone(),
        };
        f(&mut bencher, input);
        bencher.report(&label);
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// Identifier for a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    config: Criterion,
}

impl Bencher {
    /// Times `routine`, warm-up first, then `sample_size` samples sized so
    /// total sampling stays near the configured measurement time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up budget is spent, measuring the mean
        // iteration cost so sample sizes can be chosen.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let mean = warm_start.elapsed() / warm_iters.max(1) as u32;

        // Pick iterations-per-sample so that all samples fit the budget.
        let per_sample_budget = self.config.measurement_time / self.config.sample_size as u32;
        let iters_per_sample = if mean.is_zero() {
            1000
        } else {
            (per_sample_budget.as_nanos() / mean.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        self.samples.clear();
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<50} (no samples collected)");
            return;
        }
        let min = self.samples.iter().min().expect("non-empty samples");
        let max = self.samples.iter().max().expect("non-empty samples");
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "{name:<50} time: [{} {} {}]",
            format_duration(*min),
            format_duration(mean),
            format_duration(*max),
        );
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Defines a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines the `main` function running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
