//! Offline stand-in for `serde_json`.
//!
//! Renders the in-tree [`serde::Value`] model to JSON text and parses JSON
//! text back, exposing the four entry points the workspace uses:
//! [`to_string`], [`to_string_pretty`], [`from_str`] and [`Error`] — plus
//! the [`stream`] and [`read`] modules, a streaming writer/reader pair that
//! serializes and deserializes without building a `Value` tree (the
//! report/trace/checkpoint hot path).

#![forbid(unsafe_code)]

use std::fmt;

pub mod read;
pub mod stream;

pub use read::{from_str_streamed, JsonStreamReader, StreamDeserialize};
pub use serde::Value;
pub use stream::{
    to_string_pretty_streamed, to_string_streamed, JsonStreamWriter, StreamSerialize,
};

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Converts `value` into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Builds a `T` from a [`Value`] tree.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Parses a JSON string into a `T`.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest representation that round-trips,
                // and always includes a `.0` for integral floats.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain UTF-8 content without escapes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for json in [
            "null",
            "true",
            "false",
            "0",
            "42",
            "-17",
            "3.5",
            "\"hi\\n\"",
        ] {
            let v: Value = parse_value(json).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, json);
        }
    }

    #[test]
    fn nested_round_trip() {
        let json = r#"{"a":[1,2,{"b":"x"}],"c":null}"#;
        let v = parse_value(json).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, None, 0);
        assert_eq!(out, json);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse_value(r#"{"a":[1,2],"b":{"c":true}}"#).unwrap();
        let mut pretty = String::new();
        write_value(&mut pretty, &v, Some(2), 0);
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("\"unterminated").is_err());
        assert!(parse_value("12 34").is_err());
    }
}
