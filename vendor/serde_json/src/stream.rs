//! Streaming JSON writer: serialize without building a [`Value`] tree.
//!
//! The default serialization path of this stub renders a value into an
//! owned [`Value`] tree and then prints it — fine for small reports, but a
//! whole packet trace serialized that way materializes every frame twice.
//! [`JsonStreamWriter`] writes JSON text directly: callers push keys and
//! scalars in document order and the writer handles separators, indentation
//! and lazy `{}`/`[]` collapsing, producing **byte-identical** output to
//! [`crate::to_string`]/[`crate::to_string_pretty`] over the equivalent
//! tree (the equivalence is pinned by tests on the report path).
//!
//! Types opt in through [`StreamSerialize`], the streaming mirror of
//! `serde::Serialize`; containers and primitives stream out of the box.

use serde::Value;

/// JSON text sink with automatic separators, indentation and lazy empty
/// containers.
#[derive(Debug)]
pub struct JsonStreamWriter {
    out: String,
    indent: Option<usize>,
    stack: Vec<Frame>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    Object,
    Array,
}

#[derive(Debug)]
struct Frame {
    kind: Kind,
    items: usize,
    /// The opening bracket is written lazily so empty containers collapse to
    /// `{}` / `[]` exactly like the tree writer's output.
    opened: bool,
}

impl JsonStreamWriter {
    /// A compact writer (no whitespace), matching [`crate::to_string`].
    pub fn compact() -> Self {
        JsonStreamWriter {
            out: String::new(),
            indent: None,
            stack: Vec::new(),
        }
    }

    /// A pretty writer (two-space indent), matching
    /// [`crate::to_string_pretty`].
    pub fn pretty() -> Self {
        JsonStreamWriter {
            out: String::new(),
            indent: Some(2),
            stack: Vec::new(),
        }
    }

    /// Finishes the document and returns the JSON text.
    ///
    /// # Panics
    /// Panics if a container is still open.
    pub fn finish(self) -> String {
        assert!(
            self.stack.is_empty(),
            "unbalanced stream: {} container(s) still open",
            self.stack.len()
        );
        self.out
    }

    fn newline_indent(&mut self, depth: usize) {
        if let Some(width) = self.indent {
            self.out.push('\n');
            self.out.extend(std::iter::repeat_n(' ', width * depth));
        }
    }

    /// Opens the innermost container's bracket if still pending and writes
    /// the separator + indentation for its next element.
    fn element_prelude(&mut self) {
        let depth = self.stack.len();
        if let Some(frame) = self.stack.last_mut() {
            if !frame.opened {
                frame.opened = true;
                self.out.push(match frame.kind {
                    Kind::Object => '{',
                    Kind::Array => '[',
                });
            }
            let first = frame.items == 0;
            frame.items += 1;
            if !first {
                self.out.push(',');
            }
            self.newline_indent(depth);
        }
    }

    /// Bookkeeping before a value lands: array elements get separators here;
    /// object values were already placed by their [`JsonStreamWriter::key`].
    fn value_prelude(&mut self) {
        if matches!(self.stack.last(), Some(f) if f.kind == Kind::Array) {
            self.element_prelude();
        }
    }

    /// Writes the key of the next object field.
    ///
    /// # Panics
    /// Panics unless an object is the innermost open container.
    pub fn key(&mut self, key: &str) -> &mut Self {
        assert!(
            matches!(self.stack.last(), Some(f) if f.kind == Kind::Object),
            "key() outside an object"
        );
        self.element_prelude();
        write_json_string(&mut self.out, key);
        self.out.push(':');
        if self.indent.is_some() {
            self.out.push(' ');
        }
        self
    }

    /// Opens an object value.
    pub fn begin_object(&mut self) -> &mut Self {
        self.value_prelude();
        self.stack.push(Frame {
            kind: Kind::Object,
            items: 0,
            opened: false,
        });
        self
    }

    /// Closes the innermost object.
    pub fn end_object(&mut self) -> &mut Self {
        let frame = self.stack.pop().expect("end_object with nothing open");
        assert_eq!(frame.kind, Kind::Object, "end_object closing an array");
        if frame.opened {
            let depth = self.stack.len();
            self.newline_indent(depth);
            self.out.push('}');
        } else {
            self.out.push_str("{}");
        }
        self
    }

    /// Opens an array value.
    pub fn begin_array(&mut self) -> &mut Self {
        self.value_prelude();
        self.stack.push(Frame {
            kind: Kind::Array,
            items: 0,
            opened: false,
        });
        self
    }

    /// Closes the innermost array.
    pub fn end_array(&mut self) -> &mut Self {
        let frame = self.stack.pop().expect("end_array with nothing open");
        assert_eq!(frame.kind, Kind::Array, "end_array closing an object");
        if frame.opened {
            let depth = self.stack.len();
            self.newline_indent(depth);
            self.out.push(']');
        } else {
            self.out.push_str("[]");
        }
        self
    }

    /// Writes `null`.
    pub fn null(&mut self) -> &mut Self {
        self.value_prelude();
        self.out.push_str("null");
        self
    }

    /// Writes a boolean.
    pub fn bool(&mut self, b: bool) -> &mut Self {
        self.value_prelude();
        self.out.push_str(if b { "true" } else { "false" });
        self
    }

    /// Writes a non-negative integer.
    pub fn u64(&mut self, n: u64) -> &mut Self {
        self.value_prelude();
        let mut buf = itoa_buf();
        self.out.push_str(format_u64(&mut buf, n));
        self
    }

    /// Writes a signed integer (non-negative values print like `u64`, as the
    /// tree writer does).
    pub fn i64(&mut self, n: i64) -> &mut Self {
        self.value_prelude();
        if n >= 0 {
            return self.u64(n as u64);
        }
        self.out.push_str(&n.to_string());
        self
    }

    /// Writes a float (`{:?}` shortest round-trip form; non-finite → null).
    pub fn f64(&mut self, x: f64) -> &mut Self {
        self.value_prelude();
        if x.is_finite() {
            self.out.push_str(&format!("{x:?}"));
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Writes a string value (escaped).
    pub fn string(&mut self, s: &str) -> &mut Self {
        self.value_prelude();
        write_json_string(&mut self.out, s);
        self
    }

    /// Streams any [`StreamSerialize`] value at the current position.
    pub fn value<T: StreamSerialize + ?Sized>(&mut self, v: &T) -> &mut Self {
        v.stream(self);
        self
    }

    /// Convenience: `key` followed by the streamed value.
    pub fn field<T: StreamSerialize + ?Sized>(&mut self, key: &str, v: &T) -> &mut Self {
        self.key(key);
        v.stream(self);
        self
    }

    /// Streams a pre-built [`Value`] tree (escape hatch for hand-assembled
    /// documents like the bench reports).
    pub fn tree(&mut self, v: &Value) -> &mut Self {
        match v {
            Value::Null => self.null(),
            Value::Bool(b) => self.bool(*b),
            Value::U64(n) => self.u64(*n),
            Value::I64(n) => self.i64(*n),
            Value::F64(x) => self.f64(*x),
            Value::String(s) => self.string(s),
            Value::Array(items) => {
                self.begin_array();
                for item in items {
                    self.tree(item);
                }
                self.end_array()
            }
            Value::Object(fields) => {
                self.begin_object();
                for (k, item) in fields {
                    self.key(k);
                    self.tree(item);
                }
                self.end_object()
            }
        }
    }
}

/// Small stack buffer for integer formatting without a heap allocation.
fn itoa_buf() -> [u8; 20] {
    [0; 20]
}

fn format_u64(buf: &mut [u8; 20], mut n: u64) -> &str {
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    std::str::from_utf8(&buf[i..]).expect("digits are ASCII")
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// The streaming mirror of `serde::Serialize`: write yourself into a
/// [`JsonStreamWriter`], producing the same document the derived
/// `to_value()` tree would.
pub trait StreamSerialize {
    /// Streams `self` into `w`.
    fn stream(&self, w: &mut JsonStreamWriter);
}

/// Serializes `value` as a compact JSON string through the streaming
/// writer.
pub fn to_string_streamed<T: StreamSerialize + ?Sized>(value: &T) -> String {
    let mut w = JsonStreamWriter::compact();
    value.stream(&mut w);
    w.finish()
}

/// Serializes `value` as a pretty-printed JSON string (two-space indent)
/// through the streaming writer.
pub fn to_string_pretty_streamed<T: StreamSerialize + ?Sized>(value: &T) -> String {
    let mut w = JsonStreamWriter::pretty();
    value.stream(&mut w);
    w.finish()
}

// ---------------------------------------------------------------------------
// Primitive and container impls, mirroring the `serde::Serialize` encodings.
// ---------------------------------------------------------------------------

macro_rules! stream_unsigned {
    ($($t:ty),*) => {$(
        impl StreamSerialize for $t {
            fn stream(&self, w: &mut JsonStreamWriter) {
                w.u64(*self as u64);
            }
        }
    )*};
}
stream_unsigned!(u8, u16, u32, u64, usize);

macro_rules! stream_signed {
    ($($t:ty),*) => {$(
        impl StreamSerialize for $t {
            fn stream(&self, w: &mut JsonStreamWriter) {
                w.i64(*self as i64);
            }
        }
    )*};
}
stream_signed!(i8, i16, i32, i64, isize);

impl StreamSerialize for f64 {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.f64(*self);
    }
}

impl StreamSerialize for f32 {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.f64(f64::from(*self));
    }
}

impl StreamSerialize for bool {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.bool(*self);
    }
}

impl StreamSerialize for str {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.string(self);
    }
}

impl StreamSerialize for String {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.string(self);
    }
}

impl<T: StreamSerialize + ?Sized> StreamSerialize for &T {
    fn stream(&self, w: &mut JsonStreamWriter) {
        (**self).stream(w);
    }
}

impl<T: StreamSerialize> StreamSerialize for Option<T> {
    fn stream(&self, w: &mut JsonStreamWriter) {
        match self {
            Some(v) => v.stream(w),
            None => {
                w.null();
            }
        }
    }
}

impl<T: StreamSerialize> StreamSerialize for [T] {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_array();
        for item in self {
            item.stream(w);
        }
        w.end_array();
    }
}

impl<T: StreamSerialize> StreamSerialize for Vec<T> {
    fn stream(&self, w: &mut JsonStreamWriter) {
        self.as_slice().stream(w);
    }
}

impl<T: StreamSerialize, const N: usize> StreamSerialize for [T; N] {
    fn stream(&self, w: &mut JsonStreamWriter) {
        self.as_slice().stream(w);
    }
}

impl StreamSerialize for Value {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.tree(self);
    }
}

/// Implements [`StreamSerialize`] for unit-only enums whose derived
/// `serde::Serialize` encodes the variant name as a string — exactly what
/// the derived `Debug` of such an enum prints.
#[macro_export]
macro_rules! stream_unit_enum {
    ($($t:ty),* $(,)?) => {$(
        impl $crate::StreamSerialize for $t {
            fn stream(&self, w: &mut $crate::JsonStreamWriter) {
                w.string(&::std::format!("{self:?}"));
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_match_the_tree_writer() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::U64(42),
            Value::I64(-17),
            Value::F64(3.5),
            Value::F64(2.0),
            Value::String("hi\n\"there\"".to_owned()),
        ] {
            assert_eq!(to_string_streamed(&v), crate::to_string(&v).unwrap());
            assert_eq!(
                to_string_pretty_streamed(&v),
                crate::to_string_pretty(&v).unwrap()
            );
        }
    }

    #[test]
    fn nested_documents_match_the_tree_writer() {
        let v: Value =
            crate::from_str(r#"{"a":[1,2,{"b":"x","c":[]}],"d":null,"e":{},"f":{"g":[[],[1]]}}"#)
                .unwrap();
        assert_eq!(to_string_streamed(&v), crate::to_string(&v).unwrap());
        assert_eq!(
            to_string_pretty_streamed(&v),
            crate::to_string_pretty(&v).unwrap()
        );
    }

    #[test]
    fn manual_streaming_produces_the_expected_document() {
        let mut w = JsonStreamWriter::compact();
        w.begin_object();
        w.field("name", "probe");
        w.key("counts").begin_array().u64(1).u64(2).end_array();
        w.key("empty").begin_object().end_object();
        w.field("ratio", &0.5f64);
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"probe","counts":[1,2],"empty":{},"ratio":0.5}"#
        );
    }

    #[test]
    fn containers_and_options_stream_like_their_tree_forms() {
        let items: Vec<u16> = vec![7, 9];
        assert_eq!(
            to_string_streamed(&items),
            crate::to_string(&items).unwrap()
        );
        let none: Option<u8> = None;
        assert_eq!(to_string_streamed(&none), "null");
        let some: Option<String> = Some("x".into());
        assert_eq!(to_string_streamed(&some), "\"x\"");
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_documents_are_rejected() {
        let mut w = JsonStreamWriter::compact();
        w.begin_object();
        w.finish();
    }
}
