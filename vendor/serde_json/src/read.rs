//! Streaming JSON reader: deserialize without building a [`Value`] tree.
//!
//! The counterpart of [`crate::stream`]: where [`crate::JsonStreamWriter`]
//! pushes keys and scalars in document order, [`JsonStreamReader`] pulls
//! them back in the same order. Callers walk the document with
//! `begin_object`/`next_key`/`begin_array`/`array_next` plus scalar reads,
//! and the reader handles separators and whitespace — it accepts both the
//! compact and the pretty form, and anything else the tree parser accepts.
//!
//! Types opt in through [`StreamDeserialize`], the streaming mirror of
//! `serde::Deserialize`; containers and primitives stream out of the box.
//! For every type in the workspace the invariant is: the bytes produced by
//! its `StreamSerialize` impl, fed through its `StreamDeserialize` impl and
//! re-serialized, are **byte-identical** to the original (pinned by the
//! round-trip tests on the checkpoint/replay path).

use serde::Value;

use crate::Error;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    Object,
    Array,
}

#[derive(Debug)]
struct Frame {
    kind: Kind,
    items: usize,
}

/// JSON text source with automatic separator and whitespace handling.
///
/// The reader is *pull-based*: nothing is parsed until asked for, and no
/// intermediate tree is built. Container framing is tracked on an explicit
/// stack so mismatched `begin_*`/`end_*` calls fail loudly instead of
/// silently misparsing.
#[derive(Debug)]
pub struct JsonStreamReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    stack: Vec<Frame>,
}

impl<'a> JsonStreamReader<'a> {
    /// Creates a reader over `input`.
    pub fn new(input: &'a str) -> Self {
        JsonStreamReader {
            bytes: input.as_bytes(),
            pos: 0,
            stack: Vec::new(),
        }
    }

    /// The current byte offset (for error context in callers).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// `true` once every container is closed and only trailing whitespace
    /// remains.
    pub fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.stack.is_empty() && self.pos == self.bytes.len()
    }

    fn err(&self, msg: impl Into<String>) -> Error {
        Error::new(format!("{} at byte {}", msg.into(), self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{}`, found {:?}",
                b as char,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    /// Consumes the opening `{` of an object value.
    pub fn begin_object(&mut self) -> Result<&mut Self, Error> {
        self.skip_ws();
        self.expect(b'{')?;
        self.stack.push(Frame {
            kind: Kind::Object,
            items: 0,
        });
        Ok(self)
    }

    /// Advances to the next object field and returns its key, or `None`
    /// after consuming the closing `}` (which also closes the frame).
    pub fn next_key(&mut self) -> Result<Option<String>, Error> {
        match self.stack.last() {
            Some(f) if f.kind == Kind::Object => {}
            _ => return Err(self.err("next_key() outside an object")),
        }
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.stack.pop();
            return Ok(None);
        }
        if self.stack.last().map(|f| f.items) != Some(0) {
            self.expect(b',')?;
            self.skip_ws();
        }
        let key = self.string()?;
        self.skip_ws();
        self.expect(b':')?;
        if let Some(frame) = self.stack.last_mut() {
            frame.items += 1;
        }
        Ok(Some(key))
    }

    /// Reads the next object field and requires its key to be `expected` —
    /// the reading mirror of [`crate::JsonStreamWriter::key`] for types
    /// whose field order is fixed.
    pub fn key(&mut self, expected: &str) -> Result<&mut Self, Error> {
        match self.next_key()? {
            Some(key) if key == expected => Ok(self),
            Some(key) => Err(self.err(format!("expected key `{expected}`, found `{key}`"))),
            None => Err(self.err(format!("expected key `{expected}`, found end of object"))),
        }
    }

    /// Closes the innermost object, requiring no fields remain.
    pub fn end_object(&mut self) -> Result<&mut Self, Error> {
        match self.next_key()? {
            None => Ok(self),
            Some(key) => Err(self.err(format!("unexpected trailing key `{key}`"))),
        }
    }

    /// Consumes the opening `[` of an array value.
    pub fn begin_array(&mut self) -> Result<&mut Self, Error> {
        self.skip_ws();
        self.expect(b'[')?;
        self.stack.push(Frame {
            kind: Kind::Array,
            items: 0,
        });
        Ok(self)
    }

    /// Advances to the next array element: `true` when one is ready to be
    /// read, `false` after consuming the closing `]` (which also closes the
    /// frame).
    pub fn array_next(&mut self) -> Result<bool, Error> {
        match self.stack.last() {
            Some(f) if f.kind == Kind::Array => {}
            _ => return Err(self.err("array_next() outside an array")),
        }
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.stack.pop();
            return Ok(false);
        }
        if self.stack.last().map(|f| f.items) != Some(0) {
            self.expect(b',')?;
        }
        if let Some(frame) = self.stack.last_mut() {
            frame.items += 1;
        }
        Ok(true)
    }

    /// Closes the innermost array, requiring no elements remain.
    pub fn end_array(&mut self) -> Result<&mut Self, Error> {
        if self.array_next()? {
            Err(self.err("unexpected trailing array element"))
        } else {
            Ok(self)
        }
    }

    /// Reads `null`.
    pub fn null(&mut self) -> Result<(), Error> {
        self.skip_ws();
        if self.eat_literal("null") {
            Ok(())
        } else {
            Err(self.err("expected `null`"))
        }
    }

    /// Consumes `null` if it is the next value; returns whether it did.
    /// The reading mirror of `Option`'s streamed encoding.
    pub fn try_null(&mut self) -> bool {
        self.skip_ws();
        self.eat_literal("null")
    }

    /// Reads a boolean.
    pub fn bool_value(&mut self) -> Result<bool, Error> {
        self.skip_ws();
        if self.eat_literal("true") {
            Ok(true)
        } else if self.eat_literal("false") {
            Ok(false)
        } else {
            Err(self.err("expected `true` or `false`"))
        }
    }

    /// Consumes one JSON number token and returns its text.
    fn number_token(&mut self) -> Result<(&'a str, bool), Error> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        if self.pos == start {
            return Err(self.err("expected a number"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        Ok((text, is_float))
    }

    /// Reads a non-negative integer.
    pub fn u64(&mut self) -> Result<u64, Error> {
        let (text, is_float) = self.number_token()?;
        if is_float {
            return Err(self.err(format!("expected an integer, found `{text}`")));
        }
        text.parse::<u64>()
            .map_err(|_| self.err(format!("invalid unsigned integer `{text}`")))
    }

    /// Reads a signed integer.
    pub fn i64(&mut self) -> Result<i64, Error> {
        let (text, is_float) = self.number_token()?;
        if is_float {
            return Err(self.err(format!("expected an integer, found `{text}`")));
        }
        text.parse::<i64>()
            .map_err(|_| self.err(format!("invalid integer `{text}`")))
    }

    /// Reads a float. `null` reads as NaN — the writer encodes non-finite
    /// floats as `null`, so this keeps the round trip total.
    pub fn f64(&mut self) -> Result<f64, Error> {
        self.skip_ws();
        if self.eat_literal("null") {
            return Ok(f64::NAN);
        }
        let (text, _) = self.number_token()?;
        text.parse::<f64>()
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }

    /// Reads a string value (unescaped).
    pub fn string(&mut self) -> Result<String, Error> {
        self.skip_ws();
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.err("unterminated escape sequence"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (low.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        let chunk = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    /// Reads any [`StreamDeserialize`] value at the current position.
    pub fn value<T: StreamDeserialize>(&mut self) -> Result<T, Error> {
        T::stream_from(self)
    }

    /// Reads one whole value of any shape and discards it — for skipping
    /// fields a reader does not care about.
    pub fn skip_value(&mut self) -> Result<(), Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.begin_object()?;
                while self.next_key()?.is_some() {
                    self.skip_value()?;
                }
                Ok(())
            }
            Some(b'[') => {
                self.begin_array()?;
                while self.array_next()? {
                    self.skip_value()?;
                }
                Ok(())
            }
            Some(b'"') => self.string().map(drop),
            Some(b't') | Some(b'f') => self.bool_value().map(drop),
            Some(b'n') => self.null(),
            _ => self.number_token().map(drop),
        }
    }

    /// Reads one whole value into a [`Value`] tree (escape hatch for
    /// hand-assembled documents; numbers narrow exactly like
    /// [`crate::from_str`]).
    pub fn tree(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => {
                self.begin_object()?;
                let mut fields = Vec::new();
                while let Some(key) = self.next_key()? {
                    fields.push((key, self.tree()?));
                }
                Ok(Value::Object(fields))
            }
            Some(b'[') => {
                self.begin_array()?;
                let mut items = Vec::new();
                while self.array_next()? {
                    items.push(self.tree()?);
                }
                Ok(Value::Array(items))
            }
            Some(b'"') => self.string().map(Value::String),
            Some(b't') | Some(b'f') => self.bool_value().map(Value::Bool),
            Some(b'n') => self.null().map(|()| Value::Null),
            _ => {
                let (text, is_float) = self.number_token()?;
                if !is_float {
                    if let Ok(n) = text.parse::<u64>() {
                        return Ok(Value::U64(n));
                    }
                    if let Ok(n) = text.parse::<i64>() {
                        return Ok(Value::I64(n));
                    }
                }
                text.parse::<f64>()
                    .map(Value::F64)
                    .map_err(|_| self.err(format!("invalid number `{text}`")))
            }
        }
    }
}

/// The streaming mirror of `serde::Deserialize`: rebuild yourself from a
/// [`JsonStreamReader`], consuming exactly the document your
/// [`crate::StreamSerialize`] impl writes.
pub trait StreamDeserialize: Sized {
    /// Reads one `Self` from `r`.
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error>;
}

/// Deserializes a `T` from a complete JSON document through the streaming
/// reader, rejecting trailing content.
pub fn from_str_streamed<T: StreamDeserialize>(input: &str) -> Result<T, Error> {
    let mut r = JsonStreamReader::new(input);
    let value = T::stream_from(&mut r)?;
    if !r.at_end() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            r.position()
        )));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Primitive and container impls, mirroring the `StreamSerialize` encodings.
// ---------------------------------------------------------------------------

macro_rules! read_unsigned {
    ($($t:ty),*) => {$(
        impl StreamDeserialize for $t {
            fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
                let n = r.u64()?;
                <$t>::try_from(n).map_err(|_| {
                    Error::new(format!(
                        "{n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
read_unsigned!(u8, u16, u32, u64, usize);

macro_rules! read_signed {
    ($($t:ty),*) => {$(
        impl StreamDeserialize for $t {
            fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
                let n = r.i64()?;
                <$t>::try_from(n).map_err(|_| {
                    Error::new(format!(
                        "{n} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
read_signed!(i8, i16, i32, i64, isize);

impl StreamDeserialize for f64 {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        r.f64()
    }
}

impl StreamDeserialize for f32 {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        Ok(r.f64()? as f32)
    }
}

impl StreamDeserialize for bool {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        r.bool_value()
    }
}

impl StreamDeserialize for String {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        r.string()
    }
}

impl<T: StreamDeserialize> StreamDeserialize for Option<T> {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        if r.try_null() {
            Ok(None)
        } else {
            T::stream_from(r).map(Some)
        }
    }
}

impl<T: StreamDeserialize> StreamDeserialize for Vec<T> {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        let mut out = Vec::new();
        r.begin_array()?;
        while r.array_next()? {
            out.push(T::stream_from(r)?);
        }
        Ok(out)
    }
}

impl<T: StreamDeserialize, const N: usize> StreamDeserialize for [T; N] {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        let items = Vec::<T>::stream_from(r)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::new(format!("expected {N} array elements, found {len}")))
    }
}

impl StreamDeserialize for Value {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        r.tree()
    }
}

/// Implements [`StreamDeserialize`] for unit-only enums whose derived
/// `serde::Deserialize` decodes the variant from its name as a string —
/// the reading mirror of [`crate::stream_unit_enum!`].
#[macro_export]
macro_rules! stream_unit_enum_de {
    ($($t:ty),* $(,)?) => {$(
        impl $crate::StreamDeserialize for $t {
            fn stream_from(
                r: &mut $crate::JsonStreamReader<'_>,
            ) -> ::std::result::Result<Self, $crate::Error> {
                let name = r.string()?;
                ::std::result::Result::Ok(<$t as ::serde::Deserialize>::from_value(
                    &::serde::Value::String(name),
                )?)
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{to_string_pretty_streamed, to_string_streamed};

    #[test]
    fn scalars_read_back() {
        assert_eq!(from_str_streamed::<u64>("42").unwrap(), 42);
        assert_eq!(from_str_streamed::<i64>("-17").unwrap(), -17);
        assert_eq!(from_str_streamed::<u8>("255").unwrap(), 255);
        assert!(from_str_streamed::<u8>("256").is_err());
        assert_eq!(from_str_streamed::<f64>("3.5").unwrap(), 3.5);
        assert!(from_str_streamed::<f64>("null").unwrap().is_nan());
        assert!(from_str_streamed::<bool>("true").unwrap());
        assert_eq!(
            from_str_streamed::<String>(r#""hi\n\"there\"""#).unwrap(),
            "hi\n\"there\""
        );
        assert_eq!(from_str_streamed::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str_streamed::<Option<u32>>("9").unwrap(), Some(9));
    }

    #[test]
    fn containers_read_back() {
        assert_eq!(from_str_streamed::<Vec<u16>>("[7, 9]").unwrap(), vec![7, 9]);
        assert_eq!(from_str_streamed::<Vec<u16>>("[]").unwrap(), Vec::new());
        assert_eq!(from_str_streamed::<[u8; 3]>("[1,2,3]").unwrap(), [1, 2, 3]);
        assert!(from_str_streamed::<[u8; 3]>("[1,2]").is_err());
    }

    #[test]
    fn manual_walk_mirrors_the_writer() {
        let json = r#"{"name":"probe","counts":[1,2],"empty":{},"ratio":0.5}"#;
        let mut r = JsonStreamReader::new(json);
        r.begin_object().unwrap();
        r.key("name").unwrap();
        assert_eq!(r.string().unwrap(), "probe");
        r.key("counts").unwrap();
        assert_eq!(r.value::<Vec<u64>>().unwrap(), vec![1, 2]);
        r.key("empty").unwrap().begin_object().unwrap();
        r.end_object().unwrap();
        r.key("ratio").unwrap();
        assert_eq!(r.f64().unwrap(), 0.5);
        r.end_object().unwrap();
        assert!(r.at_end());
    }

    #[test]
    fn pretty_documents_parse_identically() {
        let v: Value =
            crate::from_str(r#"{"a":[1,2,{"b":"x","c":[]}],"d":null,"e":{},"f":{"g":[[],[1]]}}"#)
                .unwrap();
        let compact = to_string_streamed(&v);
        let pretty = to_string_pretty_streamed(&v);
        let from_compact: Value = from_str_streamed(&compact).unwrap();
        let from_pretty: Value = from_str_streamed(&pretty).unwrap();
        assert_eq!(from_compact, v);
        assert_eq!(from_pretty, v);
    }

    #[test]
    fn tree_numbers_narrow_like_the_tree_parser() {
        let json = r#"[0, 42, -17, 3.5, 18446744073709551615]"#;
        let streamed: Value = from_str_streamed(json).unwrap();
        let treed: Value = crate::from_str(json).unwrap();
        assert_eq!(streamed, treed);
    }

    #[test]
    fn skip_value_steps_over_anything() {
        let json = r#"{"skip":{"a":[1,{"b":null}],"c":"x"},"keep":7}"#;
        let mut r = JsonStreamReader::new(json);
        r.begin_object().unwrap();
        loop {
            match r.next_key().unwrap() {
                Some(key) if key == "keep" => {
                    assert_eq!(r.u64().unwrap(), 7);
                }
                Some(_) => r.skip_value().unwrap(),
                None => break,
            }
        }
        assert!(r.at_end());
    }

    #[test]
    fn mismatched_framing_is_rejected() {
        assert!(JsonStreamReader::new("[1]").begin_object().is_err());
        let mut r = JsonStreamReader::new("{\"a\":1}");
        assert!(r.array_next().is_err());
        let mut r = JsonStreamReader::new("{\"a\":1,\"b\":2}");
        r.begin_object().unwrap();
        r.key("a").unwrap();
        r.u64().unwrap();
        assert!(r.end_object().is_err());
        assert!(from_str_streamed::<u64>("42 7").is_err());
    }
}
