//! Offline stand-in for the `serde` crate.
//!
//! The container image this repository builds in has no network access and no
//! vendored registry, so the real `serde` cannot be fetched.  This crate
//! provides the small slice of serde's surface the workspace actually uses:
//!
//! * `#[derive(Serialize, Deserialize)]` (re-exported from the sibling
//!   `serde_derive` proc-macro crate),
//! * the [`Serialize`] / [`Deserialize`] traits, and
//! * a self-describing [`Value`] tree that `serde_json` (also stubbed
//!   in-tree) renders to and parses from JSON text.
//!
//! Unlike real serde there is no visitor machinery: serialization goes
//! through an owned [`Value`] tree.  That is plenty for the report/JSON
//! round-trips this workspace performs and keeps the stub auditable.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data value — the intermediate representation between
/// Rust data structures and JSON text.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object. Insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Returns the field named `key`, or `Value::Null` when the field is
    /// absent (so `Option<T>` fields tolerate omission).
    pub fn field_or_null(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }

    /// Returns the elements of an array value.
    pub fn as_array(&self) -> Result<&[Value], DeError> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(DeError::new(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }

    /// Returns the elements of an array value, requiring an exact length.
    pub fn as_array_n(&self, n: usize) -> Result<&[Value], DeError> {
        let items = self.as_array()?;
        if items.len() == n {
            Ok(items)
        } else {
            Err(DeError::new(format!(
                "expected array of length {n}, got {}",
                items.len()
            )))
        }
    }

    /// Short human-readable tag for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] cannot be converted into the requested
/// Rust type.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    /// Prefixes the message with a field/variant context, for better
    /// diagnostics out of derived impls.
    pub fn context(self, ctx: &str) -> Self {
        DeError {
            msg: format!("{ctx}: {}", self.msg),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Types that can be rendered into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Attempts to build `Self` from a [`Value`].
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// A `Value` serializes to itself, so hand-built trees can be fed to the
/// `serde_json` writers directly.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = match *v {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    ref other => {
                        return Err(DeError::new(format!(
                            "expected unsigned integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match *v {
                    Value::I64(n) => n,
                    Value::U64(n) => i64::try_from(n)
                        .map_err(|_| DeError::new(format!("integer {n} out of i64 range")))?,
                    ref other => {
                        return Err(DeError::new(format!(
                            "expected integer, got {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            ref other => Err(DeError::new(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(DeError::new(format!("expected bool, got {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = v
            .as_array_n(N)?
            .iter()
            .map(T::from_value)
            .collect::<Result<_, _>>()?;
        items
            .try_into()
            .map_err(|_| DeError::new(format!("expected array of length {N}")))
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize + Eq + std::hash::Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()?.iter().map(T::from_value).collect()
    }
}

/// Maps serialize as arrays of `[key, value]` pairs so non-string keys work.
impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()?
            .iter()
            .map(|pair| {
                let kv = pair.as_array_n(2)?;
                Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
            })
            .collect()
    }
}

impl<K: Serialize + Eq + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()?
            .iter()
            .map(|pair| {
                let kv = pair.as_array_n(2)?;
                Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
            })
            .collect()
    }
}

macro_rules! impl_tuple {
    ($n:expr => $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array_n($n)?;
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(1 => A.0);
impl_tuple!(2 => A.0, B.1);
impl_tuple!(3 => A.0, B.1, C.2);
impl_tuple!(4 => A.0, B.1, C.2, D.3);

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_owned(), Value::U64(self.as_secs())),
            (
                "nanos".to_owned(),
                Value::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let secs = u64::from_value(v.field_or_null("secs"))?;
        let nanos = u32::from_value(v.field_or_null("nanos"))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u16::from_value(&42u16.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-5i32).to_value()).unwrap(), -5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_owned().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn arrays_round_trip() {
        let a = [1u8, 2, 3];
        assert_eq!(<[u8; 3]>::from_value(&a.to_value()).unwrap(), a);
        assert!(<[u8; 2]>::from_value(&a.to_value()).is_err());
    }

    #[test]
    fn options_tolerate_null_and_missing() {
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        let obj = Value::Object(vec![]);
        assert_eq!(
            Option::<u8>::from_value(obj.field_or_null("absent")).unwrap(),
            None
        );
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert!(u8::from_value(&Value::I64(-1)).is_err());
    }
}
