//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of the rand 0.8 API this workspace relies on:
//! [`RngCore`], [`SeedableRng`], the [`Rng`] extension trait with
//! `gen`/`gen_range`/`gen_bool`, and [`rngs::StdRng`].
//!
//! [`rngs::StdRng`] here is xoshiro256** seeded through SplitMix64 — a
//! well-studied, fast, deterministic generator.  It does **not** match the
//! byte streams of the real `StdRng` (ChaCha12), which is fine: the
//! workspace's own reproducibility contract is "same seed, same run", not
//! "same stream as crates.io rand".

#![forbid(unsafe_code)]

/// The core interface of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// RNGs that can be constructed deterministically from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array for [`rngs::StdRng`]).
    type Seed: Default + AsMut<[u8]>;

    /// Creates an RNG from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates an RNG by expanding a `u64` through SplitMix64, as the real
    /// rand crate documents for small seeds.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an RNG (the stand-in for rand's
/// `Standard` distribution).
pub trait StandardSample {
    /// Draws a uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_small {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}

impl_standard_small!(u8, u16, u32, i8, i16, i32);

macro_rules! impl_standard_wide {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_wide!(u64, i64, usize, isize);

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform value in `[0, span)` using widening-multiply rejection sampling
/// (unbiased, at most a handful of retries).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Convenience extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns a uniformly random value of type `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns a uniformly random value in `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool requires p in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the stand-in for rand's
    /// `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u16 = rng.gen_range(10u16..=20);
            assert!((10..=20).contains(&v));
            let w: usize = rng.gen_range(0..7usize);
            assert!(w < 7);
        }
    }

    #[test]
    fn gen_range_covers_full_u64_span() {
        let mut rng = StdRng::seed_from_u64(2);
        let v: u64 = rng.gen_range(0u64..=u64::MAX);
        let _ = v;
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 37];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
