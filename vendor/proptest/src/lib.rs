//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest surface this workspace's property
//! tests use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), integer-range and `any::<T>()`
//! strategies, `proptest::collection::vec`, and the `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed number
//! of deterministically seeded cases (seeded from the test name, so failures
//! reproduce run to run), and a failing case reports its index and message.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Config, RNG and failure types used by the generated test bodies.

    use std::fmt;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Creates a config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property within a test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError { msg: msg.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic SplitMix64 generator used to sample strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name, so every run of a given
        /// test sees the same case sequence.
        pub fn deterministic(label: &str) -> Self {
            let mut state: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                state ^= u64::from(b);
                state = state.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a uniform value in `[0, span)`.
        ///
        /// # Panics
        /// Panics if `span` is zero.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "cannot sample an empty range");
            let zone = u64::MAX - (u64::MAX % span);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % span;
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Something that can generate values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniformly distributed value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating any value of `T` (see [`any`]).
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return lo + (rng.next_u64() as $t);
                    }
                    lo + (rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy producing `Vec`s whose elements come from an inner strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Returns a strategy generating vectors of `element` values with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-importable surface, mirroring `proptest::prelude::*`.

    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cases($cfg) $($rest)*);
    };
    (@cases($cfg:expr)
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {case}/{}: {e}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cases($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the enclosing property case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fails the enclosing property case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&($left), &($right));
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Fails the enclosing property case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&($left), &($right));
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: both sides are `{:?}`",
            left
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u16..=9, y in 0usize..5) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_bounds(v in collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }
    }

    proptest! {
        #[test]
        fn default_config_form_works(x in any::<u8>()) {
            let _ = x;
            prop_assert_eq!(1u8 + 1, 2u8);
        }
    }

    #[test]
    fn deterministic_rng_reproduces() {
        let mut a = crate::test_runner::TestRng::deterministic("label");
        let mut b = crate::test_runner::TestRng::deterministic("label");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
