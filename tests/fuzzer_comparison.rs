//! Integration test of the §IV-C/D comparison harness: the relative ordering
//! of the four fuzzers' mutation efficiency and state coverage matches the
//! paper.

#[test]
fn comparison_ordering_matches_table7_and_fig10() {
    let runs = bench::run_comparison(3_000, 7);
    let by_name: std::collections::HashMap<_, _> = runs.iter().map(|r| (r.name, r)).collect();
    let l2fuzz = &by_name["L2Fuzz"];
    let defensics = &by_name["Defensics"];
    let bfuzz = &by_name["BFuzz"];
    let bss = &by_name["BSS"];

    // Table VII shape.
    assert!(
        l2fuzz.metrics.mp_ratio > 0.3,
        "L2Fuzz MP {:.2}",
        l2fuzz.metrics.mp_ratio
    );
    assert!(defensics.metrics.mp_ratio < 0.1);
    assert!(bss.metrics.mp_ratio == 0.0);
    assert!(bfuzz.metrics.pr_ratio > 0.6);
    assert!(l2fuzz.metrics.mutation_efficiency > defensics.metrics.mutation_efficiency);
    assert!(defensics.metrics.mutation_efficiency > bfuzz.metrics.mutation_efficiency);
    assert!(bfuzz.metrics.mutation_efficiency > bss.metrics.mutation_efficiency);

    // Packets-per-second shape (§IV-C): L2Fuzz and BFuzz are orders of
    // magnitude faster than Defensics and BSS.
    assert!(l2fuzz.metrics.packets_per_second > 50.0 * defensics.metrics.packets_per_second);
    assert!(bfuzz.metrics.packets_per_second > 50.0 * bss.metrics.packets_per_second);

    // Fig. 10 shape.
    assert_eq!(l2fuzz.coverage.count(), 13);
    assert_eq!(defensics.coverage.count(), 7);
    assert_eq!(bfuzz.coverage.count(), 6);
    assert_eq!(bss.coverage.count(), 3);
}
