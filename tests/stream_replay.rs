//! Streaming replay guarantee: every artifact the fleet service persists —
//! fuzz reports, packet traces, checkpoints, corpus entries — must survive
//! `JsonStreamWriter` → `JsonStreamReader` → `JsonStreamWriter` with
//! **byte-identical** re-serialization, without ever building a
//! `serde_json::Value` tree.  The inputs are real campaign and sweep
//! outputs, not synthetic fixtures, so the round trip covers every field a
//! production run actually populates.

use l2fuzz_repro::btstack::profiles::{DeviceProfile, ProfileId};
use l2fuzz_repro::l2fuzz::campaign::Campaign;
use l2fuzz_repro::l2fuzz::report::FuzzReport;
use l2fuzz_repro::service::{Checkpoint, CorpusStore, ServiceReport, SweepService, SweepSpec};
use l2fuzz_repro::sniffer::Trace;
use serde_json::{from_str_streamed, to_string_pretty_streamed, to_string_streamed};

/// A finished sweep with at least one crash cluster, for realistic
/// checkpoint and corpus payloads.
fn finished_sweep() -> (Checkpoint, ServiceReport) {
    let spec = SweepSpec::new(
        "stream-replay",
        [ProfileId::D2, ProfileId::D4],
        SweepSpec::derived_seeds(0x5EED, 2),
    )
    .with_budget(2000)
    .with_shard_size(3);
    let outcome = SweepService::new(spec)
        .workers(2)
        .run()
        .expect("sweep runs");
    let report = outcome.report.expect("sweep completed");
    (outcome.checkpoint, report)
}

#[test]
fn fuzz_report_replays_byte_identically_through_the_reader() {
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D2))
        .seed(0xD5EED)
        .run()
        .expect("campaign runs")
        .into_single();

    let compact = to_string_streamed(&outcome.report);
    let back: FuzzReport = from_str_streamed(&compact).expect("report parses");
    assert_eq!(back, outcome.report);
    assert_eq!(to_string_streamed(&back), compact);

    // Pretty output parses back to the same value and re-serializes to the
    // same pretty bytes — whitespace handling is total.
    let pretty = to_string_pretty_streamed(&outcome.report);
    let from_pretty: FuzzReport = from_str_streamed(&pretty).expect("pretty parses");
    assert_eq!(from_pretty, outcome.report);
    assert_eq!(to_string_pretty_streamed(&from_pretty), pretty);
}

#[test]
fn trace_replays_byte_identically_through_the_reader() {
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D4))
        .seed(7)
        .run()
        .expect("campaign runs")
        .into_single();
    assert!(
        !outcome.trace.records().is_empty(),
        "need real traffic for a meaningful round trip"
    );

    let json = outcome.trace.to_json();
    let back = Trace::from_json(&json).expect("trace parses");
    assert_eq!(back, outcome.trace);
    assert_eq!(back.to_json(), json);
}

#[test]
fn checkpoint_replays_byte_identically_through_the_reader() {
    let (checkpoint, _) = finished_sweep();
    assert!(
        !checkpoint.corpus.is_empty(),
        "the D2 jobs must have produced a crash cluster"
    );

    let json = checkpoint.to_json();
    let back = Checkpoint::from_json(&json).expect("checkpoint parses");
    assert_eq!(back, checkpoint);
    assert_eq!(back.to_json(), json);
}

#[test]
fn corpus_and_report_replay_byte_identically_through_the_reader() {
    let (_, report) = finished_sweep();

    // The corpus store alone (the artifact an operator ships around).
    let corpus_json = to_string_streamed(&report.corpus);
    let corpus: CorpusStore = from_str_streamed(&corpus_json).expect("corpus parses");
    assert_eq!(corpus, report.corpus);
    assert_eq!(to_string_streamed(&corpus), corpus_json);

    // Every cluster's exemplar trace survived intact inside the store.
    for (ours, theirs) in corpus.clusters().iter().zip(report.corpus.clusters()) {
        assert_eq!(
            ours.exemplar_trace.records(),
            theirs.exemplar_trace.records()
        );
    }

    // And the full service report.
    let json = report.to_json();
    let back = ServiceReport::from_json(&json).expect("report parses");
    assert_eq!(back, report);
    assert_eq!(back.to_json(), json);
    assert_eq!(back.digest(), report.digest());
}
