//! Concurrent-connection scenarios over the event-driven medium.
//!
//! Three layers of guarantees:
//!
//! 1. **Device-side isolation** — every link slot gets its own L2CAP
//!    acceptor, so CID spaces never leak between links (a channel opened on
//!    one link is invisible — and its CIDs invalid — on another).
//! 2. **Campaign-level concurrency** — two initiators fuzz one target at
//!    once through `Campaign::builder().initiators_per_target(2)`, each
//!    driving a full session whose trace replays cleanly (coverage inference
//!    works per link, which a cross-talking interleave would break).
//! 3. **Dual transport** — one BR/EDR and one LE initiator fuzz the
//!    dual-mode D10 profile in a single campaign, and the seeded SPSM
//!    confusion vulnerability is detected end to end.

use btcore::{Cid, Identifier};
use btcore::{FuzzRng, LinkType, SimClock};
use btstack::device::{share, HostStatus};
use btstack::profiles::{DeviceProfile, ProfileId};
use hci::link::LinkConfig;
use hci::medium::{EventMedium, LinkSpec, Medium};
use l2cap::command::{Command, ConnectionRequest, DisconnectionRequest};
use l2cap::consts::ConnectionResult;
use l2cap::packet::{parse_signaling, signaling_frame};
use l2fuzz::campaign::{Campaign, SeedSweepExecutor};
use l2fuzz::config::FuzzConfig;
use l2fuzz::session::L2FuzzTool;
use sniffer::StateCoverage;

/// Sends one signalling command over a link and parses the first response.
fn exchange(link: &mut hci::medium::LinkHandle, id: u8, command: Command) -> Option<Command> {
    let frame = signaling_frame(Identifier(id), command);
    let responses = link.send_frame(&frame);
    responses
        .first()
        .and_then(|f| parse_signaling(f).ok())
        .map(|p| p.command())
}

#[test]
fn cid_spaces_are_isolated_between_links() {
    let clock = SimClock::new();
    let mut medium = EventMedium::with_seed(clock.clone(), 7);
    let profile = DeviceProfile::table5(ProfileId::D4);
    let (_, adapter) = share(profile.build(clock.clone(), FuzzRng::seed_from(7)));
    medium.register_shared(adapter);

    // Link A opens a channel and leaves it open.
    let mut link_a = medium
        .connect_spec(
            LinkSpec::new(profile.addr, LinkConfig::ideal(), FuzzRng::seed_from(1))
                .with_clock(SimClock::new()),
        )
        .expect("link A connects");
    let scid = Cid(0x0040);
    let response = exchange(
        &mut link_a,
        1,
        Command::ConnectionRequest(ConnectionRequest {
            psm: btcore::Psm::SDP,
            scid,
        }),
    );
    let dcid_a = match response {
        Some(Command::ConnectionResponse(rsp)) => {
            assert_eq!(rsp.result, ConnectionResult::Success);
            rsp.dcid
        }
        other => panic!("link A expected a connection response, got {other:?}"),
    };
    // Link A is done driving traffic; a second initiator takes over.
    link_a.retire();

    let mut link_b = medium
        .connect_spec(
            LinkSpec::new(profile.addr, LinkConfig::ideal(), FuzzRng::seed_from(2))
                .with_clock(SimClock::new()),
        )
        .expect("link B connects");
    assert_ne!(link_a.slot(), link_b.slot());

    // Link A's channel does not exist in link B's CID space: disconnecting
    // it from link B is an invalid-CID reject, not a disconnection.
    let response = exchange(
        &mut link_b,
        2,
        Command::DisconnectionRequest(DisconnectionRequest { dcid: dcid_a, scid }),
    );
    assert!(
        matches!(response, Some(Command::CommandReject(_))),
        "link B must not see link A's channel, got {response:?}"
    );

    // And link B can open its own channel under the very same source CID.
    let response = exchange(
        &mut link_b,
        3,
        Command::ConnectionRequest(ConnectionRequest {
            psm: btcore::Psm::SDP,
            scid,
        }),
    );
    match response {
        Some(Command::ConnectionResponse(rsp)) => {
            assert_eq!(rsp.result, ConnectionResult::Success);
        }
        other => panic!("link B expected its own connection response, got {other:?}"),
    }
}

#[test]
fn two_initiators_interleave_without_crosstalk() {
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D4))
        .initiators_per_target(2)
        .seed(0x2C0)
        .run()
        .expect("multi-initiator campaign runs")
        .into_single();
    assert_eq!(outcome.initiator_count(), 2);

    // Each initiator ran the full BR/EDR campaign on its own link...
    assert_eq!(outcome.report.states_tested.len(), 13);
    assert_eq!(outcome.secondary[0].report.states_tested.len(), 13);

    // ...and each link's trace replays to the paper's 13/19 coverage on its
    // own — a cross-talking interleave (responses landing on the wrong
    // link, channels clobbering each other) breaks coverage inference.
    assert_eq!(StateCoverage::from_trace(&outcome.trace).count(), 13);
    assert_eq!(
        StateCoverage::from_trace(&outcome.secondary[0].trace).count(),
        13
    );

    // The merged trace interleaves both links in virtual-time order.
    let merged = outcome.merged_trace();
    assert_eq!(
        merged.len(),
        outcome.trace.len() + outcome.secondary[0].trace.len()
    );
    let mut last = 0;
    for record in merged.records() {
        assert!(record.timestamp_micros >= last, "merged trace out of order");
        last = record.timestamp_micros;
    }
}

#[test]
fn dual_transport_campaign_detects_the_d10_vuln_end_to_end() {
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D10))
        .dual_transport()
        .seed(0xD10)
        .run()
        .expect("dual-transport campaign runs")
        .into_single();

    // One BR/EDR and one LE initiator ran concurrently.
    assert_eq!(outcome.initiator_count(), 2);
    assert_eq!(outcome.report.target.link_type, LinkType::BrEdr);
    assert_eq!(outcome.secondary[0].link_type, LinkType::Le);
    assert_eq!(outcome.secondary[0].report.target.link_type, LinkType::Le);

    // The seeded SPSM confusion crash is found in this single campaign.
    assert!(
        outcome.any_vulnerable(),
        "the dual-transport campaign must detect the seeded vulnerability"
    );
    assert_eq!(outcome.device.lock().status(), HostStatus::Crashed);
    let fired = outcome.device.lock().fired_vulnerabilities().to_vec();
    assert_eq!(fired[0].vuln.id, "SIM-BLUEDROID-SPSM-OOB");

    // Each initiator's states stay within its own transport's reachable
    // set.
    for state in &outcome.secondary[0].report.states_tested {
        assert!(state.reachable_from_initiator_on(LinkType::Le));
    }
    for state in &outcome.report.states_tested {
        assert!(state.reachable_from_initiator_on(LinkType::BrEdr));
    }
}

#[test]
fn seed_sweep_detects_the_d9_credit_underflow() {
    // One short campaign per seed: individually each has a real chance of
    // missing the probability-gated credit-underflow trigger (at this
    // budget only 2 of the 8 seeds hit) — the sweep's independent tries
    // are what make detection reliable.
    let tight = || {
        let config = FuzzConfig {
            max_packets: 100,
            ..FuzzConfig::default()
        };
        Box::new(L2FuzzTool::detection(config, 1)) as Box<dyn l2fuzz::fuzzer::Fuzzer>
    };
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D9))
        .fuzzer(tight)
        .executor(SeedSweepExecutor::derived(0x5EED, 8).with_threads(4))
        .run()
        .expect("seed sweep runs");

    assert_eq!(outcome.targets.len(), 8, "one campaign per sweep seed");
    let hits = outcome
        .targets
        .iter()
        .filter(|t| t.any_vulnerable())
        .count();
    assert!(
        hits >= 1,
        "the sweep must detect the D9 credit underflow on at least one seed"
    );
    assert!(
        hits < 8,
        "every seed hit — the sweep budget is too generous for this test \
         to demonstrate why sweeping matters"
    );
    for target in &outcome.targets {
        if target.any_vulnerable() {
            let fired = target.device.lock().fired_vulnerabilities().to_vec();
            assert_eq!(fired[0].vuln.id, "SIM-ZEPHYR-LE-CREDIT-UNDERFLOW");
        }
    }
}

/// A tool that dies immediately — stands in for any initiator-side bug.
struct PanickingFuzzer;

impl l2fuzz::fuzzer::Fuzzer for PanickingFuzzer {
    fn name(&self) -> &'static str {
        "panicker"
    }
    fn fuzz(
        &mut self,
        _ctx: &mut l2fuzz::fuzzer::FuzzCtx<'_>,
    ) -> Option<l2fuzz::report::FuzzReport> {
        panic!("injected initiator failure");
    }
}

#[test]
fn a_panicking_initiator_does_not_deadlock_the_campaign() {
    // The second initiator's tool panics on its own thread.  Its retire
    // guard must still pull the link out of the turnstile, so the healthy
    // initiator finishes (instead of waiting forever on a source that will
    // never advance) and the panic propagates out of `run()` — the test
    // completing at all is the deadlock-freedom assertion.
    let spawned = std::sync::atomic::AtomicUsize::new(0);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        Campaign::builder()
            .target(DeviceProfile::table5(ProfileId::D4))
            .initiators_per_target(2)
            .fuzzer(move || {
                if spawned.fetch_add(1, std::sync::atomic::Ordering::Relaxed) == 0 {
                    Box::new(L2FuzzTool::detection(FuzzConfig::default(), 1))
                        as Box<dyn l2fuzz::fuzzer::Fuzzer>
                } else {
                    Box::new(PanickingFuzzer)
                }
            })
            .seed(4)
            .run()
    }));
    assert!(result.is_err(), "the initiator panic must propagate");
}
