//! End-to-end integration tests: the full pipeline (campaign harness, air
//! medium, simulated vendor stacks, L2Fuzz session, detection, reporting)
//! across the Table V device profiles — all driven through
//! `Campaign::builder()`.

use btstack::device::HostStatus;
use btstack::profiles::{DeviceProfile, ProfileId};
use l2fuzz::campaign::Campaign;
use l2fuzz::report::FuzzReport;
use sniffer::{MetricsSummary, StateCoverage, Trace};

fn fuzz_device(id: ProfileId, seed: u64) -> (FuzzReport, Trace, HostStatus) {
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(id))
        .seed(seed)
        .run()
        .expect("campaign runs")
        .into_single();
    let status = outcome.device.lock().status();
    (outcome.report, outcome.trace, status)
}

#[test]
fn pixel3_denial_of_service_is_found_and_logged() {
    let (report, trace, status) = fuzz_device(ProfileId::D2, 11);
    assert!(report.vulnerable());
    assert_eq!(status, HostStatus::DosTerminated);
    let finding = &report.findings[0];
    assert_eq!(finding.evidence.description, "DoS");
    assert!(finding.evidence.crash_dump);
    assert!(finding.evidence.error.indicates_dos());
    // The report serializes and parses back.
    let json = report.to_json().unwrap();
    assert_eq!(FuzzReport::from_json(&json).unwrap(), report);
    // The captured trace is dominated by malformed packets but not rejected
    // en masse (the point of core-field mutation).
    let metrics = MetricsSummary::from_trace(&trace);
    assert!(metrics.mp_ratio > 0.3);
    assert!(metrics.pr_ratio < 0.6);
}

#[test]
fn airpods_crash_is_found_quickly() {
    let (report, _trace, status) = fuzz_device(ProfileId::D5, 21);
    assert!(report.vulnerable());
    assert_eq!(status, HostStatus::Crashed);
    assert_eq!(report.findings[0].evidence.description, "Crash");
}

#[test]
fn hardened_devices_survive_a_full_campaign() {
    for (id, seed) in [
        (ProfileId::D4, 31),
        (ProfileId::D6, 32),
        (ProfileId::D7, 33),
    ] {
        let (report, trace, status) = fuzz_device(id, seed);
        assert!(!report.vulnerable(), "{id} must survive");
        assert_eq!(status, HostStatus::Running);
        assert!(
            trace.transmitted_count() > 300,
            "{id} must have been exercised"
        );
    }
}

#[test]
fn l2fuzz_state_coverage_is_thirteen_of_nineteen() {
    // A hardened target lets the campaign run to completion, which is when
    // the full coverage is visible in the trace.
    let (report, trace, _) = fuzz_device(ProfileId::D4, 41);
    assert_eq!(report.states_tested.len(), 13);
    let coverage = StateCoverage::from_trace(&trace);
    assert_eq!(coverage.count(), 13, "covered: {:?}", coverage.states());
}
