//! End-to-end integration tests: the full pipeline (air medium, simulated
//! vendor stacks, L2Fuzz session, detection, reporting) across the Table V
//! device profiles.

use btcore::{FuzzRng, SimClock};
use btstack::device::{share, DeviceOracle, HostStatus};
use btstack::profiles::{DeviceProfile, ProfileId};
use hci::air::AirMedium;
use hci::device::VirtualDevice;
use hci::link::{new_tap, LinkConfig};
use l2fuzz::config::FuzzConfig;
use l2fuzz::report::FuzzReport;
use l2fuzz::session::L2FuzzSession;
use sniffer::{MetricsSummary, StateCoverage, Trace};

fn fuzz_device(id: ProfileId, seed: u64) -> (FuzzReport, Trace, HostStatus) {
    let clock = SimClock::new();
    let mut air = AirMedium::new(clock.clone());
    let profile = DeviceProfile::table5(id);
    let (device, adapter) = share(profile.build(clock.clone(), FuzzRng::seed_from(seed)));
    air.register(adapter);
    let meta = device.lock().meta();
    let mut link = air
        .connect(
            profile.addr,
            LinkConfig::default(),
            FuzzRng::seed_from(seed + 1),
        )
        .unwrap();
    let tap = new_tap();
    link.attach_tap(tap.clone());
    let mut oracle = DeviceOracle::new(device.clone());
    let config = FuzzConfig {
        seed,
        ..FuzzConfig::default()
    };
    let report = L2FuzzSession::new(config, clock).run(&mut link, meta, Some(&mut oracle));
    let status = device.lock().status();
    (report, Trace::from_tap(&tap), status)
}

#[test]
fn pixel3_denial_of_service_is_found_and_logged() {
    let (report, trace, status) = fuzz_device(ProfileId::D2, 11);
    assert!(report.vulnerable());
    assert_eq!(status, HostStatus::DosTerminated);
    let finding = &report.findings[0];
    assert_eq!(finding.evidence.description, "DoS");
    assert!(finding.evidence.crash_dump);
    assert!(finding.evidence.error.indicates_dos());
    // The report serializes and parses back.
    let json = report.to_json().unwrap();
    assert_eq!(FuzzReport::from_json(&json).unwrap(), report);
    // The captured trace is dominated by malformed packets but not rejected
    // en masse (the point of core-field mutation).
    let metrics = MetricsSummary::from_trace(&trace);
    assert!(metrics.mp_ratio > 0.3);
    assert!(metrics.pr_ratio < 0.6);
}

#[test]
fn airpods_crash_is_found_quickly() {
    let (report, _trace, status) = fuzz_device(ProfileId::D5, 21);
    assert!(report.vulnerable());
    assert_eq!(status, HostStatus::Crashed);
    assert_eq!(report.findings[0].evidence.description, "Crash");
}

#[test]
fn hardened_devices_survive_a_full_campaign() {
    for (id, seed) in [
        (ProfileId::D4, 31),
        (ProfileId::D6, 32),
        (ProfileId::D7, 33),
    ] {
        let (report, trace, status) = fuzz_device(id, seed);
        assert!(!report.vulnerable(), "{id} must survive");
        assert_eq!(status, HostStatus::Running);
        assert!(
            trace.transmitted_count() > 300,
            "{id} must have been exercised"
        );
    }
}

#[test]
fn l2fuzz_state_coverage_is_thirteen_of_nineteen() {
    // A hardened target lets the campaign run to completion, which is when
    // the full coverage is visible in the trace.
    let (report, trace, _) = fuzz_device(ProfileId::D4, 41);
    assert_eq!(report.states_tested.len(), 13);
    let coverage = StateCoverage::from_trace(&trace);
    assert_eq!(coverage.count(), 13, "covered: {:?}", coverage.states());
}
