//! Cross-crate conformance tests: the specification tables encoded in the
//! `l2cap` crate agree with the behaviour of the simulated stacks.

use l2cap::code::CommandCode;
use l2cap::jobs::{job_of, Job};
use l2cap::state::{spec_transition, Action, ChannelState, StateMachine};

#[test]
fn jobs_cover_all_states_and_valid_commands_are_consistent() {
    for state in ChannelState::ALL {
        let job = job_of(state);
        assert!(job.states().contains(&state));
        let cmds = job.valid_commands();
        assert!(!cmds.is_empty());
        for cmd in &cmds {
            assert!(CommandCode::ALL.contains(cmd));
        }
    }
}

#[test]
fn table2_style_rejections_hold_for_every_wait_state() {
    // In every dedicated wait state, commands belonging to a completely
    // different job are rejected without a state change.
    let cases = [
        (ChannelState::WaitConnect, CommandCode::MoveChannelRequest),
        (ChannelState::WaitCreate, CommandCode::ConfigureRequest),
        (ChannelState::WaitDisconnect, CommandCode::ConnectionRequest),
        (
            ChannelState::WaitMoveConfirm,
            CommandCode::ConnectionRequest,
        ),
        (ChannelState::WaitConfigRsp, CommandCode::MoveChannelRequest),
    ];
    for (state, code) in cases {
        let t = spec_transition(state, code, btcore::LinkType::BrEdr);
        assert!(
            matches!(t.action, Action::Reject(_)),
            "{code} in {state} must be rejected"
        );
        assert_eq!(t.next, state);
    }
}

#[test]
fn initiator_walk_matches_the_documented_reachable_set() {
    let mut sm = StateMachine::new();
    sm.on_command(CommandCode::ConnectionRequest, false);
    sm.on_command(CommandCode::ConnectionRequest, true);
    sm.on_command(CommandCode::ConfigureRequest, true);
    sm.on_command(CommandCode::ConfigureResponse, true);
    sm.on_command(CommandCode::DisconnectionRequest, true);
    sm.on_command(CommandCode::CreateChannelRequest, true);
    sm.on_command(CommandCode::ConfigureResponse, true);
    sm.on_command(CommandCode::ConfigureRequest, true);
    sm.on_command(CommandCode::ConfigureRequest, true);
    sm.on_command(CommandCode::ConfigureResponse, true);
    sm.on_command(CommandCode::MoveChannelRequest, true);
    sm.on_command(CommandCode::MoveChannelConfirmationRequest, true);
    let visited: std::collections::BTreeSet<_> = sm.visited().iter().copied().collect();
    assert_eq!(visited.len(), 13);
    for s in visited {
        assert!(s.reachable_from_initiator());
    }
}

#[test]
fn every_job_has_at_least_one_reachable_state_except_responder_only_groups() {
    for job in Job::ALL {
        let reachable = job.states().iter().any(|s| s.reachable_from_initiator());
        assert!(reachable, "{job} must contain an initiator-reachable state");
    }
}
