//! Cross-crate certification of the protocol model checker.
//!
//! The `analysis` crate proves, by exhaustive search, every reachability
//! claim the rest of the workspace makes: the
//! `REACHABLE_FROM_INITIATOR` masks, the state guide's command sequences
//! (now *derived* from the computed witnesses), and the trigger states of
//! every seeded vulnerability.  These tests pin the proven facts at the
//! integration level — the analyzer runs against the same crates the
//! fuzzer ships — and drive each computed plan end to end against a
//! simulated device.

use std::collections::BTreeSet;

use analysis::{
    certify_vulnerabilities, check_model, fuzz_plans, run_lints, validate_plan, witness, witnesses,
    Allowlist, AnalysisReport,
};
use btcore::{FuzzRng, LinkType, Psm, SimClock};
use btstack::device::share;
use btstack::profiles::{DeviceProfile, ProfileId};
use hci::link::LinkConfig;
use hci::medium::{EventMedium, LinkHandle, Medium};
use l2cap::state::ChannelState;
use l2fuzz::guide::StateGuide;

// ---------------------------------------------------------------------------
// Reachability: the masks are theorems, not claims.

#[test]
fn bredr_mask_equals_the_computed_reachable_set() {
    let computed: BTreeSet<ChannelState> = witnesses(LinkType::BrEdr).keys().copied().collect();
    let claimed: BTreeSet<ChannelState> = ChannelState::REACHABLE_FROM_INITIATOR
        .iter()
        .copied()
        .collect();
    assert_eq!(computed.len(), 13, "the paper's 13 of 19 states");
    assert_eq!(computed, claimed);
}

#[test]
fn le_mask_equals_the_computed_reachable_set() {
    let computed: BTreeSet<ChannelState> = witnesses(LinkType::Le).keys().copied().collect();
    let claimed: BTreeSet<ChannelState> = ChannelState::REACHABLE_FROM_INITIATOR_LE
        .iter()
        .copied()
        .collect();
    assert_eq!(computed.len(), 5);
    assert_eq!(computed, claimed);
}

#[test]
fn every_witness_replays_to_its_claimed_state() {
    for link in [LinkType::BrEdr, LinkType::Le] {
        for (&state, w) in witnesses(link) {
            assert!(w.replay(), "witness for {state} on {link:?} must replay");
            assert_eq!(witness(state, link), Some(w));
        }
        for state in ChannelState::ALL {
            if !witnesses(link).contains_key(&state) {
                assert!(
                    witness(state, link).is_none(),
                    "{state} must have no witness on {link:?}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Plans: the guide's sequences are generated, valid, and executable.

#[test]
fn every_plan_validates_against_the_state_machine() {
    for link in [LinkType::BrEdr, LinkType::Le] {
        for plan in fuzz_plans(link).values() {
            let problems = validate_plan(plan);
            assert!(
                problems.is_empty(),
                "{:?}/{link:?}: {problems:?}",
                plan.state
            );
        }
    }
}

fn link_to(id: ProfileId) -> (btstack::device::SharedSimulatedDevice, LinkHandle) {
    let clock = SimClock::new();
    let mut air = EventMedium::new(clock.clone());
    let profile = DeviceProfile::table5(id);
    let (shared, adapter) = share(profile.build(clock.clone(), FuzzRng::seed_from(5)));
    air.register_shared(adapter);
    let link = air
        .connect(profile.addr, LinkConfig::ideal(), FuzzRng::seed_from(6))
        .expect("simulated link comes up");
    (shared, link)
}

#[test]
fn guide_executes_every_bredr_plan_against_a_simulated_device() {
    for state in ChannelState::ALL {
        let (_dev, mut link) = link_to(ProfileId::D2);
        let mut guide = StateGuide::new();
        let ctx = guide.drive_to(&mut link, Psm::SDP, state);
        if ChannelState::REACHABLE_FROM_INITIATOR.contains(&state) {
            let ctx = ctx.unwrap_or_else(|| panic!("plan for {state} must execute"));
            let plan = analysis::fuzz_plan(state, LinkType::BrEdr).expect("plan exists");
            assert_eq!(
                ctx.has_channel(),
                !plan.parks_closed(),
                "{state}: channel presence must match the plan's parking position"
            );
        } else {
            assert!(ctx.is_none(), "responder-only {state} must not be drivable");
        }
    }
}

#[test]
fn guide_executes_every_le_plan_against_a_simulated_device() {
    for state in ChannelState::ALL {
        let (_dev, mut link) = link_to(ProfileId::D9);
        let mut guide = StateGuide::new();
        let ctx = guide.drive_to_le(&mut link, Psm::EATT, state);
        if ChannelState::REACHABLE_FROM_INITIATOR_LE.contains(&state) {
            assert!(ctx.is_some(), "LE plan for {state} must execute");
        } else {
            assert!(ctx.is_none(), "{state} must not be drivable on LE");
        }
    }
}

// ---------------------------------------------------------------------------
// Vulnerability certificates: every seeded trigger state is provably
// reachable on every transport its profile serves.

#[test]
fn every_profile_vulnerability_carries_a_reachability_certificate() {
    let (certs, violations) = certify_vulnerabilities();
    assert!(violations.is_empty(), "{violations:#?}");
    let extended = DeviceProfile::extended();
    for profile in DeviceProfile::all().iter().chain(extended.iter()) {
        for vuln in profile.vulnerabilities() {
            let matching: Vec<_> = certs
                .iter()
                .filter(|c| c.profile == profile.id.to_string() && c.vuln_id == vuln.id)
                .collect();
            assert!(
                !matching.is_empty(),
                "{} / {} must be certified",
                profile.id,
                vuln.id
            );
            for cert in matching {
                assert!(!cert.entries.is_empty());
                for entry in &cert.entries {
                    assert!(entry.witness.replay());
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The gate itself: a clean repo certifies clean, end to end.

#[test]
fn analyzer_certifies_the_repository_clean() {
    let check = check_model(&Allowlist::default());
    assert!(check.violations.is_empty(), "{:#?}", check.violations);

    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let lints = run_lints(root).expect("lint scan runs");
    let report = AnalysisReport::run(&Allowlist::default(), Some(lints));
    assert!(report.is_clean(), "{:#?}", report.problems());

    let json = serde_json::to_string_streamed(&report);
    let value: serde_json::Value = serde_json::from_str(&json).expect("report is valid JSON");
    assert_eq!(value.get("clean"), Some(&serde_json::Value::Bool(true)));
}
