//! Reproducibility guarantee (paper §III): a fuzzing run is a pure function
//! of its seed.  Two sessions with the same seed against freshly built
//! simulated devices must produce byte-identical reports and traces; a
//! different seed must actually change the campaign.

use btcore::{FuzzRng, SimClock};
use btstack::device::{share, DeviceOracle};
use btstack::profiles::{DeviceProfile, ProfileId};
use hci::air::AirMedium;
use hci::device::VirtualDevice;
use hci::link::{new_tap, LinkConfig};
use l2fuzz::config::FuzzConfig;
use l2fuzz::report::FuzzReport;
use l2fuzz::session::L2FuzzSession;
use sniffer::Trace;

/// One complete, self-contained fuzzing session: fresh clock, fresh air
/// medium, fresh device — nothing shared with any other invocation.
fn run_session(id: ProfileId, seed: u64) -> (FuzzReport, Trace) {
    let clock = SimClock::new();
    let mut air = AirMedium::new(clock.clone());
    let profile = DeviceProfile::table5(id);
    let (device, adapter) = share(profile.build(clock.clone(), FuzzRng::seed_from(seed)));
    air.register(adapter);
    let meta = device.lock().meta();
    let mut link = air
        .connect(
            profile.addr,
            LinkConfig::default(),
            FuzzRng::seed_from(seed + 1),
        )
        .unwrap();
    let tap = new_tap();
    link.attach_tap(tap.clone());
    let mut oracle = DeviceOracle::new(device.clone());
    let config = FuzzConfig {
        seed,
        ..FuzzConfig::default()
    };
    let report = L2FuzzSession::new(config, clock).run(&mut link, meta, Some(&mut oracle));
    (report, Trace::from_tap(&tap))
}

#[test]
fn same_seed_produces_identical_reports() {
    // One vulnerable device (campaign ends in a finding) and one hardened
    // device (campaign runs to completion) — determinism must hold on both
    // paths.
    for (id, seed) in [(ProfileId::D2, 0xD5EED), (ProfileId::D4, 0xD5EED)] {
        let (first, first_trace) = run_session(id, seed);
        let (second, second_trace) = run_session(id, seed);
        assert_eq!(first, second, "{id} seed {seed:#x}: reports diverged");

        // The serialized form is the artifact a user archives; it must be
        // byte-identical too.
        assert_eq!(first.to_json().unwrap(), second.to_json().unwrap());

        // The on-air traffic — every packet, both directions, with
        // timestamps from the virtual clock — must replay exactly.
        assert_eq!(
            first_trace.records(),
            second_trace.records(),
            "{id}: traffic diverged"
        );
    }
}

#[test]
fn replayed_report_survives_a_json_round_trip() {
    let (report, _) = run_session(ProfileId::D2, 0xD5EED);
    let json = report.to_json().unwrap();
    let back = FuzzReport::from_json(&json).unwrap();
    assert_eq!(back, report);
    // And a re-run still matches the deserialized copy.
    let (again, _) = run_session(ProfileId::D2, 0xD5EED);
    assert_eq!(back, again);
}

#[test]
fn different_seeds_change_the_campaign() {
    let (a, trace_a) = run_session(ProfileId::D4, 1);
    let (b, trace_b) = run_session(ProfileId::D4, 2);
    let frames =
        |t: &Trace| -> Vec<Vec<u8>> { t.records().iter().map(|r| r.frame.to_bytes()).collect() };
    assert_ne!(
        frames(&trace_a),
        frames(&trace_b),
        "different seeds replayed identical traffic"
    );
    // Campaign shape stays comparable even though the packets differ.
    assert_eq!(a.states_tested, b.states_tested);
}
