//! Reproducibility guarantee (paper §III): a fuzzing campaign is a pure
//! function of its seed.  Two campaigns with the same seed against freshly
//! built simulated devices must produce byte-identical reports and traces; a
//! different seed must actually change the campaign.  The same holds across
//! executors: `ShardedExecutor` at any thread count must reproduce
//! `SerialExecutor`'s per-device results bit-for-bit.

use btstack::profiles::{DeviceProfile, ProfileId};
use l2fuzz::campaign::{
    Campaign, CampaignOutcome, SeedSweepExecutor, SerialExecutor, ShardedExecutor, TargetOutcome,
};
use l2fuzz::config::FuzzConfig;
use l2fuzz::report::FuzzReport;
use l2fuzz::session::L2FuzzTool;
use sniffer::Trace;

/// One complete, self-contained single-target campaign: fresh clock, fresh
/// air medium, fresh device — nothing shared with any other invocation.
fn run_campaign(id: ProfileId, seed: u64) -> (FuzzReport, Trace) {
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(id))
        .seed(seed)
        .run()
        .expect("campaign runs")
        .into_single();
    (outcome.report, outcome.trace)
}

#[test]
fn same_seed_produces_identical_reports() {
    // One vulnerable device (campaign ends in a finding) and one hardened
    // device (campaign runs to completion) — determinism must hold on both
    // paths.
    for (id, seed) in [(ProfileId::D2, 0xD5EED), (ProfileId::D4, 0xD5EED)] {
        let (first, first_trace) = run_campaign(id, seed);
        let (second, second_trace) = run_campaign(id, seed);
        assert_eq!(first, second, "{id} seed {seed:#x}: reports diverged");

        // The serialized form is the artifact a user archives; it must be
        // byte-identical too.
        assert_eq!(first.to_json().unwrap(), second.to_json().unwrap());

        // The on-air traffic — every packet, both directions, with
        // timestamps from the virtual clock — must replay exactly.
        assert_eq!(
            first_trace.records(),
            second_trace.records(),
            "{id}: traffic diverged"
        );
    }
}

#[test]
fn replayed_report_survives_a_json_round_trip() {
    let (report, _) = run_campaign(ProfileId::D2, 0xD5EED);
    let json = report.to_json().unwrap();
    let back = FuzzReport::from_json(&json).unwrap();
    assert_eq!(back, report);
    // And a re-run still matches the deserialized copy.
    let (again, _) = run_campaign(ProfileId::D2, 0xD5EED);
    assert_eq!(back, again);
}

#[test]
fn different_seeds_change_the_campaign() {
    let (a, trace_a) = run_campaign(ProfileId::D4, 1);
    let (b, trace_b) = run_campaign(ProfileId::D4, 2);
    let frames =
        |t: &Trace| -> Vec<Vec<u8>> { t.records().iter().map(|r| r.frame.to_bytes()).collect() };
    assert_ne!(
        frames(&trace_a),
        frames(&trace_b),
        "different seeds replayed identical traffic"
    );
    // Campaign shape stays comparable even though the packets differ.
    assert_eq!(a.states_tested, b.states_tested);
}

/// Runs the full eight-device survey with the given executor and returns the
/// serialized per-device reports plus the raw traces.
fn survey(executor_threads: Option<usize>, seed: u64) -> (Vec<String>, Vec<Trace>) {
    let builder = Campaign::builder()
        .targets(DeviceProfile::all())
        .fuzzer(|| Box::new(L2FuzzTool::detection(FuzzConfig::default(), 3)))
        .seed(seed);
    let outcome: CampaignOutcome = match executor_threads {
        None => builder.executor(SerialExecutor),
        Some(n) => builder.executor(ShardedExecutor::new(n)),
    }
    .run()
    .expect("survey runs");
    let json = outcome.reports().map(|r| r.to_json().unwrap()).collect();
    let traces = outcome.targets.into_iter().map(|t| t.trace).collect();
    (json, traces)
}

#[test]
fn sharded_executor_reproduces_serial_reports_at_any_thread_count() {
    let seed = 0x5EED_CAFE;
    let (serial_reports, serial_traces) = survey(None, seed);
    assert_eq!(serial_reports.len(), 8);
    for threads in [1, 2, 4] {
        let (sharded_reports, sharded_traces) = survey(Some(threads), seed);
        assert_eq!(
            serial_reports, sharded_reports,
            "per-device FuzzReport JSON diverged at {threads} thread(s)"
        );
        for (i, (a, b)) in serial_traces.iter().zip(&sharded_traces).enumerate() {
            assert_eq!(
                a.records(),
                b.records(),
                "trace of target #{i} diverged at {threads} thread(s)"
            );
        }
    }
}

/// One target's serialized form: every initiator's report JSON plus every
/// initiator's trace as raw timestamped bytes.
type TargetFingerprint = (Vec<String>, Vec<Vec<Vec<u8>>>);

/// Serializes every initiator of every target: reports as JSON, traces as
/// raw records — the full observable output of a multi-initiator campaign.
fn fingerprint(targets: &[TargetOutcome]) -> Vec<TargetFingerprint> {
    targets
        .iter()
        .map(|t| {
            let reports = t.reports().map(|r| r.to_json().unwrap()).collect();
            let mut traces: Vec<Vec<Vec<u8>>> = Vec::new();
            for trace in std::iter::once(&t.trace).chain(t.secondary.iter().map(|i| &i.trace)) {
                traces.push(
                    trace
                        .records()
                        .iter()
                        .map(|r| {
                            let mut bytes = r.timestamp_micros.to_le_bytes().to_vec();
                            bytes.extend(r.frame.to_bytes());
                            bytes
                        })
                        .collect(),
                );
            }
            (reports, traces)
        })
        .collect()
}

#[test]
fn multi_initiator_campaigns_replay_bit_for_bit() {
    // Two concurrent initiators race for the medium's turnstile on real OS
    // threads; the event scheduler must serialize them identically on every
    // run.  One hardened target (full interleaved run) and the dual-mode
    // phone over both transports (campaign ends when the LE side kills the
    // device under the other initiator's feet).
    let run = || {
        let outcome = Campaign::builder()
            .target(DeviceProfile::table5(ProfileId::D4))
            .initiators_per_target(2)
            .seed(0xD5EED)
            .run()
            .expect("multi-initiator campaign runs");
        let dual = Campaign::builder()
            .target(DeviceProfile::table5(ProfileId::D10))
            .dual_transport()
            .seed(0xD5EED)
            .run()
            .expect("dual-transport campaign runs");
        (fingerprint(&outcome.targets), fingerprint(&dual.targets))
    };
    let first = run();
    assert_eq!(first, run(), "concurrent schedules diverged between runs");
}

#[test]
fn multi_initiator_targets_shard_deterministically() {
    let run = |threads: Option<usize>| {
        let builder = Campaign::builder()
            .targets([ProfileId::D2, ProfileId::D4].map(DeviceProfile::table5))
            .initiators_per_target(2)
            .fuzzer(|| Box::new(L2FuzzTool::detection(FuzzConfig::default(), 1)))
            .seed(0xAB);
        match threads {
            None => builder.executor(SerialExecutor),
            Some(n) => builder.executor(ShardedExecutor::new(n)),
        }
        .run()
        .expect("campaign runs")
    };
    let serial = fingerprint(&run(None).targets);
    assert_eq!(serial, fingerprint(&run(Some(2)).targets));
}

#[test]
fn faulty_schedules_replay_bit_for_bit_across_executors() {
    // PR 8: determinism extends to chaos campaigns.  Same seed + same
    // FaultPlan ⇒ identical per-device reports and traces, serial or
    // sharded at 1/2/4 threads — every loss, corruption, jitter and stall
    // decision derives from the per-event seed stream, never from the
    // worker interleaving.
    let plan = l2fuzz::FaultPlan::degraded(0.12, 0.06)
        .with_jitter(400)
        .with_stall(0.01, 5_000);
    let survey = |threads: Option<usize>| {
        let builder = Campaign::builder()
            .targets([ProfileId::D2, ProfileId::D4, ProfileId::D9].map(DeviceProfile::table5))
            .fuzzer(|| Box::new(L2FuzzTool::detection(FuzzConfig::default(), 3)))
            .faults(plan)
            .seed(0xFA_0175);
        let outcome = match threads {
            None => builder.executor(SerialExecutor),
            Some(n) => builder.executor(ShardedExecutor::new(n)),
        }
        .run()
        .expect("chaos survey runs");
        fingerprint(&outcome.targets)
    };
    let serial = survey(None);
    for threads in [1, 2, 4] {
        assert_eq!(
            serial,
            survey(Some(threads)),
            "faulty schedule diverged at {threads} thread(s)"
        );
    }
}

#[test]
fn seed_sweeps_replay_bit_for_bit_at_any_thread_count() {
    let sweep = |threads: usize| {
        let outcome = Campaign::builder()
            .targets([ProfileId::D5, ProfileId::D9].map(DeviceProfile::table5))
            .fuzzer(|| Box::new(L2FuzzTool::detection(FuzzConfig::default(), 1)))
            .executor(SeedSweepExecutor::derived(0xCAFE, 4).with_threads(threads))
            .run()
            .expect("sweep runs");
        assert_eq!(outcome.targets.len(), 8, "2 targets x 4 seeds");
        fingerprint(&outcome.targets)
    };
    let serial = sweep(1);
    assert_eq!(serial, sweep(3), "sweep diverged at 3 threads");
    assert_eq!(serial, sweep(8), "sweep diverged at 8 threads");
}
