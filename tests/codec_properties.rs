//! Property-based tests over the packet codecs and mutation invariants.

use btcore::{ByteReader, ByteWriter, Cid, FuzzRng, Identifier, Psm};
use l2cap::code::CommandCode;
use l2cap::packet::{L2capFrame, SignalingPacket};
use l2fuzz::guide::ChannelContext;
use l2fuzz::mutator::CoreFieldMutator;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn l2cap_frames_roundtrip(declared in 0u16..=2048, cid in 0u16..=0xFFFF, payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let frame = L2capFrame { declared_payload_len: declared, cid: Cid(cid), payload: payload.into() };
        let back = L2capFrame::parse(&frame.to_bytes()).unwrap();
        prop_assert_eq!(frame, back);
    }

    #[test]
    fn zero_copy_parse_matches_the_owned_parse(declared in 0u16..=2048, cid in 0u16..=0xFFFF, payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        // The shared-buffer parse path must be byte-for-byte equivalent to
        // the owned (copying) codec on every input frame.
        let frame = L2capFrame { declared_payload_len: declared, cid: Cid(cid), payload: payload.into() };
        let wire = btcore::FrameBuf::from_vec(frame.to_bytes());
        let owned = L2capFrame::parse(&wire).unwrap();
        let shared = L2capFrame::parse_buf(&wire).unwrap();
        prop_assert_eq!(&owned, &shared);
        prop_assert_eq!(owned.to_bytes(), shared.to_bytes());
        // The zero-copy payload really is a view into the parsed buffer.
        prop_assert!(shared.payload.shares_storage_with(&wire));

        // Same equivalence one layer down, on the signalling C-frame.
        let owned_sig = SignalingPacket::parse(&wire).unwrap();
        let shared_sig = SignalingPacket::parse_buf(&wire).unwrap();
        prop_assert_eq!(&owned_sig, &shared_sig);
        prop_assert_eq!(owned_sig.to_bytes(), shared_sig.to_bytes());
        prop_assert!(shared_sig.data.shares_storage_with(&wire));
        // Re-framing a parsed packet reuses the wire bytes and reproduces
        // them exactly.
        let reframed = shared_sig.to_frame();
        prop_assert_eq!(reframed.payload.as_slice(), wire.as_slice());
    }

    #[test]
    fn fragmentation_is_zero_copy_and_byte_identical(extra in 0usize..64, fragments in 1usize..5, seed in any::<u64>()) {
        use hci::acl::{fragment, reassemble, ACL_FRAGMENT_SIZE};
        // Payload sizes straddling continuation boundaries: (n-1) full
        // fragments plus a partial/empty tail around the boundary.
        let len = (fragments - 1) * ACL_FRAGMENT_SIZE + extra;
        let mut rng = FuzzRng::seed_from(seed);
        let payload: Vec<u8> = (0..len).map(|_| rng.next_u16() as u8).collect();
        let frame = L2capFrame::new(Cid(0x0040), payload);
        let wire = btcore::FrameBuf::from_vec(frame.to_bytes());

        let frags = fragment(btcore::ConnectionHandle(7), &wire);
        prop_assert_eq!(frags.len(), wire.len().div_ceil(ACL_FRAGMENT_SIZE).max(1));
        // Every fragment is a view into the frame's buffer, first flag set
        // exactly once, and the chunks are the byte-exact windows.
        let mut offset = 0usize;
        for (i, frag) in frags.iter().enumerate() {
            prop_assert_eq!(frag.boundary.is_first(), i == 0);
            prop_assert!(frag.data.shares_storage_with(&wire) || wire.is_empty());
            prop_assert_eq!(frag.data.as_slice(), &wire[offset..(offset + ACL_FRAGMENT_SIZE).min(wire.len())]);
            offset += frag.data.len();
        }
        prop_assert_eq!(offset, wire.len());

        // Reassembly restores the exact wire bytes, and a single-fragment
        // sequence reassembles without any copy.
        let back = reassemble(&frags).unwrap();
        prop_assert_eq!(back.as_slice(), wire.as_slice());
        if frags.len() == 1 {
            prop_assert!(back.shares_storage_with(&wire));
        }
        let reparsed = L2capFrame::parse_buf(&back).unwrap();
        prop_assert_eq!(reparsed, frame);
    }

    #[test]
    fn structural_validity_matches_the_decoder(code in any::<u8>(), data in proptest::collection::vec(any::<u8>(), 0..48)) {
        // The allocation-free validator used by the trace classifiers must
        // agree exactly with where `Command::decode` falls back to `Raw`.
        let is_raw = matches!(
            l2cap::command::Command::decode(code, &data),
            l2cap::command::Command::Raw { .. }
        );
        prop_assert_eq!(l2cap::command::Command::structurally_valid(code, &data), !is_raw);
    }

    #[test]
    fn signaling_packets_roundtrip(code in any::<u8>(), id in 1u8..=255, declared in 0u16..=1024, data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let pkt = SignalingPacket { identifier: Identifier(id), code, declared_data_len: declared, data: data.into() };
        let back = SignalingPacket::parse(&pkt.to_bytes()).unwrap();
        prop_assert_eq!(pkt, back);
    }

    #[test]
    fn command_decode_never_panics(code in any::<u8>(), data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let cmd = l2cap::command::Command::decode(code, &data);
        // Re-encoding a decoded command always yields bytes parseable again.
        let re = cmd.encode_data();
        let _ = l2cap::command::Command::decode(cmd.code_byte(), &re);
    }

    #[test]
    fn byte_writer_reader_roundtrip(values in proptest::collection::vec(any::<u16>(), 0..64)) {
        let mut w = ByteWriter::new();
        for v in &values {
            w.write_u16(*v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for v in &values {
            prop_assert_eq!(r.read_u16().unwrap(), *v);
        }
        prop_assert!(r.is_empty());
    }

    #[test]
    fn mutated_packets_keep_core_field_invariants(seed in any::<u64>(), code_idx in 0usize..26, garbage in 1usize..32) {
        let code = CommandCode::ALL[code_idx];
        let mut mutator = CoreFieldMutator::with_options(FuzzRng::seed_from(seed), true, true, garbage);
        let ctx = ChannelContext { scid: Cid(0x0040), dcid: Cid(0x0041), psm: Psm::SDP };
        let pkt = mutator.mutate(code, &ctx, Identifier(1));
        // The code byte is never mutated.
        prop_assert_eq!(pkt.code, code.value());
        // Any PSM carried is in the abnormal space of Table IV.
        let core = l2cap::fields::extract_core_values(code, &pkt.data);
        if let Some(psm) = core.psm {
            prop_assert!(l2cap::ranges::is_abnormal_psm(psm));
        }
        // The declared data length never exceeds what is carried (garbage is
        // appended after the declared fields).
        prop_assert!(usize::from(pkt.declared_data_len) <= pkt.data.len());
        // Garbage stays within the configured bound.
        prop_assert!(pkt.garbage_len() <= garbage.max(l2cap::fields::min_data_len(code)) + garbage);
    }
}
