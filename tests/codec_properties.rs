//! Property-based tests over the packet codecs and mutation invariants.

use btcore::{ByteReader, ByteWriter, Cid, FuzzRng, Identifier, Psm};
use l2cap::code::CommandCode;
use l2cap::packet::{L2capFrame, SignalingPacket};
use l2fuzz::guide::ChannelContext;
use l2fuzz::mutator::CoreFieldMutator;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn l2cap_frames_roundtrip(declared in 0u16..=2048, cid in 0u16..=0xFFFF, payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let frame = L2capFrame { declared_payload_len: declared, cid: Cid(cid), payload };
        let back = L2capFrame::parse(&frame.to_bytes()).unwrap();
        prop_assert_eq!(frame, back);
    }

    #[test]
    fn signaling_packets_roundtrip(code in any::<u8>(), id in 1u8..=255, declared in 0u16..=1024, data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let pkt = SignalingPacket { identifier: Identifier(id), code, declared_data_len: declared, data };
        let back = SignalingPacket::parse(&pkt.to_bytes()).unwrap();
        prop_assert_eq!(pkt, back);
    }

    #[test]
    fn command_decode_never_panics(code in any::<u8>(), data in proptest::collection::vec(any::<u8>(), 0..64)) {
        let cmd = l2cap::command::Command::decode(code, &data);
        // Re-encoding a decoded command always yields bytes parseable again.
        let re = cmd.encode_data();
        let _ = l2cap::command::Command::decode(cmd.code_byte(), &re);
    }

    #[test]
    fn byte_writer_reader_roundtrip(values in proptest::collection::vec(any::<u16>(), 0..64)) {
        let mut w = ByteWriter::new();
        for v in &values {
            w.write_u16(*v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for v in &values {
            prop_assert_eq!(r.read_u16().unwrap(), *v);
        }
        prop_assert!(r.is_empty());
    }

    #[test]
    fn mutated_packets_keep_core_field_invariants(seed in any::<u64>(), code_idx in 0usize..26, garbage in 1usize..32) {
        let code = CommandCode::ALL[code_idx];
        let mut mutator = CoreFieldMutator::with_options(FuzzRng::seed_from(seed), true, true, garbage);
        let ctx = ChannelContext { scid: Cid(0x0040), dcid: Cid(0x0041), psm: Psm::SDP };
        let pkt = mutator.mutate(code, &ctx, Identifier(1));
        // The code byte is never mutated.
        prop_assert_eq!(pkt.code, code.value());
        // Any PSM carried is in the abnormal space of Table IV.
        let core = l2cap::fields::extract_core_values(code, &pkt.data);
        if let Some(psm) = core.psm {
            prop_assert!(l2cap::ranges::is_abnormal_psm(psm));
        }
        // The declared data length never exceeds what is carried (garbage is
        // appended after the declared fields).
        prop_assert!(usize::from(pkt.declared_data_len) <= pkt.data.len());
        // Garbage stays within the configured bound.
        prop_assert!(pkt.garbage_len() <= garbage.max(l2cap::fields::min_data_len(code)) + garbage);
    }
}
