//! Fleet-service guarantees: a sweep killed mid-flight resumes from its
//! checkpoint to the **byte-identical** final report an uninterrupted run
//! produces; the resume is *verified* (re-running a committed shard must
//! reproduce its recorded digest); and same-vulnerability jobs collapse
//! into one corpus cluster with an exemplar trace.

use std::path::PathBuf;

use l2fuzz_repro::btcore::Identifier;
use l2fuzz_repro::btstack::profiles::ProfileId;
use l2fuzz_repro::l2cap::command::{Command, EchoRequest};
use l2fuzz_repro::l2cap::packet::signaling_frame_in;
use l2fuzz_repro::l2fuzz::{FuzzConfig, FuzzCtx, FuzzReport, Fuzzer, L2FuzzTool};
use l2fuzz_repro::service::{
    Checkpoint, JobOutcome, ResumeVerify, ServiceError, SweepService, SweepSpec,
};
use l2fuzz_repro::sniffer::TraceAnalysis;

/// A fresh scratch path under the target-adjacent temp dir.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("l2fuzz-service-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{name}-{}.json", std::process::id()))
}

/// The reference sweep: two vulnerable-device targets' worth of jobs in
/// five shards, budget-driven so every job burns the same packet count.
fn spec(name: &str) -> SweepSpec {
    SweepSpec::new(
        name,
        [ProfileId::D2, ProfileId::D4],
        SweepSpec::derived_seeds(0xF1EE7, 5),
    )
    .with_budget(2000)
    .with_shard_size(2)
}

#[test]
fn interrupted_sweep_resumes_to_the_byte_identical_report() {
    // The uninterrupted reference run (no checkpoint file at all).
    let reference = SweepService::new(spec("pin"))
        .workers(3)
        .run()
        .expect("reference sweep runs")
        .report
        .expect("reference sweep completes");

    // The same sweep, killed after every single shard commit: run with
    // `max_shards(1)` until done, a fresh service instance per invocation —
    // exactly what repeated crash-and-restart looks like to the checkpoint.
    let path = scratch("resume");
    let _ = std::fs::remove_file(&path);
    let mut resumed = None;
    for invocation in 0.. {
        assert!(
            invocation <= spec("pin").shard_count(),
            "sweep never finished"
        );
        let outcome = SweepService::new(spec("pin"))
            .workers(3)
            .checkpoint(&path)
            .verify(ResumeVerify::LastShard)
            .max_shards(1)
            .run()
            .expect("partial sweep runs");
        assert_eq!(outcome.resumed_from, invocation);
        if invocation > 0 {
            assert_eq!(
                outcome.verified_shards,
                vec![invocation - 1],
                "resume must re-prove the last committed shard"
            );
        }
        if let Some(report) = outcome.report {
            resumed = Some(report);
            break;
        }
        assert_eq!(outcome.committed_this_run, 1);
    }
    let resumed = resumed.expect("sweep completed");

    // The acceptance pin: byte-identical report JSON, equal digests.
    assert_eq!(resumed.to_json(), reference.to_json());
    assert_eq!(resumed.digest(), reference.digest());

    std::fs::remove_file(&path).ok();
}

#[test]
fn full_verification_accepts_a_clean_checkpoint_and_spec_mismatch_is_rejected() {
    let path = scratch("verify");
    let _ = std::fs::remove_file(&path);

    // Commit three shards, stop.
    SweepService::new(spec("verify"))
        .workers(2)
        .checkpoint(&path)
        .max_shards(3)
        .run()
        .expect("partial sweep runs");

    // Resuming under `All` re-runs all three committed shards and accepts.
    let outcome = SweepService::new(spec("verify"))
        .workers(2)
        .checkpoint(&path)
        .verify(ResumeVerify::All)
        .run()
        .expect("verified resume runs");
    assert_eq!(outcome.resumed_from, 3);
    assert_eq!(outcome.verified_shards, vec![0, 1, 2]);
    assert!(outcome.is_complete());

    // A different sweep definition must refuse the checkpoint outright.
    let err = SweepService::new(spec("verify").with_budget(999))
        .checkpoint(&path)
        .run()
        .expect_err("mismatched spec must be rejected");
    assert!(
        matches!(err, ServiceError::SpecMismatch { .. }),
        "got {err}"
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn tampered_checkpoint_fails_resume_verification() {
    let path = scratch("tamper");
    let _ = std::fs::remove_file(&path);

    SweepService::new(spec("tamper"))
        .workers(2)
        .checkpoint(&path)
        .max_shards(2)
        .run()
        .expect("partial sweep runs");

    // Corrupt the last committed shard's pinned digests (keeping the JSON
    // well-formed): the resume must notice the re-run diverges.
    let mut checkpoint = Checkpoint::load(&path).expect("checkpoint loads");
    let last = checkpoint.shards.last_mut().expect("two shards committed");
    last.jobs[0].trace_digest ^= 1;
    last.digest = l2fuzz_repro::service::ShardRecord::digest_jobs(&last.jobs);
    checkpoint.save(&path).expect("tampered checkpoint saves");

    let err = SweepService::new(spec("tamper"))
        .workers(2)
        .checkpoint(&path)
        .verify(ResumeVerify::LastShard)
        .run()
        .expect_err("tampered checkpoint must fail verification");
    assert!(
        matches!(err, ServiceError::VerifyFailed { shard: 1, .. }),
        "got {err}"
    );

    std::fs::remove_file(&path).ok();
}

#[test]
fn same_vulnerability_jobs_collapse_into_one_cluster() {
    // Five D2 seeds big enough to crash every job, plus hardened D4 jobs
    // that must stay clusterless.
    let report = SweepService::new(spec("dedup"))
        .workers(4)
        .run()
        .expect("sweep runs")
        .report
        .expect("sweep completes");

    let d2: Vec<_> = report
        .jobs
        .iter()
        .filter(|j| j.target == ProfileId::D2)
        .collect();
    let d4: Vec<_> = report
        .jobs
        .iter()
        .filter(|j| j.target == ProfileId::D4)
        .collect();
    assert!(d2.iter().all(|j| j.vulnerable && j.cluster.is_some()));
    assert!(d4.iter().all(|j| !j.vulnerable && j.cluster.is_none()));

    // The acceptance criterion: N same-vuln jobs, ONE cluster.
    assert_eq!(report.corpus.len(), 1, "{:#?}", report.corpus.clusters());
    let cluster = &report.corpus.clusters()[0];
    assert_eq!(cluster.count(), d2.len());
    assert_eq!(
        cluster.members,
        d2.iter().map(|j| j.index).collect::<Vec<_>>(),
        "members are committed in job order"
    );
    assert_eq!(cluster.vuln_ids, vec!["SIM-BLUEDROID-L2C-NULLPTR"]);
    assert_eq!(cluster.exemplar_job, d2[0].index);

    // The exemplar trace is a real, replayable artifact: its state coverage
    // reproduces the signature the cluster is keyed on.
    let analysis = TraceAnalysis::from_trace(&cluster.exemplar_trace);
    assert_eq!(
        analysis.coverage.signature(),
        cluster.key.coverage_signature
    );
}

// ---------------------------------------------------------------------------
// PR 8 resilience: panicking and hung jobs are quarantined into the
// checkpoint, the `max_job_failures` threshold stops a degenerating sweep
// durably, and a quarantined sweep still resumes byte-identically.

/// A deterministically misbehaving worker: depending on the job's derived
/// seed it panics outright, hangs in an infinite send loop (so only the
/// per-job watchdog ends it), or behaves like the real budget-driven tool.
struct ChaosFuzzer {
    inner: L2FuzzTool,
}

impl Fuzzer for ChaosFuzzer {
    fn name(&self) -> &'static str {
        "chaos"
    }
    fn fuzz(&mut self, ctx: &mut FuzzCtx<'_>) -> Option<FuzzReport> {
        match ctx.seed % 4 {
            0 => panic!("injected worker fault"),
            1 => {
                // Hang: keep the link busy forever.  Virtual time advances
                // with every frame, so the spec's watchdog — not wall-clock
                // luck — is what terminates this job.
                let probe = Command::EchoRequest(EchoRequest {
                    data: vec![0x4C, 0x32],
                });
                loop {
                    let frame = signaling_frame_in(ctx.link.arena(), Identifier(0x42), &probe);
                    ctx.link.send_frame(&frame);
                }
            }
            _ => self.inner.fuzz(ctx),
        }
    }
}

/// The reference sweep under a chaos fuzzer: healthy jobs finish in ~3
/// virtual seconds, so an 8-second watchdog only ever fires on the hung
/// ones.
fn chaos_service(name: &str) -> SweepService {
    SweepService::new(spec(name).with_watchdog_secs(8)).customize(|builder| {
        builder.fuzzer(|| {
            Box::new(ChaosFuzzer {
                inner: L2FuzzTool::new(FuzzConfig::budget_driven()),
            })
        })
    })
}

#[test]
fn panicking_and_hung_jobs_are_quarantined_not_fatal() {
    let path = scratch("quarantine");
    let _ = std::fs::remove_file(&path);

    let report = chaos_service("quarantine")
        .workers(3)
        .checkpoint(&path)
        .run()
        .expect("chaos sweep still completes")
        .report
        .expect("sweep completes");

    // All three outcomes occur, and every job is accounted for.
    assert_eq!(report.jobs.len(), 10);
    let count = |outcome: JobOutcome| report.jobs.iter().filter(|j| j.outcome == outcome).count();
    assert!(count(JobOutcome::Completed) > 0, "no job survived chaos");
    assert!(count(JobOutcome::Failed) > 0, "no injected panic landed");
    assert!(count(JobOutcome::TimedOut) > 0, "no watchdog fired");

    // Quarantined jobs carry their reason and zeroed stats; completed jobs
    // are untouched by their neighbours' failures.
    for job in &report.jobs {
        if job.outcome == JobOutcome::Completed {
            assert!(job.failure.is_none());
            assert!(job.packets_sent > 0);
        } else {
            assert!(job.failure.is_some(), "quarantine without a reason");
            assert_eq!(job.packets_sent, 0);
            assert!(!job.vulnerable);
            assert!(job.cluster.is_none());
        }
    }
    for job in report
        .jobs
        .iter()
        .filter(|j| j.outcome == JobOutcome::TimedOut)
    {
        assert!(
            job.failure.as_deref().unwrap().contains("watchdog expired"),
            "timeout must name the watchdog"
        );
    }

    // The quarantine is durable (checkpointed) and surfaced in the summary.
    let quarantined = report.failed_jobs();
    let checkpoint = Checkpoint::load(&path).expect("checkpoint loads");
    assert_eq!(checkpoint.failed_jobs(), quarantined);
    assert!(report
        .summary_line()
        .contains(&format!("({quarantined} quarantined)")));

    std::fs::remove_file(&path).ok();
}

#[test]
fn the_failure_threshold_stops_the_sweep_durably_and_resume_finishes_it() {
    // The uninterrupted chaos reference (no checkpoint, no threshold).
    let reference = chaos_service("threshold-ref")
        .workers(3)
        .run()
        .expect("reference chaos sweep runs")
        .report
        .expect("reference completes");
    let quarantined = reference.failed_jobs();
    assert!(quarantined >= 4, "need enough chaos to cross the threshold");

    // With `max_job_failures(3)` the sweep must stop once a committed shard
    // pushes the cumulative quarantine count past three — after durably
    // committing that shard.
    let path = scratch("threshold");
    let _ = std::fs::remove_file(&path);
    let err = chaos_service("threshold-ref")
        .workers(3)
        .checkpoint(&path)
        .max_job_failures(3)
        .run()
        .expect_err("threshold must stop the sweep");
    let crossed = match err {
        ServiceError::TooManyFailures { limit, failed } => {
            assert_eq!(limit, 3);
            assert!(failed > limit);
            failed
        }
        other => panic!("expected TooManyFailures, got {other}"),
    };
    let checkpoint = Checkpoint::load(&path).expect("crossing shard was committed");
    assert_eq!(checkpoint.failed_jobs(), crossed);
    assert!(!checkpoint.shards.is_empty());
    assert!(checkpoint.shards.len() < spec("threshold-ref").shard_count());

    // Lifting the threshold resumes the quarantined sweep — with the last
    // committed shard (which contains quarantined jobs) re-proven against
    // its digest — to the byte-identical final report.
    let outcome = chaos_service("threshold-ref")
        .workers(3)
        .checkpoint(&path)
        .verify(ResumeVerify::LastShard)
        .run()
        .expect("resume without a threshold completes");
    assert_eq!(outcome.resumed_from, checkpoint.shards.len());
    assert_eq!(outcome.verified_shards, vec![checkpoint.shards.len() - 1]);
    let resumed = outcome.report.expect("resume completes");
    assert_eq!(resumed.to_json(), reference.to_json());
    assert_eq!(resumed.digest(), reference.digest());

    std::fs::remove_file(&path).ok();
}

#[test]
fn detection_mode_surfaces_findings_without_a_budget() {
    // No budget: the campaign default (detection fuzzer + out-of-band
    // oracle) stops at the first vulnerability and reports a finding.
    let report = SweepService::new(
        SweepSpec::new("detect", [ProfileId::D2], SweepSpec::derived_seeds(3, 2))
            .with_shard_size(1),
    )
    .run()
    .expect("sweep runs")
    .report
    .expect("sweep completes");

    assert!(report.jobs.iter().all(|j| j.vulnerable && j.findings > 0));
    assert_eq!(report.vulnerable_jobs(), 2);
    assert!(!report.corpus.is_empty());
}
