//! Streaming-writer equivalence: the report path serializes through
//! `serde_json::JsonStreamWriter` (no owned `Value` tree), and the output
//! must be byte-identical to the tree-based writer *and* round-trip through
//! the parser back to the original structures.

use btstack::profiles::{DeviceProfile, ProfileId};
use l2fuzz::campaign::Campaign;
use l2fuzz::report::FuzzReport;
use sniffer::Trace;

/// A real campaign outcome (vulnerable target → findings, scan, states —
/// every branch of the document).
fn outcome() -> (FuzzReport, Trace) {
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D2))
        .seed(11)
        .run()
        .expect("campaign runs")
        .into_single();
    (outcome.report, outcome.trace)
}

#[test]
fn streamed_report_is_byte_identical_to_the_tree_writer() {
    let (report, _) = outcome();
    assert!(report.vulnerable(), "need findings to cover every branch");
    let streamed = report.to_json().unwrap();
    let tree = serde_json::to_string_pretty(&report).unwrap();
    assert_eq!(
        streamed, tree,
        "streaming writer diverged from the tree writer"
    );
}

#[test]
fn streamed_report_round_trips() {
    let (report, _) = outcome();
    let json = report.to_json().unwrap();
    let back = FuzzReport::from_json(&json).unwrap();
    assert_eq!(back, report);
    // And serializing the parsed copy reproduces the exact document.
    assert_eq!(back.to_json().unwrap(), json);
}

#[test]
fn streamed_trace_is_byte_identical_and_round_trips() {
    let (_, trace) = outcome();
    assert!(!trace.is_empty());
    let streamed = trace.to_json();
    let tree = serde_json::to_string_pretty(&trace).unwrap();
    assert_eq!(
        streamed, tree,
        "trace streaming diverged from the tree writer"
    );
    let back = Trace::from_json(&streamed).unwrap();
    assert_eq!(back, trace);
}

#[test]
fn empty_and_skeleton_documents_stream_identically() {
    // An empty trace exercises the lazy `[]`/`{}` collapsing.
    let empty = Trace::new();
    assert_eq!(
        empty.to_json(),
        serde_json::to_string_pretty(&empty).unwrap()
    );
    assert_eq!(Trace::from_json(&empty.to_json()).unwrap(), empty);

    // A hardened target gives a findings-free report (empty array branch).
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D4))
        .seed(3)
        .run()
        .expect("campaign runs")
        .into_single();
    assert!(!outcome.report.vulnerable());
    assert_eq!(
        outcome.report.to_json().unwrap(),
        serde_json::to_string_pretty(&outcome.report).unwrap()
    );
}
