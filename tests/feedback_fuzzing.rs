//! Coverage-guided fuzzing end-to-end: the feedback engine must keep every
//! guarantee the dictionary engine gives — bit-for-bit replay at any
//! executor parallelism, schedule-independent sweep artifacts — while
//! actually closing the loop: corpus retention, energy scheduling, and
//! detection of the seeded extended-profile vulnerabilities through
//! `Campaign::builder().feedback(...)`.

use btstack::profiles::{DeviceProfile, ProfileId};
use feedback::{CorpusHub, FeedbackCampaignExt, FeedbackConfig, FeedbackCorpus};
use l2fuzz::campaign::{
    Campaign, SeedSweepExecutor, SerialExecutor, ShardedExecutor, TargetOutcome,
};

/// Serializes every initiator of every target: reports as JSON, traces as
/// raw timestamped bytes — the full observable output of a campaign.
fn fingerprint(targets: &[TargetOutcome]) -> Vec<(Vec<String>, Vec<Vec<u8>>)> {
    targets
        .iter()
        .map(|t| {
            let reports = t.reports().map(|r| r.to_json().unwrap()).collect();
            let trace = t
                .trace
                .records()
                .iter()
                .map(|r| {
                    let mut bytes = r.timestamp_micros.to_le_bytes().to_vec();
                    bytes.extend(r.frame.to_bytes());
                    bytes
                })
                .collect();
            (reports, trace)
        })
        .collect()
}

#[test]
fn feedback_campaigns_replay_bit_for_bit_across_executors() {
    let survey = |threads: Option<usize>| {
        let builder = Campaign::builder()
            .targets([ProfileId::D2, ProfileId::D4, ProfileId::D9].map(DeviceProfile::table5))
            .feedback(FeedbackConfig::default())
            .seed(0xFEED_5EED);
        let outcome = match threads {
            None => builder.executor(SerialExecutor),
            Some(n) => builder.executor(ShardedExecutor::new(n)),
        }
        .run()
        .expect("feedback survey runs");
        fingerprint(&outcome.targets)
    };
    let serial = survey(None);
    for threads in [1, 2, 4] {
        assert_eq!(
            serial,
            survey(Some(threads)),
            "feedback campaign diverged at {threads} thread(s)"
        );
    }
}

#[test]
fn feedback_detects_the_seeded_extended_vulnerabilities() {
    // The coverage-guided mode must find all three extended-profile seeds
    // end-to-end: the LE credit underflow (D9), the SPSM confusion (D10) and
    // the ERTM zero-window DoS (D11) — the last *without* explicitly turning
    // on configuration-option mutation, because feedback mode always mutates
    // options on classic links.
    for (id, vuln_id) in [
        (ProfileId::D9, "SIM-ZEPHYR-LE-CREDIT-UNDERFLOW"),
        (ProfileId::D10, "SIM-BLUEDROID-SPSM-OOB"),
        (ProfileId::D11, "SIM-BLUEZ-ERTM-ZERO-WINDOW"),
    ] {
        let outcome = Campaign::builder()
            .target(DeviceProfile::table5(id))
            .feedback(FeedbackConfig::default())
            .seed(51)
            .run()
            .expect("feedback campaign runs")
            .into_single();
        assert!(
            outcome.report.vulnerable(),
            "{id}: the seeded vulnerability must be found"
        );
        assert_eq!(outcome.report.fuzzer, "L2Fuzz+feedback");
        let fired = outcome.device.lock().fired_vulnerabilities().to_vec();
        assert_eq!(fired[0].vuln.id, vuln_id, "{id}: wrong vulnerability fired");
    }
}

#[test]
fn feedback_retains_a_corpus_and_reseeds_from_it() {
    // A hardened target never crashes, so the whole budget goes into
    // exploration: the run must retain novelty, and a second campaign seeded
    // from the first's published corpus must replay deterministically.
    let hub = CorpusHub::new();
    let config = FeedbackConfig::default().with_hub(hub.clone());
    Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D4))
        .feedback(config)
        .seed(0xC0FFEE)
        .run()
        .expect("campaign runs");
    let merged = hub.merged();
    assert!(
        !merged.is_empty(),
        "a full hardened-target run must retain corpus entries"
    );
    // The corpus serializes byte-identically — it is a durable artifact.
    let json = merged.to_json();
    assert_eq!(FeedbackCorpus::from_json(&json).unwrap().to_json(), json);

    let reseeded = |seed_corpus: FeedbackCorpus| {
        Campaign::builder()
            .target(DeviceProfile::table5(ProfileId::D4))
            .feedback(FeedbackConfig::default().with_seed_corpus(seed_corpus))
            .seed(0xC0FFEE + 1)
            .run()
            .expect("reseeded campaign runs")
            .into_single()
            .report
            .to_json()
            .unwrap()
    };
    assert_eq!(reseeded(merged.clone()), reseeded(merged));
}

#[test]
fn sweep_corpus_merge_is_schedule_independent() {
    // Eight seeds, pooled through the hub, at 1/2/4 worker threads: the
    // per-target outputs AND the merged corpus must be identical regardless
    // of which worker finished which unit first — publish-only sharing plus
    // the canonical seed-order fold.
    let sweep = |threads: usize| {
        let hub = CorpusHub::new();
        let outcome = Campaign::builder()
            .targets([ProfileId::D4, ProfileId::D9].map(DeviceProfile::table5))
            .feedback(FeedbackConfig::default().with_hub(hub.clone()))
            .executor(SeedSweepExecutor::derived(0xFEED_CAFE, 4).with_threads(threads))
            .run()
            .expect("feedback sweep runs");
        assert_eq!(outcome.targets.len(), 8, "2 targets x 4 seeds");
        (fingerprint(&outcome.targets), hub.merged().to_json())
    };
    let (serial_targets, serial_corpus) = sweep(1);
    for threads in [2, 4] {
        let (targets, corpus) = sweep(threads);
        assert_eq!(
            serial_targets, targets,
            "sweep outputs diverged at {threads} threads"
        );
        assert_eq!(
            serial_corpus, corpus,
            "merged corpus diverged at {threads} threads"
        );
    }
}
