//! Asserted reproduction of the Table VI elapsed-time shape.
//!
//! The bench binaries only *print* the per-device detection times; this test
//! pins the relative ordering the simulation is built to preserve: devices
//! with few service ports and wide vulnerability triggers (D5, the AirPods)
//! fall over quickly, while the device with the most ports and the
//! narrowest trigger (D8, the BlueZ laptop) takes by far the longest — and
//! the three hardened devices never fall at all.

use bench::table6_survey;
use btstack::profiles::ProfileId;
use std::collections::HashMap;

#[test]
fn table6_elapsed_time_ordering_matches_the_paper_shape() {
    // Sharded across 2 workers — determinism is covered by
    // tests/deterministic_replay.rs, so the survey itself may as well run in
    // parallel.
    let survey = table6_survey(0x7AB6, 800, 2);
    assert_eq!(survey.targets.len(), 8);

    let mut elapsed: HashMap<ProfileId, Option<u64>> = HashMap::new();
    for outcome in &survey.targets {
        let time = outcome.report.findings.first().map(|f| f.elapsed_secs);
        elapsed.insert(outcome.profile.id, time);
    }

    // Table VI: vulnerabilities on D1, D2, D3, D5 and D8; nothing on the
    // hardened D4, D6 and D7.
    for id in [
        ProfileId::D1,
        ProfileId::D2,
        ProfileId::D3,
        ProfileId::D5,
        ProfileId::D8,
    ] {
        assert!(
            elapsed[&id].is_some(),
            "{id}: the seeded vulnerability must be found"
        );
    }
    for id in [ProfileId::D4, ProfileId::D6, ProfileId::D7] {
        assert_eq!(elapsed[&id], None, "{id}: hardened device must survive");
    }

    let vulnerable: Vec<(ProfileId, u64)> = [
        ProfileId::D1,
        ProfileId::D2,
        ProfileId::D3,
        ProfileId::D5,
        ProfileId::D8,
    ]
    .into_iter()
    .map(|id| (id, elapsed[&id].unwrap()))
    .collect();

    // D5 (6 ports, widest trigger, lightest stack) is the fastest find.
    let d5 = elapsed[&ProfileId::D5].unwrap();
    for (id, secs) in &vulnerable {
        assert!(
            d5 <= *secs,
            "D5 ({d5} s) must be at least as fast as {id} ({secs} s)"
        );
    }

    // D8 (13 ports, trigger two orders of magnitude narrower, heaviest
    // stack) dominates every other detection time.
    let d8 = elapsed[&ProfileId::D8].unwrap();
    for (id, secs) in &vulnerable {
        if *id != ProfileId::D8 {
            assert!(
                d8 > *secs,
                "D8 ({d8} s) must be the slowest find, but {id} took {secs} s"
            );
        }
    }
}
