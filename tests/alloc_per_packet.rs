//! Allocation budget of the zero-copy injection pipeline.
//!
//! The frame pipeline's contract (PR 3) is that steady-state packet
//! injection — mutate in an arena buffer, frame it, push it across the
//! virtual air — performs O(1) heap allocations per packet, measured here
//! with a counting global allocator at **≤ 2 allocations per injected
//! packet** (in practice: one `Arc` control block when the mutation buffer
//! is frozen; everything else is recycled through the `FrameArena`).

use alloc_counter::{allocations, CountingAllocator};
use btcore::{BdAddr, Cid, DeviceMeta, FuzzRng, Identifier, LinkSlot, Psm, SimClock};
use hci::device::VirtualDevice;
use hci::link::{new_tap, LinkConfig};
use hci::medium::{EventMedium, LinkHandle, Medium};
use l2cap::code::CommandCode;
use l2cap::packet::L2capFrame;
use l2fuzz::guide::ChannelContext;
use l2fuzz::mutator::CoreFieldMutator;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// A registered device that consumes every frame silently: the injection
/// path is measured without the target's own response allocations.
struct SilentDevice {
    meta: DeviceMeta,
}

impl VirtualDevice for SilentDevice {
    fn meta(&self) -> DeviceMeta {
        self.meta.clone()
    }
    fn receive(&mut self, _slot: LinkSlot, _frame: &L2capFrame) -> Vec<L2capFrame> {
        Vec::new()
    }
    fn bluetooth_alive(&self) -> bool {
        true
    }
}

fn silent_link() -> LinkHandle {
    let clock = SimClock::new();
    let mut air = EventMedium::new(clock.clone());
    let addr = BdAddr::new([0xAA, 0xBB, 0xCC, 0x00, 0x00, 0x01]);
    air.register(Box::new(SilentDevice {
        meta: DeviceMeta::new(addr, "silent", btcore::DeviceClass::Other),
    }));
    air.connect(addr, LinkConfig::ideal(), FuzzRng::seed_from(7))
        .unwrap()
}

fn inject(mutator: &mut CoreFieldMutator, link: &mut LinkHandle, ctx: &ChannelContext, n: u32) {
    for i in 0..n {
        let packet = mutator.mutate(
            CommandCode::ConfigureRequest,
            ctx,
            Identifier((i % 250 + 1) as u8),
        );
        let frame = packet.to_frame_in(link.arena());
        let responses = link.send_frame(&frame);
        assert!(responses.is_empty());
    }
}

#[test]
fn steady_state_injection_allocates_at_most_two_per_packet() {
    let ctx = ChannelContext {
        scid: Cid(0x0040),
        dcid: Cid(0x0041),
        psm: Psm::SDP,
    };

    // Untapped link: buffers recycle through the arena each exchange.
    let mut link = silent_link();
    let mut mutator = CoreFieldMutator::new(FuzzRng::seed_from(42));
    // Warm-up: populate the arena pools and any lazily-allocated state.
    inject(&mut mutator, &mut link, &ctx, 64);

    const PACKETS: u32 = 1_000;
    let before = allocations();
    inject(&mut mutator, &mut link, &ctx, PACKETS);
    let total = allocations() - before;
    let per_packet = total as f64 / f64::from(PACKETS);
    assert!(
        per_packet <= 2.0,
        "steady-state injection allocates {per_packet:.3} times per packet \
         ({total} allocations for {PACKETS} packets); the pipeline budget is 2"
    );

    // With a tap attached every frame is retained by the capture, so its
    // buffer cannot recycle — the budget grows by the retained backing store
    // (one Vec per packet) but stays O(1).
    let mut link = silent_link();
    let tap = new_tap();
    link.attach_tap(tap.clone());
    inject(&mut mutator, &mut link, &ctx, 64);
    let before = allocations();
    inject(&mut mutator, &mut link, &ctx, PACKETS);
    let total = allocations() - before;
    let per_packet = total as f64 / f64::from(PACKETS);
    assert!(
        per_packet <= 4.0,
        "tapped injection allocates {per_packet:.3} times per packet; budget is 4"
    );
    assert!(tap.lock().len() >= PACKETS as usize);
}

#[test]
fn tap_records_share_the_injected_frames_buffers() {
    // The capture pipeline is zero-copy end-to-end: the record a tap holds
    // is a view into the very buffer the mutator filled.
    let ctx = ChannelContext {
        scid: Cid(0x0040),
        dcid: Cid(0x0041),
        psm: Psm::SDP,
    };
    let mut link = silent_link();
    let tap = new_tap();
    link.attach_tap(tap.clone());
    let mut mutator = CoreFieldMutator::new(FuzzRng::seed_from(1));
    let packet = mutator.mutate(CommandCode::ConfigureRequest, &ctx, Identifier(1));
    let frame = packet.to_frame_in(link.arena());
    assert!(
        frame.payload.shares_storage_with(&packet.data),
        "framing a mutated packet must reuse the mutation buffer"
    );
    link.send_frame(&frame);
    let records = tap.lock();
    assert_eq!(records.len(), 1);
    assert!(
        records[0].frame.payload.shares_storage_with(&packet.data),
        "the tap record must borrow the mutation buffer, not copy it"
    );
}
