//! Chaos campaigns end to end: deterministic fault injection at the medium,
//! fault-tolerant drivers above it.
//!
//! The PR 8 resilience layer must satisfy three end-to-end properties.
//! **Detection survives degradation**: the seeded vulnerabilities of the
//! BR/EDR phone (D2), the LE wearable (D9) and the dual-mode phone (D10)
//! are still found — with the device-side ground truth of a *fired*
//! vulnerability, not just a verdict — under ≥10% combined loss and
//! corruption.  **No false alarms**: a hardened-but-lossy target (D4) never
//! draws a DoS/Crash verdict, because the detector's ping retries
//! distinguish a lossy link from a dead target; disarming the retries
//! reintroduces the false verdicts, proving they are what carries the
//! property.  **Faulty schedules replay**: every chaos campaign is as
//! bit-for-bit reproducible as an ideal-link one.

use btstack::profiles::{DeviceProfile, ProfileId};
use l2fuzz::campaign::Campaign;
use l2fuzz::config::FuzzConfig;
use l2fuzz::session::L2FuzzTool;
use l2fuzz::{FaultPlan, RetryPolicy};

/// A detection campaign against `id` under `plan`, 5 rounds, default
/// (lossy-link) retry.
fn chaos_outcome(id: ProfileId, plan: FaultPlan, seed: u64) -> l2fuzz::campaign::TargetOutcome {
    Campaign::builder()
        .target(DeviceProfile::table5(id))
        .fuzzer(|| Box::new(L2FuzzTool::detection(FuzzConfig::default(), 5)))
        .faults(plan)
        .seed(seed)
        .run()
        .expect("chaos campaign runs")
        .into_single()
}

// ---------------------------------------------------------------------------
// Detection under combined loss + corruption, with device-side ground truth.

#[test]
fn bredr_phone_vuln_detected_under_combined_loss_and_corruption() {
    let outcome = chaos_outcome(ProfileId::D2, FaultPlan::degraded(0.10, 0.05), 3);
    assert!(outcome.report.vulnerable(), "D2 vuln lost to link faults");
    let fired = outcome.device.lock().fired_vulnerabilities().to_vec();
    assert!(
        !fired.is_empty(),
        "the verdict must come from a fired seeded vulnerability"
    );
}

#[test]
fn le_wearable_vuln_detected_under_combined_loss_and_corruption() {
    let outcome = chaos_outcome(ProfileId::D9, FaultPlan::degraded(0.10, 0.05), 2);
    assert!(outcome.report.vulnerable(), "D9 vuln lost to link faults");
    let fired = outcome.device.lock().fired_vulnerabilities().to_vec();
    assert_eq!(fired[0].vuln.id, "SIM-ZEPHYR-LE-CREDIT-UNDERFLOW");
}

#[test]
fn dual_mode_phone_vuln_detected_under_combined_loss_and_corruption() {
    let outcome = chaos_outcome(ProfileId::D10, FaultPlan::degraded(0.10, 0.05), 1);
    assert!(outcome.report.vulnerable(), "D10 vuln lost to link faults");
    let fired = outcome.device.lock().fired_vulnerabilities().to_vec();
    assert_eq!(fired[0].vuln.id, "SIM-BLUEDROID-SPSM-OOB");
}

// ---------------------------------------------------------------------------
// The chaos matrix: one fault family at a time, per transport.  Each cell
// must complete, stay deterministic, and keep finding the seeded vuln.

#[test]
fn chaos_matrix_loss_corrupt_stall_on_both_transports() {
    let plans = [
        ("loss", FaultPlan::none().with_loss(0.2)),
        ("corrupt", FaultPlan::none().with_corruption(0.15)),
        ("stall", FaultPlan::none().with_stall(0.02, 10_000)),
    ];
    for (fault, plan) in plans {
        for (transport, id) in [("BR/EDR", ProfileId::D2), ("LE", ProfileId::D9)] {
            let a = chaos_outcome(id, plan, 7);
            let b = chaos_outcome(id, plan, 7);
            assert_eq!(
                a.report.to_json().unwrap(),
                b.report.to_json().unwrap(),
                "{fault} × {transport}: chaos campaign must replay bit for bit"
            );
            assert!(
                a.report.vulnerable(),
                "{fault} × {transport}: seeded vuln lost to the fault"
            );
            assert!(
                !a.device.lock().fired_vulnerabilities().is_empty(),
                "{fault} × {transport}: verdict without a fired vulnerability"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// False-DoS immunity: a hardened target on a lossy link stays Healthy, and
// it is the ping retries that make it so.

#[test]
fn hardened_lossy_target_draws_zero_false_dos_verdicts() {
    // D4 has no seeded vulnerabilities: any verdict against it is false.
    // 15% loss + 5% corruption, several seeds — the default lossy-link
    // retry policy must keep every campaign Healthy.
    for seed in 0u64..6 {
        let outcome = chaos_outcome(ProfileId::D4, FaultPlan::degraded(0.15, 0.05), seed);
        assert!(
            !outcome.report.vulnerable(),
            "seed {seed}: lossy link misdiagnosed as a dead target"
        );
        assert!(
            outcome.device.lock().fired_vulnerabilities().is_empty(),
            "hardened D4 cannot fire vulnerabilities"
        );
    }
}

#[test]
fn disarming_ping_retries_reintroduces_the_false_verdicts() {
    // The control experiment: same faulty link, retries explicitly off.
    // A single unanswered ping now counts as a dead target, so the lossy
    // link produces a false verdict — proving the retry policy (not luck)
    // is what carries `hardened_lossy_target_draws_zero_false_dos_verdicts`.
    let false_verdicts = (0u64..6)
        .filter(|&seed| {
            Campaign::builder()
                .target(DeviceProfile::table5(ProfileId::D4))
                .fuzzer(|| Box::new(L2FuzzTool::detection(FuzzConfig::default(), 5)))
                .faults(FaultPlan::degraded(0.15, 0.05))
                .retry(RetryPolicy::none())
                .seed(seed)
                .run()
                .expect("campaign runs")
                .into_single()
                .report
                .vulnerable()
        })
        .count();
    assert!(
        false_verdicts > 0,
        "without retries a 15%-loss link should masquerade as dead at least once"
    );
}

// ---------------------------------------------------------------------------
// Degradation costs time, not correctness.

#[test]
fn state_coverage_survives_a_degraded_link() {
    // The hardened D4 runs its full session on both links.  The guide's
    // retried preludes are what keep the walk complete: every one of the
    // paper's 13 BR/EDR states is still parked and tested at 10% loss + 5%
    // corruption, even though the faults visibly reshape the packet stream.
    let ideal = chaos_outcome(ProfileId::D4, FaultPlan::none(), 3);
    let faulty = chaos_outcome(ProfileId::D4, FaultPlan::degraded(0.10, 0.05), 3);
    assert!(!ideal.report.vulnerable());
    assert!(!faulty.report.vulnerable());
    assert_eq!(
        faulty.report.states_tested.len(),
        13,
        "retried preludes must keep BR/EDR coverage at 13 of 19 states"
    );
    assert_eq!(faulty.report.states_tested, ideal.report.states_tested);
    assert_ne!(
        faulty.report.packets_sent, ideal.report.packets_sent,
        "the fault plan should visibly reshape the campaign"
    );
}

#[test]
fn dump_read_failures_are_retried_across_checks() {
    // Half the crash-dump reads fail; the dump survives a failed read, so a
    // later detection check can still collect it.  The campaign stays
    // deterministic either way.
    let plan = FaultPlan::none().with_dump_read_failure(0.5);
    let a = chaos_outcome(ProfileId::D2, plan, 11);
    let b = chaos_outcome(ProfileId::D2, plan, 11);
    assert!(a.report.vulnerable());
    assert_eq!(a.report.to_json().unwrap(), b.report.to_json().unwrap());
}
