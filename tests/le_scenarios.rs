//! Link-type scenarios: LE credit-based flows, enhanced reconfiguration and
//! ERTM option fuzzing, end to end.
//!
//! The first half mirrors `tests/state_machine_conformance.rs` for the LE
//! side of the two-sided transition table; the second half runs the extended
//! device profiles (LE-only wearable, dual-mode phone, ERTM-capable speaker)
//! through `Campaign::builder()` and checks the seeded vulnerabilities are
//! detected.  A regression test pins BR/EDR initiator coverage at exactly
//! the paper's 13 of 19 states so the new paths cannot perturb the
//! Fig. 10/11 numbers.

use btcore::LinkType;
use btstack::device::HostStatus;
use btstack::profiles::{DeviceProfile, ProfileId};
use l2cap::code::CommandCode;
use l2cap::state::{spec_transition, Action, ChannelState, StateMachine};
use l2fuzz::campaign::Campaign;
use l2fuzz::config::FuzzConfig;
use l2fuzz::fuzzer::TxBudget;
use l2fuzz::session::L2FuzzTool;
use sniffer::StateCoverage;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// LE conformance: the credit-based flows as state-machine paths.

#[test]
fn le_credit_based_connect_reaches_open_through_wait_connect() {
    let mut sm = StateMachine::for_link(LinkType::Le);
    let r = sm.on_command(CommandCode::LeCreditBasedConnectionRequest, true);
    assert!(r.actions.contains(&Action::Respond(
        CommandCode::LeCreditBasedConnectionResponse
    )));
    assert!(r.visited.contains(&ChannelState::WaitConnect));
    assert_eq!(sm.state(), ChannelState::Open);
    // No configuration phase on LE: the channel never saw a config state.
    assert!(!sm.visited().contains(&ChannelState::WaitConfigReqRsp));
    assert!(!sm.visited().contains(&ChannelState::WaitConfig));
}

#[test]
fn enhanced_connect_and_reconfigure_pass_through_wait_config() {
    let mut sm = StateMachine::for_link(LinkType::Le);
    let r = sm.on_command(CommandCode::CreditBasedConnectionRequest, true);
    assert!(r
        .actions
        .contains(&Action::Respond(CommandCode::CreditBasedConnectionResponse)));
    assert_eq!(sm.state(), ChannelState::Open);

    let r = sm.on_command(CommandCode::CreditBasedReconfigureRequest, true);
    assert!(r.actions.contains(&Action::Respond(
        CommandCode::CreditBasedReconfigureResponse
    )));
    assert!(r.visited.contains(&ChannelState::WaitConfig));
    assert_eq!(sm.state(), ChannelState::Open);
}

#[test]
fn refused_le_connect_returns_to_closed_through_wait_connect() {
    let mut sm = StateMachine::for_link(LinkType::Le);
    let r = sm.on_command(CommandCode::LeCreditBasedConnectionRequest, false);
    assert_eq!(sm.state(), ChannelState::Closed);
    assert!(r.visited.contains(&ChannelState::WaitConnect));
    assert!(!sm.visited().contains(&ChannelState::Open));
}

#[test]
fn credit_indication_is_consumed_silently_on_an_open_channel() {
    let mut sm = StateMachine::for_link(LinkType::Le);
    sm.on_command(CommandCode::LeCreditBasedConnectionRequest, true);
    let r = sm.on_command(CommandCode::FlowControlCreditInd, true);
    assert_eq!(r.actions, vec![Action::Ignore]);
    assert_eq!(sm.state(), ChannelState::Open);
}

#[test]
fn the_two_sided_table_rejects_the_other_links_commands_symmetrically() {
    for state in ChannelState::ALL {
        // Classic-only commands on LE: command not understood, no movement.
        for code in [
            CommandCode::ConnectionRequest,
            CommandCode::ConfigureRequest,
            CommandCode::EchoRequest,
            CommandCode::InformationRequest,
            CommandCode::MoveChannelRequest,
        ] {
            let t = spec_transition(state, code, LinkType::Le);
            assert!(
                matches!(t.action, Action::Reject(_)),
                "{code} must be rejected on LE in {state}"
            );
            assert_eq!(t.next, state, "{code} must not move the channel");
        }
        // LE-only commands on BR/EDR: the mirror image.
        for code in [
            CommandCode::LeCreditBasedConnectionRequest,
            CommandCode::ConnectionParameterUpdateRequest,
        ] {
            let t = spec_transition(state, code, LinkType::BrEdr);
            assert!(
                matches!(t.action, Action::Reject(_)),
                "{code} must be rejected on BR/EDR in {state}"
            );
            assert_eq!(t.next, state);
        }
    }
}

#[test]
fn le_initiator_walk_covers_exactly_the_five_le_states() {
    let mut sm = StateMachine::for_link(LinkType::Le);
    // Refused connect (visits WAIT_CONNECT), then a real connect.
    sm.on_command(CommandCode::LeCreditBasedConnectionRequest, false);
    sm.on_command(CommandCode::LeCreditBasedConnectionRequest, true);
    // Credits, reconfigure, disconnect.
    sm.on_command(CommandCode::FlowControlCreditInd, true);
    sm.on_command(CommandCode::CreditBasedReconfigureRequest, true);
    sm.on_command(CommandCode::DisconnectionRequest, true);

    let visited: BTreeSet<ChannelState> = sm.visited().iter().copied().collect();
    let reachable: BTreeSet<ChannelState> = ChannelState::REACHABLE_FROM_INITIATOR_LE
        .iter()
        .copied()
        .collect();
    assert_eq!(visited, reachable);
    assert_eq!(visited.len(), 5);
    for s in visited {
        assert!(s.reachable_from_initiator_on(LinkType::Le));
    }
}

// ---------------------------------------------------------------------------
// End-to-end: the extended profiles through the campaign API.

#[test]
fn le_wearable_campaign_detects_the_seeded_credit_vulnerability() {
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D9))
        .seed(51)
        .run()
        .expect("LE campaign runs")
        .into_single();
    assert!(
        outcome.report.vulnerable(),
        "the seeded credit-underflow DoS must be found"
    );
    assert_eq!(outcome.device.lock().status(), HostStatus::DosTerminated);
    let fired = outcome.device.lock().fired_vulnerabilities().to_vec();
    assert_eq!(fired[0].vuln.id, "SIM-ZEPHYR-LE-CREDIT-UNDERFLOW");
    let finding = &outcome.report.findings[0];
    assert_eq!(finding.evidence.description, "DoS");
    assert!(
        matches!(
            finding.command,
            CommandCode::LeCreditBasedConnectionRequest | CommandCode::FlowControlCreditInd
        ),
        "the finding must come from a credit-based command, got {}",
        finding.command
    );
    // Every state the LE session parked the target in is LE-reachable.
    for state in &outcome.report.states_tested {
        assert!(state.reachable_from_initiator_on(LinkType::Le));
    }
}

#[test]
fn dual_mode_phone_detects_the_spsm_confusion_crash() {
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D10))
        .seed(52)
        .run()
        .expect("dual-mode campaign runs")
        .into_single();
    assert!(outcome.report.vulnerable());
    assert_eq!(outcome.device.lock().status(), HostStatus::Crashed);
    let fired = outcome.device.lock().fired_vulnerabilities().to_vec();
    assert_eq!(fired[0].vuln.id, "SIM-BLUEDROID-SPSM-OOB");
    assert_eq!(
        fired[0].vuln.trigger.commands,
        vec![CommandCode::CreditBasedConnectionRequest]
    );
    assert_eq!(outcome.report.findings[0].evidence.description, "Crash");
}

#[test]
fn ertm_option_mutation_finds_the_bluez_ertm_dos_on_bredr() {
    // With ERTM/streaming option mutation enabled, the seeded zero-window
    // defect of the BR/EDR speaker is found...
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D11))
        .fuzzer(|| {
            Box::new(L2FuzzTool::detection(
                FuzzConfig::default().with_config_option_mutation(),
                3,
            ))
        })
        .seed(53)
        .run()
        .expect("ERTM campaign runs")
        .into_single();
    assert!(
        outcome.report.vulnerable(),
        "the seeded ERTM zero-window DoS must be found"
    );
    let fired = outcome.device.lock().fired_vulnerabilities().to_vec();
    assert_eq!(fired[0].vuln.id, "SIM-BLUEZ-ERTM-ZERO-WINDOW");

    // ...while the paper's default technique (application fields at their
    // defaults) cannot reach it: the defect needs a non-default option.
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D11))
        .fuzzer(|| Box::new(L2FuzzTool::detection(FuzzConfig::default(), 3)))
        .seed(53)
        .run()
        .expect("default campaign runs")
        .into_single();
    assert!(
        !outcome.report.vulnerable(),
        "without option mutation the ERTM defect must stay hidden"
    );
}

#[test]
fn le_campaign_coverage_is_exactly_the_five_le_states() {
    // A budget-driven run with auto-restart exercises every LE state even
    // though the seeded vulnerability keeps firing.
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D9))
        .fuzzer(|| Box::new(L2FuzzTool::new(FuzzConfig::budget_driven())))
        .budget(TxBudget::packets(1500))
        .auto_restart(true)
        .seed(54)
        .run()
        .expect("budget-driven LE campaign runs")
        .into_single();
    let states: BTreeSet<ChannelState> = outcome.report.states_tested.iter().copied().collect();
    assert_eq!(
        states,
        ChannelState::REACHABLE_FROM_INITIATOR_LE
            .iter()
            .copied()
            .collect::<BTreeSet<_>>()
    );
    let coverage = StateCoverage::from_trace_on(&outcome.trace, LinkType::Le);
    assert_eq!(
        coverage.count(),
        5,
        "LE coverage must be the five LE-reachable states, got {:?}",
        coverage.states()
    );
    for state in coverage.states() {
        assert!(state.reachable_from_initiator_on(LinkType::Le));
    }
}

#[test]
fn le_campaigns_replay_bit_for_bit_from_their_seed() {
    let run = || {
        Campaign::builder()
            .target(DeviceProfile::table5(ProfileId::D9))
            .seed(0x1E5EED)
            .run()
            .expect("campaign runs")
            .into_single()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.report, b.report);
    assert_eq!(a.report.to_json().unwrap(), b.report.to_json().unwrap());
    assert_eq!(a.trace.records(), b.trace.records());
}

// ---------------------------------------------------------------------------
// Regression: the new paths must not perturb the paper's BR/EDR numbers.

/// FNV-1a digest over every record of a trace: direction, virtual timestamp
/// and the exact frame bytes.  Pinning this digest pins the packet stream —
/// the medium redesign (PR 5) must keep single-initiator campaigns
/// byte-identical to the synchronous `AirMedium` they replaced.
fn trace_digest(trace: &sniffer::Trace) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for record in trace.records() {
        eat(match record.direction {
            hci::link::Direction::Tx => 0,
            hci::link::Direction::Rx => 1,
        });
        for b in record.timestamp_micros.to_le_bytes() {
            eat(b);
        }
        for b in record.frame.to_bytes() {
            eat(b);
        }
    }
    hash
}

#[test]
fn single_initiator_packet_streams_match_the_pr4_medium_bit_for_bit() {
    // Captured from the synchronous-`AirMedium` tree (PR 4).  A BR/EDR
    // hardened target (runs to completion) and the LE wearable (ends in a
    // finding) cover both transports' full packet streams — timestamps,
    // directions and frame bytes.
    let bredr = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D4))
        .seed(55)
        .run()
        .expect("BR/EDR campaign runs")
        .into_single();
    assert_eq!(
        trace_digest(&bredr.trace),
        0xD112_A572_9C41_AFAB,
        "BR/EDR packet stream diverged from the PR 4 medium"
    );
    let le = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D9))
        .seed(51)
        .run()
        .expect("LE campaign runs")
        .into_single();
    assert_eq!(
        trace_digest(&le.trace),
        0x8F04_2506_2CC9_4CCC,
        "LE packet stream diverged from the PR 4 medium"
    );
}

#[test]
fn a_trivial_fault_plan_is_byte_identical_to_no_fault_layer_at_all() {
    // The PR 8 fault-injection layer sits in every link's deliver path.
    // `FaultPlan::none()` must be a true no-op: with the layer compiled in
    // and explicitly configured, both transports' packet streams still pin
    // the PR 4 digests bit for bit — timestamps, directions, frame bytes.
    let bredr = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D4))
        .faults(l2fuzz::FaultPlan::none())
        .seed(55)
        .run()
        .expect("BR/EDR campaign runs")
        .into_single();
    assert_eq!(
        trace_digest(&bredr.trace),
        0xD112_A572_9C41_AFAB,
        "FaultPlan::none() perturbed the BR/EDR packet stream"
    );
    let le = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D9))
        .faults(l2fuzz::FaultPlan::none())
        .seed(51)
        .run()
        .expect("LE campaign runs")
        .into_single();
    assert_eq!(
        trace_digest(&le.trace),
        0x8F04_2506_2CC9_4CCC,
        "FaultPlan::none() perturbed the LE packet stream"
    );
}

#[test]
fn bredr_initiator_coverage_stays_exactly_13_of_19() {
    // A hardened classic target lets the campaign run to completion; both
    // the session's own state list and the trace-inferred coverage must pin
    // the paper's 13 of 19 (Fig. 10/11).
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D4))
        .seed(55)
        .run()
        .expect("campaign runs")
        .into_single();
    assert_eq!(outcome.report.states_tested.len(), 13);
    let coverage = StateCoverage::from_trace(&outcome.trace);
    assert_eq!(
        coverage.count(),
        13,
        "BR/EDR coverage must stay at the paper's 13/19, got {:?}",
        coverage.states()
    );
    let covered: BTreeSet<ChannelState> = coverage.states().into_iter().collect();
    let reachable: BTreeSet<ChannelState> = ChannelState::REACHABLE_FROM_INITIATOR
        .iter()
        .copied()
        .collect();
    assert_eq!(covered, reachable);
}
