//! Coverage-guided fuzzing: the feedback engine against the BlueZ laptop
//! (extended profile D11, the seeded ERTM zero-window DoS).
//!
//! The dictionary engine needs configuration-option mutation switched on
//! explicitly to reach this vulnerability; the feedback engine finds it out
//! of the box — option mutation is always on for classic links, the energy
//! scheduler pushes most of each round's budget into the deep
//! CONFIG/OPEN states behind the witness preludes, and every packet that
//! reaches new `(state coverage, response class)` territory is retained and
//! replayed as a mutation seed (resend-with-field-mutation, havoc, splice).
//!
//! A second campaign then re-runs with the first campaign's corpus as its
//! seed corpus, showing how novelty carries across campaigns via the
//! publish-only [`feedback::CorpusHub`].
//!
//! Run with: `cargo run --example feedback_campaign`

use btstack::profiles::{DeviceProfile, ProfileId};
use feedback::{CorpusHub, FeedbackCampaignExt, FeedbackConfig};
use l2fuzz::campaign::Campaign;

fn main() {
    let hub = CorpusHub::new();
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D11))
        .feedback(FeedbackConfig::default().with_hub(hub.clone()))
        .seed(51)
        .run()
        .expect("feedback campaign runs")
        .into_single();

    let report = &outcome.report;
    println!("fuzzer        : {}", report.fuzzer);
    println!("target        : {}", report.target);
    println!("states tested : {:?}", report.states_tested);
    println!(
        "packets sent  : {} ({} malformed)",
        report.packets_sent, report.malformed_sent
    );
    println!("vulnerable    : {}", report.vulnerable());
    if let Some(finding) = report.findings.first() {
        println!(
            "finding       : {} in {} ({})",
            finding.evidence.description, finding.state, finding.command
        );
    }

    let corpus = hub.merged();
    println!("\ncorpus        : {} entries retained", corpus.len());
    for entry in corpus.entries().iter().take(5) {
        println!(
            "  {:>14} sig={:#07b} class={:?} wire={} bytes",
            entry.state.to_string(),
            entry.key.signature,
            entry.key.class,
            entry.wire.len()
        );
    }

    // Second generation: reseed a fresh campaign from the merged corpus.
    let reseeded = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D11))
        .feedback(FeedbackConfig::default().with_seed_corpus(corpus))
        .seed(52)
        .run()
        .expect("reseeded campaign runs")
        .into_single();
    println!(
        "\nreseeded run  : vulnerable={} after {} packets",
        reseeded.report.vulnerable(),
        reseeded.report.packets_sent
    );
}
