//! Fuzz an LE-only target: the simulated Zephyr wearable (extended profile
//! D9) over its LE-U link.
//!
//! The campaign is identical in shape to the classic quickstart — the
//! builder reads the profile's link type and the whole pipeline switches
//! sides: the scanner probes LE SPSMs with LE Credit Based Connection
//! Requests, the state guide drives the five LE-reachable states through
//! the credit-based flows, the mutator draws SPSM/MTU/MPS/credits from the
//! LE abnormal ranges, and the detector probes liveness with a Connection
//! Parameter Update Request (there is no Echo on LE).
//!
//! Run with: `cargo run --example fuzz_le_wearable`

use btcore::LinkType;
use btstack::profiles::{DeviceProfile, ProfileId};
use l2fuzz::campaign::Campaign;
use sniffer::TraceAnalysis;

fn main() {
    let profile = DeviceProfile::table5(ProfileId::D9);
    assert_eq!(profile.link_type, LinkType::Le);

    let outcome = Campaign::builder()
        .target(profile)
        .seed(51)
        .run()
        .expect("campaign runs")
        .into_single();

    let report = &outcome.report;
    println!(
        "target        : {} ({})",
        report.target, report.target.link_type
    );
    println!("chosen SPSM   : {:?}", report.scan.chosen_port);
    println!("states tested : {:?}", report.states_tested);
    println!(
        "packets sent  : {} ({} malformed)",
        report.packets_sent, report.malformed_sent
    );
    println!("vulnerable    : {}", report.vulnerable());
    if let Some(finding) = report.findings.first() {
        println!(
            "finding       : {} in {} ({})",
            finding.evidence.description, finding.state, finding.command
        );
    }
    for dump in outcome.device.lock().crash_dumps() {
        println!("--- crash dump ---\n{}", dump.render());
    }

    let analysis = TraceAnalysis::from_trace_on(&outcome.trace, LinkType::Le);
    println!("{}", analysis.metrics.table_row("L2Fuzz-LE"));
    println!(
        "state coverage: {}/5 LE-reachable states",
        analysis.coverage.count()
    );
}
