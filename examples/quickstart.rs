//! Quickstart: fuzz the simulated Pixel 3 (device D2 of the paper's Table V)
//! with L2Fuzz and print the resulting report.
//!
//! `Campaign::builder()` is the single entry point: it wires the virtual air
//! medium, the simulated device, the ACL link, the packet tap and the
//! out-of-band oracle, then runs the tool (one L2Fuzz detection session by
//! default) and hands back the report, the sniffed trace and the device.
//!
//! Run with: `cargo run --example quickstart`

use btstack::profiles::{DeviceProfile, ProfileId};
use l2fuzz::campaign::Campaign;
use sniffer::{MetricsSummary, StateCoverage};

fn main() {
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D2))
        .seed(1)
        .run()
        .expect("campaign runs")
        .into_single();

    let report = &outcome.report;
    println!("target        : {}", report.target);
    println!("chosen port   : {:?}", report.scan.chosen_port);
    println!("states tested : {}", report.states_tested.len());
    println!(
        "packets sent  : {} ({} malformed)",
        report.packets_sent, report.malformed_sent
    );
    println!("vulnerable    : {}", report.vulnerable());
    if let Some(finding) = report.findings.first() {
        println!(
            "finding       : {} in {} ({})",
            finding.evidence.description, finding.state, finding.command
        );
        println!("elapsed       : {}", finding.elapsed_display());
    }
    for dump in outcome.device.lock().crash_dumps() {
        println!("--- crash dump ---\n{}", dump.render());
    }

    let metrics = MetricsSummary::from_trace(&outcome.trace);
    println!("{}", metrics.table_row("L2Fuzz"));
    println!(
        "state coverage: {}/19",
        StateCoverage::from_trace(&outcome.trace).count()
    );
}
