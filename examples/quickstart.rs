//! Quickstart: fuzz the simulated Pixel 3 (device D2 of the paper's Table V)
//! with L2Fuzz and print the resulting report.
//!
//! Run with: `cargo run --example quickstart`

use btcore::{FuzzRng, SimClock};
use btstack::device::{share, DeviceOracle};
use btstack::profiles::{DeviceProfile, ProfileId};
use hci::air::AirMedium;
use hci::device::VirtualDevice;
use hci::link::{new_tap, LinkConfig};
use l2fuzz::config::FuzzConfig;
use l2fuzz::session::L2FuzzSession;
use sniffer::{MetricsSummary, StateCoverage, Trace};

fn main() {
    // 1. Build the virtual air and register the target device.
    let clock = SimClock::new();
    let mut air = AirMedium::new(clock.clone());
    let profile = DeviceProfile::table5(ProfileId::D2);
    let (device, adapter) = share(profile.build(clock.clone(), FuzzRng::seed_from(1)));
    air.register(adapter);

    // 2. Discover and connect (no pairing involved).
    let meta = air.inquiry().pop().expect("inquiry finds the target");
    let mut link = air
        .connect(profile.addr, LinkConfig::default(), FuzzRng::seed_from(2))
        .expect("connect to target");
    let tap = new_tap();
    link.attach_tap(tap.clone());

    // 3. Run the L2Fuzz campaign with an out-of-band oracle.
    let mut oracle = DeviceOracle::new(device.clone());
    let mut session = L2FuzzSession::new(FuzzConfig::default(), clock);
    let report = session.run(&mut link, meta, Some(&mut oracle));

    // 4. Inspect the results.
    println!("target        : {}", report.target);
    println!("chosen port   : {:?}", report.scan.chosen_port);
    println!("states tested : {}", report.states_tested.len());
    println!(
        "packets sent  : {} ({} malformed)",
        report.packets_sent, report.malformed_sent
    );
    println!("vulnerable    : {}", report.vulnerable());
    if let Some(finding) = report.findings.first() {
        println!(
            "finding       : {} in {} ({})",
            finding.evidence.description, finding.state, finding.command
        );
        println!("elapsed       : {}", finding.elapsed_display());
    }
    for dump in device.lock().crash_dumps() {
        println!("--- crash dump ---\n{}", dump.render());
    }

    let trace = Trace::from_tap(&tap);
    let metrics = MetricsSummary::from_trace(&trace);
    println!("{}", metrics.table_row("L2Fuzz"));
    println!(
        "state coverage: {}/19",
        StateCoverage::from_trace(&trace).count()
    );
    let _ = device.lock().meta();
}
