//! Replays the BlueBorne (CVE-2017-1000251) attack flow of the paper's Fig. 4
//! against the simulated BlueZ laptop (D8): connect to SDP without pairing,
//! reach the configuration state, then send a normal Configuration Request
//! followed by a malformed Configuration Response.
//!
//! Run with: `cargo run --example blueborne_flow`

use btcore::{FuzzRng, Identifier, Psm, SimClock};
use btstack::device::share;
use btstack::profiles::{DeviceProfile, ProfileId};
use hci::air::AirMedium;
use hci::link::{new_tap, LinkConfig};
use l2cap::packet::{parse_signaling, SignalingPacket};
use l2fuzz::guide::StateGuide;
use sniffer::Trace;

fn main() {
    let clock = SimClock::new();
    let mut air = AirMedium::new(clock.clone());
    let profile = DeviceProfile::table5(ProfileId::D8);
    let (_device, adapter) = share(profile.build(clock.clone(), FuzzRng::seed_from(5)));
    air.register(adapter);
    let mut link = air
        .connect(profile.addr, LinkConfig::default(), FuzzRng::seed_from(6))
        .unwrap();
    let tap = new_tap();
    link.attach_tap(tap.clone());

    // ConnectionRequest (PSM: SDP) -> state transition without pairing.
    let mut guide = StateGuide::new();
    let ctx = guide
        .open_channel(&mut link, Psm::SDP, false)
        .expect("SDP connect");
    println!(
        "CLOSED -> configuration job without pairing (DCID {})",
        ctx.dcid
    );

    // Normal Configuration Request.
    guide.send_configure_request(&mut link, ctx);

    // Malformed Configuration Response - pending, with an overflowing tail.
    let mut data = ctx.dcid.value().to_le_bytes().to_vec();
    data.extend_from_slice(&[0x00, 0x00]); // flags
    data.extend_from_slice(&[0x04, 0x00]); // result: pending
    let declared = data.len() as u16;
    data.extend_from_slice(&[0x41; 24]); // overflow bytes
    let malformed = SignalingPacket {
        identifier: Identifier(9),
        code: 0x05,
        declared_data_len: declared,
        data,
    };
    let responses = link.send_frame(&malformed.into_frame());
    println!(
        "malformed Configuration Response sent; {} response frame(s)",
        responses.len()
    );
    for frame in &responses {
        if let Ok(sig) = parse_signaling(frame) {
            println!("  target answered with {:?}", sig.command().code());
        }
    }

    let trace = Trace::from_tap(&tap);
    println!(
        "exchange captured: {} packets ({} tx / {} rx)",
        trace.len(),
        trace.transmitted_count(),
        trace.received_count()
    );
}
