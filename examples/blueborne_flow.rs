//! Replays the BlueBorne (CVE-2017-1000251) attack flow of the paper's Fig. 4
//! against the simulated BlueZ laptop (D8): connect to SDP without pairing,
//! reach the configuration state, then send a normal Configuration Request
//! followed by a malformed Configuration Response.
//!
//! Hand-driven flows obtain their wired target environment (device, link,
//! tap, clock) from `Campaign::builder().env()` instead of assembling an
//! `AirMedium` manually.
//!
//! Run with: `cargo run --example blueborne_flow`

use btcore::{Identifier, Psm};
use btstack::profiles::{DeviceProfile, ProfileId};
use l2cap::packet::{parse_signaling, SignalingPacket};
use l2fuzz::campaign::Campaign;
use l2fuzz::guide::StateGuide;

fn main() {
    let mut env = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D8))
        .seed(5)
        .env()
        .expect("target environment builds");

    // ConnectionRequest (PSM: SDP) -> state transition without pairing.
    let mut guide = StateGuide::new();
    let ctx = guide
        .open_channel(&mut env.link, Psm::SDP, false)
        .expect("SDP connect");
    println!(
        "CLOSED -> configuration job without pairing (DCID {})",
        ctx.dcid
    );

    // Normal Configuration Request.
    guide.send_configure_request(&mut env.link, ctx);

    // Malformed Configuration Response - pending, with an overflowing tail.
    let mut data = ctx.dcid.value().to_le_bytes().to_vec();
    data.extend_from_slice(&[0x00, 0x00]); // flags
    data.extend_from_slice(&[0x04, 0x00]); // result: pending
    let declared = data.len() as u16;
    data.extend_from_slice(&[0x41; 24]); // overflow bytes
    let malformed = SignalingPacket {
        identifier: Identifier(9),
        code: 0x05,
        declared_data_len: declared,
        data: data.into(),
    };
    let responses = env.link.send_frame(&malformed.into_frame());
    println!(
        "malformed Configuration Response sent; {} response frame(s)",
        responses.len()
    );
    for frame in &responses {
        if let Ok(sig) = parse_signaling(frame) {
            println!("  target answered with {:?}", sig.command().code());
        }
    }

    let trace = env.trace();
    println!(
        "exchange captured: {} packets ({} tx / {} rx)",
        trace.len(),
        trace.transmitted_count(),
        trace.received_count()
    );
}
