//! Concurrent initiators, dual-transport campaigns and seed sweeps.
//!
//! The event-driven medium lets one campaign drive several links against a
//! single target at once — every exchange passes a deterministic turnstile,
//! so the whole run still replays bit-for-bit from its seed.  This example
//! walks the three concurrency knobs of `Campaign::builder()`:
//!
//! ```text
//! cargo run --example concurrent_initiators
//! ```

use btstack::profiles::{DeviceProfile, ProfileId};
use l2fuzz::campaign::{Campaign, SeedSweepExecutor};
use l2fuzz::config::FuzzConfig;
use l2fuzz::session::L2FuzzTool;

fn main() {
    // 1. Two initiators on one hardened target.  Each gets its own link,
    //    seed stream, packet tap and fresh fuzzer instance; the device
    //    serves each link from an isolated acceptor (per-link CID spaces).
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D4))
        .initiators_per_target(2)
        .seed(21)
        .run()
        .expect("multi-initiator campaign runs")
        .into_single();
    println!("== two initiators vs {} ==", outcome.profile.name);
    for (i, report) in outcome.reports().enumerate() {
        println!(
            "  initiator #{i}: {} packets, {} states, vulnerable: {}",
            report.packets_sent,
            report.states_tested.len(),
            report.vulnerable()
        );
    }
    println!(
        "  merged trace: {} frames across both links\n",
        outcome.merged_trace().len()
    );

    // 2. Dual transport: one BR/EDR and one LE initiator fuzz the dual-mode
    //    phone concurrently in a single campaign.
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D10))
        .dual_transport()
        .seed(0xD10)
        .run()
        .expect("dual-transport campaign runs")
        .into_single();
    println!("== dual transport vs {} ==", outcome.profile.name);
    println!(
        "  BR/EDR initiator: {} packets; LE initiator: {} packets",
        outcome.report.packets_sent, outcome.secondary[0].report.packets_sent
    );
    println!(
        "  vulnerability detected: {} (device status: {:?})\n",
        outcome.any_vulnerable(),
        outcome.device.lock().status()
    );

    // 3. Seed sweep: eight short campaigns per target, one per seed — the
    //    way probability-gated triggers (the LE credit flows) get a fair
    //    chance.  Units shard across threads, deterministically.
    let tight = || {
        let config = FuzzConfig {
            max_packets: 100,
            ..FuzzConfig::default()
        };
        Box::new(L2FuzzTool::detection(config, 1)) as Box<dyn l2fuzz::fuzzer::Fuzzer>
    };
    let sweep = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D9))
        .fuzzer(tight)
        .executor(SeedSweepExecutor::derived(0x5EED, 8).with_threads(4))
        .run()
        .expect("seed sweep runs");
    println!("== 8-seed sweep vs Galaxy Fit e ==");
    for target in &sweep.targets {
        println!(
            "  seed {:#018x}: vulnerable: {}",
            target.campaign_seed,
            target.any_vulnerable()
        );
    }
    let hits = sweep.targets.iter().filter(|t| t.any_vulnerable()).count();
    println!("  {hits}/8 seeds caught the credit-underflow at this budget");
}
