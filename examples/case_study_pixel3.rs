//! Reproduces the paper's §IV-E case study: the Pixel 3 denial of service.
//!
//! The script connects to the simulated Pixel 3's SDP port without pairing,
//! walks the channel into the configuration job and replays malformed
//! Configuration Requests with an unallocated DCID and a garbage tail until
//! the seeded null-pointer-dereference fires, then prints the tombstone.
//!
//! Run with: `cargo run --example case_study_pixel3`

use btcore::{FuzzRng, Identifier, Psm, SimClock};
use btstack::device::share;
use btstack::profiles::{DeviceProfile, ProfileId};
use hci::air::AirMedium;
use hci::device::VirtualDevice;
use hci::link::LinkConfig;
use l2cap::packet::SignalingPacket;
use l2fuzz::guide::StateGuide;

fn main() {
    let clock = SimClock::new();
    let mut air = AirMedium::new(clock.clone());
    let profile = DeviceProfile::table5(ProfileId::D2);
    let (device, adapter) = share(profile.build(clock.clone(), FuzzRng::seed_from(3)));
    air.register(adapter);
    let mut link = air
        .connect(profile.addr, LinkConfig::default(), FuzzRng::seed_from(4))
        .unwrap();

    // Step 1: connection to the SDP port (no pairing), entering the
    // configuration job.
    let mut guide = StateGuide::new();
    let ctx = guide
        .open_channel(&mut link, Psm::SDP, false)
        .expect("SDP connect");
    println!(
        "connected: our SCID {} / target DCID {}",
        ctx.scid, ctx.dcid
    );

    // Step 2: malformed Configuration Requests — DCID value from the normal
    // range but ignoring the allocation, plus a garbage tail (Fig. 7).
    let mut attempts = 0u32;
    while device.lock().bluetooth_alive() {
        attempts += 1;
        let packet = SignalingPacket {
            identifier: Identifier((attempts % 250 + 1) as u8),
            code: 0x04,
            declared_data_len: 8,
            data: vec![
                0x8F, 0x7B, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xD2, 0x3A, 0x91, 0x0E,
            ],
        };
        link.send_frame(&packet.into_frame());
        if attempts > 10_000 {
            break;
        }
    }

    println!("bluetooth terminated after {attempts} malformed packets");
    for dump in device.lock().crash_dumps() {
        println!("--- tombstone ---\n{}", dump.render());
    }
}
