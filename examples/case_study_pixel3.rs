//! Reproduces the paper's §IV-E case study: the Pixel 3 denial of service.
//!
//! The script obtains a wired target environment from
//! `Campaign::builder().env()`, connects to the simulated Pixel 3's SDP port
//! without pairing, walks the channel into the configuration job and replays
//! malformed Configuration Requests with an unallocated DCID and a garbage
//! tail until the seeded null-pointer-dereference fires, then prints the
//! tombstone.
//!
//! Run with: `cargo run --example case_study_pixel3`

use btcore::{Identifier, Psm};
use btstack::profiles::{DeviceProfile, ProfileId};
use l2cap::packet::SignalingPacket;
use l2fuzz::campaign::Campaign;
use l2fuzz::guide::StateGuide;

fn main() {
    let mut env = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D2))
        .seed(3)
        .env()
        .expect("target environment builds");

    // Step 1: connection to the SDP port (no pairing), entering the
    // configuration job.
    let mut guide = StateGuide::new();
    let ctx = guide
        .open_channel(&mut env.link, Psm::SDP, false)
        .expect("SDP connect");
    println!(
        "connected: our SCID {} / target DCID {}",
        ctx.scid, ctx.dcid
    );

    // Step 2: malformed Configuration Requests — DCID value from the normal
    // range but ignoring the allocation, plus a garbage tail (Fig. 7).
    let mut attempts = 0u32;
    while env.link.device_alive() {
        attempts += 1;
        let packet = SignalingPacket {
            identifier: Identifier((attempts % 250 + 1) as u8),
            code: 0x04,
            declared_data_len: 8,
            data: vec![
                0x8F, 0x7B, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xD2, 0x3A, 0x91, 0x0E,
            ]
            .into(),
        };
        env.link.send_frame(&packet.into_frame());
        if attempts > 10_000 {
            break;
        }
    }

    println!("bluetooth terminated after {attempts} malformed packets");
    for dump in env.device.lock().crash_dumps() {
        println!("--- tombstone ---\n{}", dump.render());
    }
}
