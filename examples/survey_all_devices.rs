//! Table VI-style survey: run the L2Fuzz detection campaign against all eight
//! simulated devices and print whether (and how fast) each one falls over.
//!
//! The eight targets run as one campaign sharded across four worker threads
//! (`bench::table6_survey`, built on `Campaign::builder()` with a
//! `ShardedExecutor`); each device lives in its own isolated environment,
//! so the results are bit-for-bit identical to a serial run of the same
//! seed — only the wall-clock time changes.
//!
//! Run with: `cargo run --example survey_all_devices` (set
//! `L2FUZZ_MAX_CAMPAIGNS` to bound the per-device effort).

use bench::table6_survey;

fn main() {
    let max_campaigns: usize = std::env::var("L2FUZZ_MAX_CAMPAIGNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    let outcome = table6_survey(77, max_campaigns, 4);

    println!(
        "{:<5}{:<16}{:<7}{:<10}{:<12}{:<10}",
        "Dev", "Name", "Vuln?", "Kind", "Elapsed", "Packets"
    );
    for target in &outcome.targets {
        let report = &target.report;
        let (vuln, kind, elapsed) = match report.findings.first() {
            Some(f) => ("Yes", f.evidence.description.clone(), f.elapsed_display()),
            None => ("No", "-".to_owned(), "-".to_owned()),
        };
        println!(
            "{:<5}{:<16}{:<7}{:<10}{:<12}{:<10}",
            target.profile.id.to_string(),
            report.target.name,
            vuln,
            kind,
            elapsed,
            report.packets_sent
        );
    }
    println!(
        "\ncampaign elapsed (virtual, devices in parallel): {} s",
        outcome.elapsed.as_secs()
    );
}
