//! Table VI-style survey: run the L2Fuzz detection campaign against all eight
//! simulated devices and print whether (and how fast) each one falls over.
//!
//! Run with: `cargo run --example survey_all_devices` (set
//! `L2FUZZ_MAX_CAMPAIGNS` to bound the per-device effort).

use bench::run_table6_campaign;
use btstack::profiles::ProfileId;

fn main() {
    let max_campaigns: usize = std::env::var("L2FUZZ_MAX_CAMPAIGNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(25);
    println!(
        "{:<5}{:<16}{:<7}{:<10}{:<12}{:<10}",
        "Dev", "Name", "Vuln?", "Kind", "Elapsed", "Packets"
    );
    for (i, id) in ProfileId::ALL.iter().enumerate() {
        let report = run_table6_campaign(*id, 77 + i as u64, max_campaigns);
        let (vuln, kind, elapsed) = match report.findings.first() {
            Some(f) => ("Yes", f.evidence.description.clone(), f.elapsed_display()),
            None => ("No", "-".to_owned(), "-".to_owned()),
        };
        println!(
            "{:<5}{:<16}{:<7}{:<10}{:<12}{:<10}",
            id.to_string(),
            report.target.name,
            vuln,
            kind,
            elapsed,
            report.packets_sent
        );
    }
}
