//! Operating a fleet sweep: checkpointed execution, a simulated kill,
//! verified resume, and the crash-dedup corpus.
//!
//! ```sh
//! cargo run --example operate_sweep
//! ```
//!
//! The same flow is available on the command line through the
//! `l2fuzz-service` binary; see the README's "Operating a sweep" section.

use l2fuzz_repro::btstack::profiles::ProfileId;
use l2fuzz_repro::service::{ResumeVerify, SweepService, SweepSpec};

fn main() {
    // Four seeds against a vulnerable Android phone (D2) and a hardened
    // laptop (D4): 8 jobs in shards of 2, each burning a 2000-packet
    // budget on auto-restarting devices.
    let spec = || {
        SweepSpec::new(
            "example",
            [ProfileId::D2, ProfileId::D4],
            SweepSpec::derived_seeds(0xF1EE7, 4),
        )
        .with_budget(2000)
        .with_shard_size(2)
    };
    let checkpoint = std::env::temp_dir().join("operate_sweep.checkpoint.json");
    let _ = std::fs::remove_file(&checkpoint);

    // First invocation: commit two shards, then stop — standing in for a
    // sweep killed mid-flight.
    let paused = SweepService::new(spec())
        .workers(2)
        .checkpoint(&checkpoint)
        .max_shards(2)
        .run()
        .expect("sweep runs");
    println!(
        "killed after {}/{} shards (checkpoint: {})",
        paused.checkpoint.completed_shards(),
        spec().shard_count(),
        checkpoint.display()
    );

    // Second invocation: resume.  `ResumeVerify::All` re-runs every
    // committed shard and proves each reproduces its recorded digest
    // before any new work starts.
    let outcome = SweepService::new(spec())
        .workers(2)
        .checkpoint(&checkpoint)
        .verify(ResumeVerify::All)
        .on_commit(|record| {
            println!(
                "committed shard {} (digest {:016x})",
                record.shard, record.digest
            );
        })
        .run()
        .expect("resume runs");
    println!(
        "resumed from shard {}, re-verified {:?}",
        outcome.resumed_from, outcome.verified_shards
    );

    // The final report: per-job summaries plus the dedup corpus.  All
    // crashing D2 jobs collapse into one cluster keyed by crash identity
    // and state-coverage signature.
    let report = outcome.report.expect("sweep completed");
    println!("{}", report.summary_line());
    for cluster in report.corpus.clusters() {
        println!(
            "cluster {:016x}/{:08x}: {} member job(s) {:?}, vulns {:?}, exemplar job {} ({} packets)",
            cluster.key.crash_digest,
            cluster.key.coverage_signature,
            cluster.count(),
            cluster.members,
            cluster.vuln_ids,
            cluster.exemplar_job,
            cluster.exemplar_trace.records().len()
        );
    }

    std::fs::remove_file(&checkpoint).ok();
}
