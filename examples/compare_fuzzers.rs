//! Mini version of the paper's §IV-C/D comparison: run L2Fuzz, Defensics,
//! BFuzz and BSS against the simulated Pixel 3 and print Table VII plus the
//! Fig. 10 state-coverage bars.
//!
//! Run with: `cargo run --example compare_fuzzers` (set `L2FUZZ_BUDGET` to
//! change the per-fuzzer packet budget).

fn main() {
    // The heavy lifting lives in the bench crate's harness; this example
    // keeps the budget small so it finishes quickly.
    let budget: usize = std::env::var("L2FUZZ_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3_000);
    println!("Comparing four fuzzers on D2 (Pixel 3), {budget} packets each\n");
    println!(
        "{:<12}{:>9}{:>9}{:>9}{:>11}{:>9}",
        "Fuzzer", "MP", "PR", "ME", "pps", "states"
    );
    for run in bench::run_comparison(budget, 0xC0FE) {
        let m = &run.metrics;
        println!(
            "{:<12}{:>8.2}%{:>8.2}%{:>8.2}%{:>11.1}{:>9}",
            run.name,
            m.mp_ratio * 100.0,
            m.pr_ratio * 100.0,
            m.mutation_efficiency * 100.0,
            m.packets_per_second,
            run.coverage.count()
        );
    }
}
