//! Reproduces the paper's Fig. 7 worked example of core field mutating, then
//! shows what the generic mutator produces for the same command.
//!
//! Run with: `cargo run --example mutate_config_req`

use btcore::codec::hex_dump;
use btcore::{Cid, FuzzRng, Identifier, Psm};
use l2cap::code::CommandCode;
use l2fuzz::guide::ChannelContext;
use l2fuzz::mutator::CoreFieldMutator;

fn main() {
    let (original, mutated) = CoreFieldMutator::fig7_example();
    println!("Fig. 7 original : {}", hex_dump(&original.to_bytes()));
    println!("Fig. 7 mutated  : {}", hex_dump(&mutated.to_bytes()));
    println!("garbage bytes   : {}", mutated.garbage_len());

    let mut mutator = CoreFieldMutator::new(FuzzRng::seed_from(7));
    let ctx = ChannelContext {
        scid: Cid(0x0040),
        dcid: Cid(0x0040),
        psm: Psm::SDP,
    };
    println!("\nGenerated Config Req mutations:");
    for i in 1..=5u8 {
        let pkt = mutator.mutate(CommandCode::ConfigureRequest, &ctx, Identifier(i));
        println!("  {}", hex_dump(&pkt.to_bytes()));
    }
}
