//! Chaos campaign walkthrough: the same detection campaign on an ideal
//! link, on a badly degraded link, and against a hardened target whose
//! lossy link must *not* be mistaken for a dead one.
//!
//! A `FaultPlan` attached via `Campaign::builder().faults(..)` injects
//! frame loss, duplication, bit corruption, latency jitter, reordering and
//! link stalls at the medium's deliver path.  Every fault decision derives
//! from the per-event seeded RNG, so a chaos campaign replays bit for bit —
//! re-run this example and the numbers will not move.  Attaching a
//! non-trivial plan also arms `RetryPolicy::lossy_link()` on the drivers
//! (state-guide preludes and detection pings), which is what keeps the
//! verdicts honest below.
//!
//! Run with: `cargo run --example chaos_campaign`

use btstack::profiles::{DeviceProfile, ProfileId};
use l2fuzz::campaign::Campaign;
use l2fuzz::config::FuzzConfig;
use l2fuzz::session::L2FuzzTool;
use l2fuzz::{FaultPlan, RetryPolicy};

fn detect(id: ProfileId, faults: FaultPlan, seed: u64) -> l2fuzz::campaign::TargetOutcome {
    Campaign::builder()
        .target(DeviceProfile::table5(id))
        .fuzzer(|| Box::new(L2FuzzTool::detection(FuzzConfig::default(), 5)))
        .faults(faults)
        .seed(seed)
        .run()
        .expect("campaign runs")
        .into_single()
}

fn main() {
    // 1. Baseline: the vulnerable BR/EDR phone (D2) on an ideal link.
    let ideal = detect(ProfileId::D2, FaultPlan::none(), 3);
    println!(
        "ideal link    : D2 vulnerable={} after {} packets, {} virtual s",
        ideal.report.vulnerable(),
        ideal.report.packets_sent,
        ideal.report.elapsed_secs,
    );

    // 2. Chaos: 10 % loss + 5 % corruption, plus jitter and occasional
    //    stalls.  The seeded vulnerability is still found — degradation
    //    costs time, not detections.
    let plan = FaultPlan::degraded(0.10, 0.05)
        .with_jitter(400)
        .with_stall(0.01, 5_000);
    let faulty = detect(ProfileId::D2, plan, 3);
    println!(
        "degraded link : D2 vulnerable={} after {} packets, {} virtual s",
        faulty.report.vulnerable(),
        faulty.report.packets_sent,
        faulty.report.elapsed_secs,
    );
    let fired = faulty.device.lock().fired_vulnerabilities().to_vec();
    println!(
        "                ground truth: device fired {:?}",
        fired.iter().map(|f| f.vuln.id.as_str()).collect::<Vec<_>>()
    );

    // 3. The hardened phone (D4) on a *worse* link: 15 % loss.  The retried
    //    detection pings distinguish "lossy" from "dead", so no false DoS
    //    verdict appears.
    let hardened = detect(ProfileId::D4, FaultPlan::degraded(0.15, 0.05), 3);
    println!(
        "hardened + lossy: D4 vulnerable={} (retries keep the verdict honest)",
        hardened.report.vulnerable(),
    );

    // 4. The control experiment: same link, retries disarmed — a single
    //    unanswered ping now reads as a dead target.
    let naive = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D4))
        .fuzzer(|| Box::new(L2FuzzTool::detection(FuzzConfig::default(), 5)))
        .faults(FaultPlan::degraded(0.15, 0.05))
        .retry(RetryPolicy::none())
        .seed(3)
        .run()
        .expect("campaign runs")
        .into_single();
    println!(
        "retries off     : D4 vulnerable={} — the false verdict the retry policy prevents",
        naive.report.vulnerable(),
    );
}
