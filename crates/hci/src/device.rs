//! The interface a simulated target device presents to the medium.

use btcore::{DeviceMeta, LinkSlot, LinkType};
use l2cap::packet::L2capFrame;
use parking_lot::Mutex;
use std::sync::Arc;

/// A virtual Bluetooth device reachable over the
/// [`crate::medium::EventMedium`].
///
/// The `btstack` crate provides vendor-flavoured implementations; this crate
/// only ships the tiny [`EchoDevice`] used in examples and tests.
///
/// A device may serve several links at once — each established link is
/// identified by its [`LinkSlot`], and a multi-link device keeps isolated
/// per-slot acceptor state (CID spaces never leak between slots).  Simple
/// single-link devices can ignore the slot entirely.
pub trait VirtualDevice: Send {
    /// Device metadata reported during inquiry.
    fn meta(&self) -> DeviceMeta;

    /// Whether the device serves the given transport.  The default accepts
    /// exactly the primary transport announced in the metadata; dual-mode
    /// devices override this to accept both.
    fn supports_link(&self, link_type: LinkType) -> bool {
        link_type == self.meta().link_type
    }

    /// Notifies the device that the medium established a new link in `slot`
    /// over `link_type`.  Multi-link devices allocate the slot's acceptor
    /// here; the default does nothing.
    fn attach_link(&mut self, _slot: LinkSlot, _link_type: LinkType) {}

    /// Processes one inbound L2CAP frame arriving on `slot` and returns the
    /// frames the device sends back, in order.
    ///
    /// The frame is a borrowed view: its payload buffer is shared with the
    /// transmitting link (and any attached taps), so a device that wants to
    /// keep the bytes clones the frame — a reference-count bump, not a copy.
    fn receive(&mut self, slot: LinkSlot, frame: &L2capFrame) -> Vec<L2capFrame>;

    /// Whether the device's Bluetooth service is still running (a device
    /// whose stack crashed or shut down stops answering inquiries and
    /// frames).
    fn bluetooth_alive(&self) -> bool;

    /// Virtual time the device spends processing one frame, in microseconds.
    /// The default models a fast, simple stack; stacks with more service
    /// ports and deeper application logic report larger values, which is what
    /// spreads the elapsed-time column of Table VI.
    fn processing_cost_micros(&self) -> u64 {
        150
    }
}

/// Adapter so `Box<dyn VirtualDevice>` itself implements [`VirtualDevice`]
/// behind the shared mutex.
pub struct BoxedDevice(Box<dyn VirtualDevice>);

impl BoxedDevice {
    /// Wraps a boxed device.
    pub fn new(device: Box<dyn VirtualDevice>) -> Self {
        BoxedDevice(device)
    }
}

impl VirtualDevice for BoxedDevice {
    fn meta(&self) -> DeviceMeta {
        self.0.meta()
    }
    fn supports_link(&self, link_type: LinkType) -> bool {
        self.0.supports_link(link_type)
    }
    fn attach_link(&mut self, slot: LinkSlot, link_type: LinkType) {
        self.0.attach_link(slot, link_type);
    }
    fn receive(&mut self, slot: LinkSlot, frame: &L2capFrame) -> Vec<L2capFrame> {
        self.0.receive(slot, frame)
    }
    fn bluetooth_alive(&self) -> bool {
        self.0.bluetooth_alive()
    }
    fn processing_cost_micros(&self) -> u64 {
        self.0.processing_cost_micros()
    }
}

/// Shared, lockable handle to a virtual device.
pub type SharedDevice = Arc<Mutex<dyn VirtualDevice>>;

/// A minimal device that answers every frame by echoing it back on the same
/// channel.  Useful for transport-level tests and doc examples.
#[derive(Debug, Clone)]
pub struct EchoDevice {
    meta: DeviceMeta,
    alive: bool,
}

impl EchoDevice {
    /// Creates an echo device with the given address.
    pub fn new(addr: btcore::BdAddr) -> Self {
        EchoDevice {
            meta: DeviceMeta::new(addr, "echo-device", btcore::DeviceClass::Other),
            alive: true,
        }
    }

    /// Marks the device as shut down; it stops responding afterwards.
    pub fn shut_down(&mut self) {
        self.alive = false;
    }
}

impl VirtualDevice for EchoDevice {
    fn meta(&self) -> DeviceMeta {
        self.meta.clone()
    }

    fn receive(&mut self, _slot: LinkSlot, frame: &L2capFrame) -> Vec<L2capFrame> {
        if !self.alive {
            return Vec::new();
        }
        vec![frame.clone()]
    }

    fn bluetooth_alive(&self) -> bool {
        self.alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::{BdAddr, Cid};

    #[test]
    fn echo_device_echoes_until_shut_down() {
        let mut dev = EchoDevice::new(BdAddr::new([1, 2, 3, 4, 5, 6]));
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        assert_eq!(dev.receive(LinkSlot::PRIMARY, &frame), vec![frame.clone()]);
        assert!(dev.bluetooth_alive());
        dev.shut_down();
        assert!(dev.receive(LinkSlot::PRIMARY, &frame).is_empty());
        assert!(!dev.bluetooth_alive());
    }

    #[test]
    fn default_processing_cost_is_positive() {
        let dev = EchoDevice::new(BdAddr::NULL);
        assert!(dev.processing_cost_micros() > 0);
    }

    #[test]
    fn virtual_device_is_object_safe() {
        let dev: SharedDevice =
            Arc::new(Mutex::new(EchoDevice::new(BdAddr::new([9, 8, 7, 6, 5, 4]))));
        assert_eq!(dev.lock().meta().name, "echo-device");
    }
}
