//! The interface a simulated target device presents to the air medium.

use btcore::DeviceMeta;
use l2cap::packet::L2capFrame;
use parking_lot::Mutex;
use std::sync::Arc;

/// A virtual Bluetooth device reachable over the [`crate::air::AirMedium`].
///
/// The `btstack` crate provides vendor-flavoured implementations; this crate
/// only ships the tiny [`EchoDevice`] used in examples and tests.
pub trait VirtualDevice: Send {
    /// Device metadata reported during inquiry.
    fn meta(&self) -> DeviceMeta;

    /// Processes one inbound L2CAP frame from the initiator and returns the
    /// frames the device sends back, in order.
    ///
    /// The frame is a borrowed view: its payload buffer is shared with the
    /// transmitting link (and any attached taps), so a device that wants to
    /// keep the bytes clones the frame — a reference-count bump, not a copy.
    fn receive(&mut self, frame: &L2capFrame) -> Vec<L2capFrame>;

    /// Whether the device's Bluetooth service is still running (a device
    /// whose stack crashed or shut down stops answering inquiries and
    /// frames).
    fn bluetooth_alive(&self) -> bool;

    /// Virtual time the device spends processing one frame, in microseconds.
    /// The default models a fast, simple stack; stacks with more service
    /// ports and deeper application logic report larger values, which is what
    /// spreads the elapsed-time column of Table VI.
    fn processing_cost_micros(&self) -> u64 {
        150
    }
}

/// Shared, lockable handle to a virtual device.
pub type SharedDevice = Arc<Mutex<dyn VirtualDevice>>;

/// A minimal device that answers every frame by echoing it back on the same
/// channel.  Useful for transport-level tests and doc examples.
#[derive(Debug, Clone)]
pub struct EchoDevice {
    meta: DeviceMeta,
    alive: bool,
}

impl EchoDevice {
    /// Creates an echo device with the given address.
    pub fn new(addr: btcore::BdAddr) -> Self {
        EchoDevice {
            meta: DeviceMeta::new(addr, "echo-device", btcore::DeviceClass::Other),
            alive: true,
        }
    }

    /// Marks the device as shut down; it stops responding afterwards.
    pub fn shut_down(&mut self) {
        self.alive = false;
    }
}

impl VirtualDevice for EchoDevice {
    fn meta(&self) -> DeviceMeta {
        self.meta.clone()
    }

    fn receive(&mut self, frame: &L2capFrame) -> Vec<L2capFrame> {
        if !self.alive {
            return Vec::new();
        }
        vec![frame.clone()]
    }

    fn bluetooth_alive(&self) -> bool {
        self.alive
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::{BdAddr, Cid};

    #[test]
    fn echo_device_echoes_until_shut_down() {
        let mut dev = EchoDevice::new(BdAddr::new([1, 2, 3, 4, 5, 6]));
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        assert_eq!(dev.receive(&frame), vec![frame.clone()]);
        assert!(dev.bluetooth_alive());
        dev.shut_down();
        assert!(dev.receive(&frame).is_empty());
        assert!(!dev.bluetooth_alive());
    }

    #[test]
    fn default_processing_cost_is_positive() {
        let dev = EchoDevice::new(BdAddr::NULL);
        assert!(dev.processing_cost_micros() > 0);
    }

    #[test]
    fn virtual_device_is_object_safe() {
        let dev: SharedDevice =
            Arc::new(Mutex::new(EchoDevice::new(BdAddr::new([9, 8, 7, 6, 5, 4]))));
        assert_eq!(dev.lock().meta().name, "echo-device");
    }
}
