//! HCI ACL data packets and L2CAP fragmentation/reassembly.
//!
//! The outermost layer of the paper's Fig. 3 frame is the HCI ACL data
//! packet: a packet-type byte, the 12-bit connection handle plus the
//! packet-boundary / broadcast flags, and a 16-bit data length.  L2CAP frames
//! larger than the controller's ACL buffer are fragmented across several ACL
//! packets and reassembled on the other side using the boundary flag.

use btcore::{ByteReader, ByteWriter, CodecError, ConnectionHandle, FrameBuf};
use serde::{Deserialize, Serialize};

/// HCI packet type byte for ACL data packets.
pub const ACL_DATA_PACKET_TYPE: u8 = 0x02;

/// Size of an ACL fragment used by the virtual controller (bytes of L2CAP
/// data per ACL packet).  Chosen to match a common controller buffer size.
pub const ACL_FRAGMENT_SIZE: usize = 1021;

/// Packet boundary flag of an ACL data packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BoundaryFlag {
    /// First fragment of a (possibly fragmented) L2CAP frame.
    FirstNonFlushable,
    /// Continuation fragment.
    Continuation,
    /// First fragment, flushable.
    FirstFlushable,
}

impl BoundaryFlag {
    /// Encodes the two-bit flag value.
    pub const fn bits(&self) -> u16 {
        match self {
            BoundaryFlag::FirstNonFlushable => 0b00,
            BoundaryFlag::Continuation => 0b01,
            BoundaryFlag::FirstFlushable => 0b10,
        }
    }

    /// Decodes the two-bit flag value.
    pub fn from_bits(bits: u16) -> Option<BoundaryFlag> {
        match bits & 0b11 {
            0b00 => Some(BoundaryFlag::FirstNonFlushable),
            0b01 => Some(BoundaryFlag::Continuation),
            0b10 => Some(BoundaryFlag::FirstFlushable),
            _ => None,
        }
    }

    /// Returns `true` for the two "first fragment" variants.
    pub const fn is_first(&self) -> bool {
        !matches!(self, BoundaryFlag::Continuation)
    }
}

/// One HCI ACL data packet.
///
/// The carried bytes are a [`FrameBuf`] view: a packet produced by
/// [`fragment`] shares the parent frame's buffer instead of owning a copy of
/// its chunk.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AclPacket {
    /// Connection handle identifying the baseband link.
    pub handle: ConnectionHandle,
    /// Packet boundary flag.
    pub boundary: BoundaryFlag,
    /// Broadcast flag (0 = point-to-point).
    pub broadcast: u8,
    /// Carried bytes (a whole L2CAP frame or a fragment of one).
    pub data: FrameBuf,
}

impl AclPacket {
    /// Serializes the packet including the HCI packet-type byte.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(5 + self.data.len());
        w.write_u8(ACL_DATA_PACKET_TYPE);
        let handle_and_flags = (self.handle.value() & 0x0FFF)
            | (self.boundary.bits() << 12)
            | ((u16::from(self.broadcast) & 0b11) << 14);
        w.write_u16(handle_and_flags);
        w.write_u16(self.data.len() as u16);
        w.write_bytes(&self.data);
        w.into_bytes()
    }

    /// Parses an ACL packet from raw bytes.
    ///
    /// # Errors
    /// Returns a [`CodecError`] if the header is truncated, the packet type is
    /// not ACL data, or the declared length exceeds the available bytes.
    pub fn parse(bytes: &[u8]) -> Result<AclPacket, CodecError> {
        let mut r = ByteReader::new(bytes);
        let packet_type = r.read_u8()?;
        if packet_type != ACL_DATA_PACKET_TYPE {
            return Err(CodecError::InvalidValue {
                field: "hci_packet_type".to_owned(),
                value: u64::from(packet_type),
            });
        }
        let handle_and_flags = r.read_u16()?;
        let handle = ConnectionHandle(handle_and_flags & 0x0FFF);
        let boundary = BoundaryFlag::from_bits((handle_and_flags >> 12) & 0b11).ok_or(
            CodecError::InvalidValue {
                field: "packet_boundary_flag".to_owned(),
                value: u64::from((handle_and_flags >> 12) & 0b11),
            },
        )?;
        let broadcast = ((handle_and_flags >> 14) & 0b11) as u8;
        let len = r.read_u16()? as usize;
        if r.remaining() < len {
            return Err(CodecError::LengthMismatch {
                declared: len,
                actual: r.remaining(),
            });
        }
        let data = FrameBuf::copy_from_slice(r.read_bytes(len)?);
        Ok(AclPacket {
            handle,
            boundary,
            broadcast,
            data,
        })
    }
}

/// Splits an L2CAP frame's bytes into ACL fragments of at most
/// [`ACL_FRAGMENT_SIZE`] bytes each.
///
/// Every fragment's data is a zero-copy slice of `l2cap_bytes` — no payload
/// byte is duplicated, regardless of the fragment count.
pub fn fragment(handle: ConnectionHandle, l2cap_bytes: &FrameBuf) -> Vec<AclPacket> {
    if l2cap_bytes.is_empty() {
        return vec![AclPacket {
            handle,
            boundary: BoundaryFlag::FirstNonFlushable,
            broadcast: 0,
            data: FrameBuf::new(),
        }];
    }
    (0..l2cap_bytes.len())
        .step_by(ACL_FRAGMENT_SIZE)
        .map(|start| AclPacket {
            handle,
            boundary: if start == 0 {
                BoundaryFlag::FirstNonFlushable
            } else {
                BoundaryFlag::Continuation
            },
            broadcast: 0,
            data: l2cap_bytes.slice(start..(start + ACL_FRAGMENT_SIZE).min(l2cap_bytes.len())),
        })
        .collect()
}

/// Reassembles a sequence of ACL fragments back into the L2CAP frame bytes.
///
/// A single-fragment sequence reassembles without copying: the result shares
/// the fragment's buffer.  Multi-fragment sequences perform exactly one copy,
/// concatenating the chunks into a fresh buffer.
///
/// # Errors
/// Returns a [`CodecError`] if the sequence is empty, does not start with a
/// first-fragment, or contains an unexpected first-fragment in the middle.
pub fn reassemble(packets: &[AclPacket]) -> Result<FrameBuf, CodecError> {
    let first = packets.first().ok_or(CodecError::UnexpectedEnd {
        wanted: 1,
        available: 0,
    })?;
    if !first.boundary.is_first() {
        return Err(CodecError::InvalidValue {
            field: "packet_boundary_flag".to_owned(),
            value: u64::from(first.boundary.bits()),
        });
    }
    for p in &packets[1..] {
        if p.boundary.is_first() {
            return Err(CodecError::InvalidValue {
                field: "packet_boundary_flag".to_owned(),
                value: u64::from(p.boundary.bits()),
            });
        }
    }
    if packets.len() == 1 {
        return Ok(first.data.clone());
    }
    let mut out = Vec::with_capacity(packets.iter().map(|p| p.data.len()).sum());
    for p in packets {
        out.extend_from_slice(&p.data);
    }
    Ok(FrameBuf::from_vec(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acl_packet_roundtrip() {
        let pkt = AclPacket {
            handle: ConnectionHandle(0x0ABC),
            boundary: BoundaryFlag::FirstFlushable,
            broadcast: 0,
            data: vec![1, 2, 3, 4, 5].into(),
        };
        let bytes = pkt.to_bytes();
        assert_eq!(bytes[0], ACL_DATA_PACKET_TYPE);
        assert_eq!(AclPacket::parse(&bytes).unwrap(), pkt);
    }

    #[test]
    fn parse_rejects_wrong_packet_type() {
        let mut bytes = AclPacket {
            handle: ConnectionHandle(1),
            boundary: BoundaryFlag::Continuation,
            broadcast: 0,
            data: FrameBuf::new(),
        }
        .to_bytes();
        bytes[0] = 0x04; // HCI event packet
        assert!(AclPacket::parse(&bytes).is_err());
    }

    #[test]
    fn parse_rejects_truncated_data() {
        let mut bytes = AclPacket {
            handle: ConnectionHandle(1),
            boundary: BoundaryFlag::FirstNonFlushable,
            broadcast: 0,
            data: vec![9; 10].into(),
        }
        .to_bytes();
        bytes.truncate(bytes.len() - 3);
        assert!(matches!(
            AclPacket::parse(&bytes),
            Err(CodecError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn boundary_flag_bits_roundtrip() {
        for flag in [
            BoundaryFlag::FirstNonFlushable,
            BoundaryFlag::Continuation,
            BoundaryFlag::FirstFlushable,
        ] {
            assert_eq!(BoundaryFlag::from_bits(flag.bits()), Some(flag));
        }
        assert_eq!(BoundaryFlag::from_bits(0b11), None);
    }

    #[test]
    fn small_frame_is_a_single_fragment() {
        let frags = fragment(ConnectionHandle(7), &FrameBuf::from(vec![1, 2, 3]));
        assert_eq!(frags.len(), 1);
        assert!(frags[0].boundary.is_first());
        assert_eq!(reassemble(&frags).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn large_frame_fragments_and_reassembles() {
        let payload = FrameBuf::from_vec((0..4000u16).map(|i| (i % 251) as u8).collect());
        let frags = fragment(ConnectionHandle(7), &payload);
        assert_eq!(frags.len(), payload.len().div_ceil(ACL_FRAGMENT_SIZE));
        assert!(frags[0].boundary.is_first());
        assert!(frags[1..]
            .iter()
            .all(|f| f.boundary == BoundaryFlag::Continuation));
        assert_eq!(reassemble(&frags).unwrap(), payload);
    }

    #[test]
    fn empty_frame_still_produces_one_fragment() {
        let frags = fragment(ConnectionHandle(7), &FrameBuf::new());
        assert_eq!(frags.len(), 1);
        assert_eq!(reassemble(&frags).unwrap(), FrameBuf::new());
    }

    #[test]
    fn reassemble_rejects_bad_sequences() {
        assert!(reassemble(&[]).is_err());
        let continuation_only = vec![AclPacket {
            handle: ConnectionHandle(1),
            boundary: BoundaryFlag::Continuation,
            broadcast: 0,
            data: vec![1].into(),
        }];
        assert!(reassemble(&continuation_only).is_err());
        let two_firsts = vec![
            AclPacket {
                handle: ConnectionHandle(1),
                boundary: BoundaryFlag::FirstNonFlushable,
                broadcast: 0,
                data: vec![1].into(),
            },
            AclPacket {
                handle: ConnectionHandle(1),
                boundary: BoundaryFlag::FirstFlushable,
                broadcast: 0,
                data: vec![2].into(),
            },
        ];
        assert!(reassemble(&two_firsts).is_err());
    }
}
