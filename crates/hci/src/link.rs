//! Link configuration and packet taps.
//!
//! The paper measures its evaluation metrics by sniffing the HCI traffic with
//! Wireshark; the equivalent here is a [`SharedTap`] attached to an ACL link,
//! which receives a [`PacketRecord`] for every frame crossing the link in
//! either direction.  The `sniffer` crate builds its traces from these
//! records.

use l2cap::packet::L2capFrame;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::fault::FaultPlan;

/// Direction of a packet relative to the fuzzer (the link initiator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Sent by the fuzzer towards the target.
    Tx,
    /// Received by the fuzzer from the target.
    Rx,
}

/// One captured packet crossing an ACL link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketRecord {
    /// Direction relative to the initiator.
    pub direction: Direction,
    /// Virtual-clock timestamp in microseconds.
    pub timestamp_micros: u64,
    /// The L2CAP frame as it appeared on the link.
    pub frame: L2capFrame,
}

serde_json::stream_unit_enum!(Direction);
serde_json::stream_unit_enum_de!(Direction);

/// Streams like the derived encoding: `{direction, timestamp_micros,
/// frame}` — used by the trace writer so captures serialize without a
/// `Value` tree.
impl serde_json::StreamSerialize for PacketRecord {
    fn stream(&self, w: &mut serde_json::JsonStreamWriter) {
        w.begin_object()
            .field("direction", &self.direction)
            .field("timestamp_micros", &self.timestamp_micros)
            .field("frame", &self.frame)
            .end_object();
    }
}

/// The reading mirror of the streamed encoding above — used by trace and
/// checkpoint replay.
impl serde_json::StreamDeserialize for PacketRecord {
    fn stream_from(r: &mut serde_json::JsonStreamReader<'_>) -> Result<Self, serde_json::Error> {
        r.begin_object()?;
        let direction = r.key("direction")?.value()?;
        let timestamp_micros = r.key("timestamp_micros")?.value()?;
        let frame = r.key("frame")?.value()?;
        r.end_object()?;
        Ok(PacketRecord {
            direction,
            timestamp_micros,
            frame,
        })
    }
}

/// A shareable sink for captured packets.
pub type SharedTap = Arc<Mutex<Vec<PacketRecord>>>;

/// Creates an empty shared tap.
pub fn new_tap() -> SharedTap {
    Arc::new(Mutex::new(Vec::new()))
}

/// Physical-layer behaviour of a virtual ACL link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// One-way latency added per frame, in microseconds of virtual time.
    pub latency_micros: u64,
    /// Probability that a transmitted frame is lost before reaching the
    /// target (the response is then empty, and the fuzzer observes a
    /// timeout).
    pub loss_probability: f64,
    /// Virtual time charged on the initiator side for building and queueing a
    /// frame, in microseconds.  Together with the target's processing cost
    /// this determines the packets-per-second figures of §IV-C.
    pub tx_overhead_micros: u64,
    /// Fault behaviour injected into the link's delivery path.  The default
    /// ([`FaultPlan::none`]) injects nothing and leaves the packet streams
    /// byte-identical to a medium without the fault layer.
    pub faults: FaultPlan,
}

impl Default for LinkConfig {
    fn default() -> Self {
        // Roughly 500-600 packets/second end-to-end for a simple exchange,
        // matching the order of magnitude the paper reports for L2Fuzz
        // (524 pps).
        LinkConfig {
            latency_micros: 400,
            loss_probability: 0.0,
            tx_overhead_micros: 800,
            faults: FaultPlan::none(),
        }
    }
}

impl LinkConfig {
    /// A perfectly reliable, zero-latency link; useful in unit tests.
    pub fn ideal() -> Self {
        LinkConfig {
            latency_micros: 0,
            loss_probability: 0.0,
            tx_overhead_micros: 0,
            faults: FaultPlan::none(),
        }
    }

    /// A lossy link dropping the given fraction of transmitted frames.
    pub fn lossy(loss_probability: f64) -> Self {
        LinkConfig {
            loss_probability,
            ..LinkConfig::default()
        }
    }

    /// Attaches a fault plan to this link configuration.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::Cid;

    #[test]
    fn default_link_is_reliable_and_slowish() {
        let cfg = LinkConfig::default();
        assert_eq!(cfg.loss_probability, 0.0);
        assert!(cfg.latency_micros > 0);
        assert!(cfg.tx_overhead_micros > 0);
    }

    #[test]
    fn ideal_and_lossy_constructors() {
        assert_eq!(LinkConfig::ideal().latency_micros, 0);
        let lossy = LinkConfig::lossy(0.25);
        assert_eq!(lossy.loss_probability, 0.25);
        assert_eq!(lossy.latency_micros, LinkConfig::default().latency_micros);
    }

    #[test]
    fn tap_accumulates_records() {
        let tap = new_tap();
        tap.lock().push(PacketRecord {
            direction: Direction::Tx,
            timestamp_micros: 10,
            frame: L2capFrame::new(Cid::SIGNALING, vec![1, 2, 3, 4]),
        });
        tap.lock().push(PacketRecord {
            direction: Direction::Rx,
            timestamp_micros: 20,
            frame: L2capFrame::new(Cid::SIGNALING, vec![5, 6, 7, 8]),
        });
        assert_eq!(tap.lock().len(), 2);
        assert_eq!(tap.lock()[0].direction, Direction::Tx);
        assert_eq!(tap.lock()[1].direction, Direction::Rx);
    }
}
