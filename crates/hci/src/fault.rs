//! Deterministic fault injection for virtual links.
//!
//! Real campaigns live with flaky links and misbehaving targets: frames are
//! lost, duplicated or corrupted by interference, latency wanders, responses
//! arrive out of order, and a busy target can go silent for a while.  A
//! [`FaultPlan`] models those behaviours on a virtual link.  Every fault
//! decision draws from a per-event RNG derived from the scheduler ticket —
//! the same mechanism as the legacy loss stream, but in its own seed domain
//! — so a faulty schedule replays bit for bit at any initiator count, and
//! [`FaultPlan::none`] leaves the packet streams byte-identical to a
//! fault-free medium.

use btcore::FuzzRng;
use l2cap::packet::L2capFrame;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Seed-domain separator for the fault stream, so fault decisions never
/// perturb the legacy `loss_probability` stream of the same event.
pub(crate) const FAULT_DOMAIN: u64 = 0xFA17_0000_0000_0001;

/// Fault behaviour of a virtual link.
///
/// All probabilities are per-exchange and independent; the plan is applied
/// in a fixed order (jitter, stall, loss, corruption, reorder, duplication)
/// so that a given campaign seed always produces the same faulty schedule.
/// The default plan ([`FaultPlan::none`]) injects nothing and consumes no
/// randomness, keeping default campaigns packet-identical to a medium
/// without the fault layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability that a transmitted frame is dropped on the air, in
    /// addition to the link's base `loss_probability`.
    pub loss: f64,
    /// Probability that a delivered frame reaches the target twice.
    pub duplicate: f64,
    /// Probability that the frame's payload is bit-corrupted in flight.
    /// The 4-byte basic header survives, so the frame still parses; the
    /// receiver sees garbage where the initiator sent structure.
    pub corrupt: f64,
    /// Upper bound of uniformly distributed extra latency charged per
    /// exchange, in microseconds of virtual time.
    pub jitter_micros: u64,
    /// Probability that a frame is held back and delivered after the *next*
    /// exchange (bounded, depth-1 reordering).
    pub reorder: f64,
    /// Probability that an exchange opens a stall window during which the
    /// target is silent: frames are swallowed and nothing is answered.
    pub stall: f64,
    /// Length of a stall window in microseconds of virtual time.
    pub stall_micros: u64,
    /// Probability that reading a crash dump from the target fails (the
    /// dump stays on the device for a later retry).
    pub dump_read_failure: f64,
}

impl FaultPlan {
    /// The empty plan: no faults, no randomness consumed.
    pub const fn none() -> Self {
        FaultPlan {
            loss: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            jitter_micros: 0,
            reorder: 0.0,
            stall: 0.0,
            stall_micros: 0,
            dump_read_failure: 0.0,
        }
    }

    /// A degraded link dropping and corrupting the given fractions of
    /// frames — the chaos shape used by the resilience evaluation.
    pub fn degraded(loss: f64, corrupt: f64) -> Self {
        FaultPlan {
            loss,
            corrupt,
            ..FaultPlan::none()
        }
    }

    /// Returns `true` if this plan injects nothing.  The medium uses this
    /// as its fast path: a no-op plan never constructs a fault RNG and
    /// never touches the clock, so default streams stay byte-identical.
    pub fn is_none(&self) -> bool {
        self.loss == 0.0
            && self.duplicate == 0.0
            && self.corrupt == 0.0
            && self.jitter_micros == 0
            && self.reorder == 0.0
            && self.stall == 0.0
            && self.dump_read_failure == 0.0
    }

    /// Sets the extra frame-loss probability.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.loss = p;
        self
    }

    /// Sets the duplication probability.
    pub fn with_duplication(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Sets the payload-corruption probability.
    pub fn with_corruption(mut self, p: f64) -> Self {
        self.corrupt = p;
        self
    }

    /// Sets the latency-jitter bound in microseconds.
    pub fn with_jitter(mut self, micros: u64) -> Self {
        self.jitter_micros = micros;
        self
    }

    /// Sets the depth-1 reordering probability.
    pub fn with_reorder(mut self, p: f64) -> Self {
        self.reorder = p;
        self
    }

    /// Sets the stall probability and window length.
    pub fn with_stall(mut self, p: f64, window_micros: u64) -> Self {
        self.stall = p;
        self.stall_micros = window_micros;
        self
    }

    /// Sets the crash-dump read-failure probability.
    pub fn with_dump_read_failure(mut self, p: f64) -> Self {
        self.dump_read_failure = p;
        self
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

/// Panic payload thrown by a link whose per-job watchdog deadline passed.
///
/// The sweep service catches this with `catch_unwind` and records the job as
/// `JobOutcome::TimedOut` instead of aborting the shard.  The deadline is in
/// virtual time, so whether a job times out is as deterministic as the rest
/// of the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogExpired {
    /// The deadline, in microseconds on the link's virtual clock.
    pub deadline_micros: u64,
    /// The link's virtual time when the watchdog fired.
    pub now_micros: u64,
}

impl fmt::Display for WatchdogExpired {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "watchdog expired: virtual time {} past deadline {}",
            self.now_micros, self.deadline_micros
        )
    }
}

/// Flips one to three payload bits of `frame`'s encoded form, leaving the
/// 4-byte basic header intact so the result still parses as an L2CAP frame.
/// Frames with an empty payload pass through unchanged.
pub(crate) fn corrupt_frame(frame: &L2capFrame, rng: &mut FuzzRng) -> L2capFrame {
    let mut bytes = frame.to_bytes();
    if bytes.len() <= 4 {
        return frame.clone();
    }
    let flips = rng.range_usize(1, 3);
    for _ in 0..flips {
        let bit = rng.range_usize(32, bytes.len() * 8 - 1);
        bytes[bit / 8] ^= 1 << (bit % 8);
    }
    L2capFrame::parse(&bytes).unwrap_or_else(|_| frame.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::Cid;

    #[test]
    fn none_plan_is_none_and_default() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::default().is_none());
        assert_eq!(FaultPlan::default(), FaultPlan::none());
    }

    #[test]
    fn setters_mark_plan_active() {
        assert!(!FaultPlan::none().with_loss(0.1).is_none());
        assert!(!FaultPlan::none().with_duplication(0.1).is_none());
        assert!(!FaultPlan::none().with_corruption(0.1).is_none());
        assert!(!FaultPlan::none().with_jitter(50).is_none());
        assert!(!FaultPlan::none().with_reorder(0.1).is_none());
        assert!(!FaultPlan::none().with_stall(0.1, 1_000).is_none());
        assert!(!FaultPlan::none().with_dump_read_failure(0.1).is_none());
        assert!(!FaultPlan::degraded(0.1, 0.05).is_none());
    }

    #[test]
    fn corruption_keeps_frame_parseable_and_changes_payload() {
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x04, 0x00, 1, 2, 3, 4]);
        let mut rng = FuzzRng::seed_from(7);
        let corrupted = corrupt_frame(&frame, &mut rng);
        assert_eq!(corrupted.to_bytes().len(), frame.to_bytes().len());
        assert_ne!(corrupted, frame);
        // Header (length + CID) survives.
        assert_eq!(corrupted.to_bytes()[..4], frame.to_bytes()[..4]);
    }

    #[test]
    fn corruption_of_empty_payload_is_identity() {
        let frame = L2capFrame::new(Cid::SIGNALING, Vec::new());
        let mut rng = FuzzRng::seed_from(7);
        assert_eq!(corrupt_frame(&frame, &mut rng), frame);
    }

    #[test]
    fn corruption_is_deterministic() {
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x04, 0x00, 1, 2, 3, 4]);
        let a = corrupt_frame(&frame, &mut FuzzRng::seed_from(99));
        let b = corrupt_frame(&frame, &mut FuzzRng::seed_from(99));
        assert_eq!(a, b);
    }

    #[test]
    fn plan_roundtrips_through_serde() {
        let plan = FaultPlan::degraded(0.2, 0.1)
            .with_stall(0.05, 20_000)
            .with_jitter(300);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
