//! The virtual air medium and ACL links.
//!
//! [`AirMedium`] plays the role of the radio environment: virtual devices are
//! registered on it, inquiry discovers the ones whose Bluetooth service is
//! alive, and [`AirMedium::connect`] establishes an [`AclLink`] to one of
//! them.  The link is synchronous and deterministic: sending a frame delivers
//! it to the device, charges virtual time on the shared [`SimClock`], applies
//! the configured loss/latency model, feeds every crossing frame to the
//! attached taps and returns the device's response frames.

use btcore::{
    BdAddr, BtError, ConnectionError, ConnectionHandle, DeviceMeta, FrameArena, FuzzRng, SimClock,
};
use l2cap::packet::L2capFrame;
use parking_lot::Mutex;
use std::sync::Arc;

use crate::acl;
use crate::device::{SharedDevice, VirtualDevice};
use crate::link::{Direction, LinkConfig, PacketRecord, SharedTap};

/// The virtual radio environment holding every registered device.
pub struct AirMedium {
    devices: Vec<SharedDevice>,
    clock: SimClock,
    next_handle: u16,
}

impl AirMedium {
    /// Creates an empty medium driven by `clock`.
    pub fn new(clock: SimClock) -> Self {
        AirMedium {
            devices: Vec::new(),
            clock,
            next_handle: 0x0001,
        }
    }

    /// Registers a device (consumes a boxed implementation).
    pub fn register(&mut self, device: Box<dyn VirtualDevice>) -> SharedDevice {
        let shared: SharedDevice = Arc::new(Mutex::new(BoxedDevice(device)));
        self.devices.push(shared.clone());
        shared
    }

    /// Registers an already-shared device handle.
    pub fn register_shared(&mut self, device: SharedDevice) {
        self.devices.push(device);
    }

    /// Number of registered devices (alive or not).
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Performs an inquiry: returns the metadata of every device whose
    /// Bluetooth service is currently running.  Each discovered device costs
    /// a little virtual time, as a real inquiry scan would.
    pub fn inquiry(&self) -> Vec<DeviceMeta> {
        let mut found = Vec::new();
        for dev in &self.devices {
            let guard = dev.lock();
            self.clock.advance_micros(1_000);
            if guard.bluetooth_alive() {
                found.push(guard.meta());
            }
        }
        found
    }

    /// Establishes an ACL link to the device with the given address.
    ///
    /// # Errors
    /// Returns [`BtError::UnknownDevice`] if no device has that address and
    /// [`BtError::Connection`] if the device exists but its Bluetooth service
    /// is down.
    pub fn connect(
        &mut self,
        addr: BdAddr,
        config: LinkConfig,
        rng: FuzzRng,
    ) -> Result<AclLink, BtError> {
        let device = self
            .devices
            .iter()
            .find(|d| d.lock().meta().addr == addr)
            .cloned()
            .ok_or(BtError::UnknownDevice {
                addr: addr.to_string(),
            })?;
        if !device.lock().bluetooth_alive() {
            return Err(BtError::Connection(ConnectionError::Refused));
        }
        let handle = ConnectionHandle(self.next_handle);
        self.next_handle = (self.next_handle + 1) & 0x0EFF;
        // Link setup (paging) costs a few milliseconds of virtual time.
        self.clock.advance_micros(5_000);
        Ok(AclLink {
            device,
            clock: self.clock.clone(),
            config,
            rng,
            taps: Vec::new(),
            handle,
            frames_sent: 0,
            frames_received: 0,
            arena: FrameArena::new(),
        })
    }

    /// Returns the shared clock driving this medium.
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }
}

/// Adapter so `Box<dyn VirtualDevice>` itself implements [`VirtualDevice`]
/// behind the shared mutex.
struct BoxedDevice(Box<dyn VirtualDevice>);

impl VirtualDevice for BoxedDevice {
    fn meta(&self) -> DeviceMeta {
        self.0.meta()
    }
    fn receive(&mut self, frame: &L2capFrame) -> Vec<L2capFrame> {
        self.0.receive(frame)
    }
    fn bluetooth_alive(&self) -> bool {
        self.0.bluetooth_alive()
    }
    fn processing_cost_micros(&self) -> u64 {
        self.0.processing_cost_micros()
    }
}

/// An established ACL link between the fuzzer and one virtual device.
pub struct AclLink {
    device: SharedDevice,
    clock: SimClock,
    config: LinkConfig,
    rng: FuzzRng,
    taps: Vec<SharedTap>,
    handle: ConnectionHandle,
    frames_sent: u64,
    frames_received: u64,
    /// Per-link buffer arena: serialization buffers checked out here return
    /// to the pool once the frame — and every tap record sharing its payload
    /// — has been dropped, so steady-state transmission does not allocate
    /// fresh backing stores.
    arena: FrameArena,
}

impl AclLink {
    /// Attaches a packet tap that will observe every frame in both
    /// directions.
    pub fn attach_tap(&mut self, tap: SharedTap) {
        self.taps.push(tap);
    }

    /// The HCI connection handle of this link.
    pub fn handle(&self) -> ConnectionHandle {
        self.handle
    }

    /// Number of frames sent over this link so far.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Number of frames received over this link so far.
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// Returns `true` if the target's Bluetooth service is still running.
    pub fn device_alive(&self) -> bool {
        self.device.lock().bluetooth_alive()
    }

    /// Shared handle to the device at the other end of the link (used by the
    /// out-of-band oracle, e.g. crash-dump collection).
    pub fn device(&self) -> SharedDevice {
        self.device.clone()
    }

    /// The link's frame-buffer arena.  Encoders feeding this link (the packet
    /// queue, hand-driven flows) check their payload buffers out of it so the
    /// buffers recycle once each exchange completes.
    pub fn arena(&self) -> &FrameArena {
        &self.arena
    }

    fn record(&self, direction: Direction, frame: &L2capFrame) {
        for tap in &self.taps {
            tap.lock().push(PacketRecord {
                direction,
                timestamp_micros: self.clock.now_micros(),
                frame: frame.clone(),
            });
        }
    }

    /// Sends an L2CAP frame to the target and returns the frames it answers
    /// with (possibly none).
    ///
    /// The frame is fragmented into ACL packets, carried across the virtual
    /// air (applying latency, loss and processing cost to the shared clock)
    /// and reassembled on the device side; responses travel the same way
    /// back.  Every frame crossing the link is reported to the attached taps,
    /// including frames that are subsequently lost.
    pub fn send_frame(&mut self, frame: &L2capFrame) -> Vec<L2capFrame> {
        self.clock.advance_micros(self.config.tx_overhead_micros);
        self.record(Direction::Tx, frame);
        self.frames_sent += 1;

        let fragment_count = frame.wire_len().div_ceil(acl::ACL_FRAGMENT_SIZE).max(1);
        self.clock
            .advance_micros(self.config.latency_micros * fragment_count as u64);

        if self.config.loss_probability > 0.0 && self.rng.chance(self.config.loss_probability) {
            // Frame lost on the air: the target never sees it.
            return Vec::new();
        }

        // A single fragment crosses the air byte-for-byte, so re-parsing its
        // serialized form is the identity: the device is handed a borrowed
        // view of the original frame and no byte is serialized or copied.
        // Larger frames go through the full ACL fragmentation/reassembly
        // path — zero-copy fragments sliced from one arena buffer —
        // exercising the same code a real controller buffer would.
        let reassembled;
        let delivered_frame = if fragment_count == 1 {
            frame
        } else {
            let mut wire = self.arena.checkout();
            frame.encode_into(&mut wire);
            let wire = wire.freeze();
            let fragments = acl::fragment(self.handle, &wire);
            match acl::reassemble(&fragments).and_then(|bytes| L2capFrame::parse_buf(&bytes)) {
                Ok(f) => {
                    reassembled = f;
                    &reassembled
                }
                Err(_) => return Vec::new(),
            }
        };

        let responses = {
            let mut dev = self.device.lock();
            self.clock.advance_micros(dev.processing_cost_micros());
            if !dev.bluetooth_alive() {
                Vec::new()
            } else {
                dev.receive(delivered_frame)
            }
        };

        for rsp in &responses {
            self.clock.advance_micros(self.config.latency_micros);
            self.record(Direction::Rx, rsp);
            self.frames_received += 1;
        }
        responses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::EchoDevice;
    use crate::link::new_tap;
    use btcore::Cid;

    fn setup() -> (AirMedium, BdAddr) {
        let clock = SimClock::new();
        let mut air = AirMedium::new(clock);
        let addr = BdAddr::new([0xAA, 0xBB, 0xCC, 0x00, 0x00, 0x01]);
        air.register(Box::new(EchoDevice::new(addr)));
        (air, addr)
    }

    #[test]
    fn inquiry_finds_registered_devices() {
        let (air, addr) = setup();
        let found = air.inquiry();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].addr, addr);
        assert_eq!(air.device_count(), 1);
    }

    #[test]
    fn connect_unknown_device_fails() {
        let (mut air, _) = setup();
        match air.connect(
            BdAddr::new([9, 9, 9, 9, 9, 9]),
            LinkConfig::ideal(),
            FuzzRng::seed_from(1),
        ) {
            Err(err) => assert!(matches!(err, BtError::UnknownDevice { .. })),
            Ok(_) => panic!("connecting to an unknown address must fail"),
        }
    }

    #[test]
    fn send_frame_roundtrips_through_echo_device() {
        let (mut air, addr) = setup();
        let mut link = air
            .connect(addr, LinkConfig::ideal(), FuzzRng::seed_from(1))
            .unwrap();
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        let responses = link.send_frame(&frame);
        assert_eq!(responses, vec![frame]);
        assert_eq!(link.frames_sent(), 1);
        assert_eq!(link.frames_received(), 1);
        assert!(link.device_alive());
    }

    #[test]
    fn taps_see_both_directions() {
        let (mut air, addr) = setup();
        let mut link = air
            .connect(addr, LinkConfig::default(), FuzzRng::seed_from(1))
            .unwrap();
        let tap = new_tap();
        link.attach_tap(tap.clone());
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        link.send_frame(&frame);
        let records = tap.lock();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].direction, Direction::Tx);
        assert_eq!(records[1].direction, Direction::Rx);
        assert!(records[1].timestamp_micros >= records[0].timestamp_micros);
    }

    #[test]
    fn clock_advances_with_traffic() {
        let (mut air, addr) = setup();
        let clock = air.clock();
        let before = clock.now_micros();
        let mut link = air
            .connect(addr, LinkConfig::default(), FuzzRng::seed_from(1))
            .unwrap();
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        link.send_frame(&frame);
        assert!(clock.now_micros() > before);
    }

    #[test]
    fn total_loss_drops_every_frame() {
        let (mut air, addr) = setup();
        let mut link = air
            .connect(addr, LinkConfig::lossy(1.0), FuzzRng::seed_from(1))
            .unwrap();
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        for _ in 0..10 {
            assert!(link.send_frame(&frame).is_empty());
        }
        assert_eq!(link.frames_received(), 0);
        assert_eq!(link.frames_sent(), 10);
    }

    #[test]
    fn large_frame_survives_fragmentation() {
        let (mut air, addr) = setup();
        let mut link = air
            .connect(addr, LinkConfig::ideal(), FuzzRng::seed_from(1))
            .unwrap();
        let payload = vec![0x5A; 3000];
        let frame = L2capFrame::new(Cid::SIGNALING, payload);
        let responses = link.send_frame(&frame);
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0], frame);
    }
}
