//! Compatibility names for the pre-event-driven medium API.
//!
//! The synchronous `AirMedium`/`AclLink` pair was replaced by the
//! event-driven [`crate::medium`] module: [`crate::medium::EventMedium`]
//! implements the [`crate::medium::Medium`] trait over an ordered event
//! queue, and [`crate::medium::LinkHandle`] is an independent event source
//! per link, which is what lets several initiators fuzz one device
//! concurrently.
//!
//! Single-link use is a drop-in swap — `EventMedium::new(clock)` behaves
//! exactly like `AirMedium::new(clock)` did: same inquiry/connect surface,
//! and for loss-free links (the default) bit-identical packet streams and
//! timestamps.  (With `loss_probability > 0` the loss stream is now seeded
//! per event instead of drawn from one sequential per-link stream, so
//! lossy runs drop different — equally deterministic — frames.)  This
//! module keeps the old names as aliases for code migrating at its own
//! pace; new code should name the `medium` types directly.

/// The event-driven medium under its pre-PR-5 name.
pub type AirMedium = crate::medium::EventMedium;

/// A link handle under its pre-PR-5 name.
pub type AclLink = crate::medium::LinkHandle;

#[allow(unused_imports)]
pub use crate::medium::Medium as _;
