//! Virtual HCI/ACL transport — the "air" substrate of the reproduction.
//!
//! The original L2Fuzz drives a physical Bluetooth dongle; this crate
//! replaces the radio with a deterministic in-process medium while keeping
//! the same shape of interface the fuzzer sees:
//!
//! * [`acl`] — HCI ACL data packets (the outermost layer of the paper's
//!   Fig. 3 frame) with fragmentation and reassembly of L2CAP frames.
//! * [`medium`] — the event-driven [`medium::Medium`]:
//!   [`medium::EventMedium`] is a registry of virtual devices that can be
//!   discovered by inquiry and connected to, producing a
//!   [`medium::LinkHandle`] per link.  Several links to one device fire
//!   their exchanges through one deterministic event scheduler, so
//!   concurrent initiators interleave reproducibly.
//! * [`air`] — compatibility aliases (`AirMedium`, `AclLink`) for the
//!   pre-event-driven names.
//! * [`device`] — the [`device::VirtualDevice`] trait a simulated target
//!   implements (the `btstack` crate provides vendor-flavoured
//!   implementations).
//! * [`dongle`] — the fuzzer-side [`dongle::HciDongle`], mirroring the
//!   "Bluetooth Dongle" box of the paper's workflow figure.
//! * [`link`] — link configuration (latency, loss) and packet taps used by
//!   the sniffer.
//! * [`fault`] — deterministic fault injection ([`fault::FaultPlan`]): loss,
//!   duplication, corruption, jitter, reordering and stalls, all derived
//!   from the per-event seeded RNG so faulty schedules replay bit for bit.
//!
//! # Example
//!
//! ```
//! use hci::medium::{EventMedium, Medium};
//! use hci::device::EchoDevice;
//! use hci::dongle::HciDongle;
//! use btcore::{BdAddr, SimClock};
//!
//! let clock = SimClock::new();
//! let mut air = EventMedium::new(clock.clone());
//! air.register(Box::new(EchoDevice::new(BdAddr::new([1, 2, 3, 4, 5, 6]))));
//!
//! let dongle = HciDongle::new(air, clock);
//! let found = dongle.inquiry();
//! assert_eq!(found.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod air;
pub mod device;
pub mod dongle;
pub mod fault;
pub mod link;
pub mod medium;

pub use acl::{AclPacket, BoundaryFlag, ACL_FRAGMENT_SIZE};
pub use device::{SharedDevice, VirtualDevice};
pub use dongle::HciDongle;
pub use fault::{FaultPlan, WatchdogExpired};
pub use link::{Direction, LinkConfig, PacketRecord, SharedTap};
pub use medium::{EventMedium, LinkHandle, LinkSpec, Medium};
