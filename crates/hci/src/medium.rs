//! The event-driven medium: concurrent links over one deterministic radio.
//!
//! This module replaces the synchronous `AirMedium` call chain of earlier
//! revisions.  The radio environment is now a [`Medium`]: a registry of
//! virtual devices plus an ordered event core ([`btcore::EventScheduler`])
//! through which every frame exchange passes.  Each established link is a
//! [`LinkHandle`] — an independent event source with its own virtual clock,
//! its own loss stream and its own device-side L2CAP acceptor slot — so
//! several initiators can fuzz *one* device concurrently, including one
//! BR/EDR and one LE initiator against the same dual-mode target.
//!
//! # Determinism
//!
//! Every exchange is an event stamped with the sending link's virtual time;
//! the scheduler admits events in ascending `(time, link)` order no matter
//! how the OS schedules the initiator threads, and hands each admitted event
//! a deterministic seed for its random decisions (frame loss).  A campaign's
//! packet streams are therefore a pure function of its seed at any initiator
//! count — and a single-link medium degenerates to exactly the synchronous
//! behaviour (one uncontended lock per exchange, no extra clock charges), so
//! single-initiator campaigns replay the old medium bit for bit.

use btcore::{
    splitmix64, BdAddr, BtError, ConnectionError, ConnectionHandle, DeviceMeta, EventScheduler,
    FrameArena, FuzzRng, LinkSlot, LinkType, SimClock, SourceId,
};
use l2cap::packet::L2capFrame;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::acl;
use crate::device::{BoxedDevice, SharedDevice, VirtualDevice};
use crate::fault::{corrupt_frame, FaultPlan, WatchdogExpired, FAULT_DOMAIN};
use crate::link::{Direction, LinkConfig, PacketRecord, SharedTap};

/// A virtual radio environment that devices register on and links are
/// established over.
///
/// [`EventMedium`] is the (only) in-process implementation; the trait is the
/// seam a hardware-backed medium would slot into.
pub trait Medium {
    /// Registers an already-shared device handle.
    fn register_shared(&mut self, device: SharedDevice);

    /// Number of registered devices (alive or not).
    fn device_count(&self) -> usize;

    /// Performs an inquiry: returns the metadata of every device whose
    /// Bluetooth service is currently running.  Charges a little virtual
    /// time per discovered device on the medium clock, as a real inquiry
    /// scan would.
    fn inquiry(&self) -> Vec<DeviceMeta>;

    /// The medium-wide clock: tracks the latest fired event across all
    /// links.
    fn clock(&self) -> SimClock;

    /// Establishes a link according to `spec`.
    ///
    /// # Errors
    /// Returns [`BtError::UnknownDevice`] if no device has the address,
    /// [`BtError::Connection`] if the device is down or does not serve the
    /// requested transport.
    fn connect_spec(&mut self, spec: LinkSpec) -> Result<LinkHandle, BtError>;

    /// Registers a device from a boxed implementation, returning the shared
    /// handle.
    fn register(&mut self, device: Box<dyn VirtualDevice>) -> SharedDevice
    where
        Self: Sized,
    {
        let shared: SharedDevice = Arc::new(Mutex::new(BoxedDevice::new(device)));
        self.register_shared(shared.clone());
        shared
    }

    /// Establishes a link on the device's primary transport, with the link's
    /// timeline on the medium clock — the synchronous-medium behaviour.
    ///
    /// # Errors
    /// Same conditions as [`Medium::connect_spec`].
    fn connect(
        &mut self,
        addr: BdAddr,
        config: LinkConfig,
        rng: FuzzRng,
    ) -> Result<LinkHandle, BtError> {
        self.connect_spec(LinkSpec::new(addr, config, rng))
    }
}

/// Everything [`Medium::connect_spec`] needs to establish one link.
pub struct LinkSpec {
    /// Address of the target device.
    pub addr: BdAddr,
    /// Physical-layer behaviour of the link.
    pub config: LinkConfig,
    /// Seed of the link's loss stream (each event derives its own RNG from
    /// this and the event's scheduler ticket).
    pub link_seed: u64,
    /// Transport to connect over; `None` uses the device's primary
    /// transport.
    pub link_type: Option<LinkType>,
    /// The link's local clock — the timeline its initiator lives on.
    /// `None` puts the link on the medium clock (single-initiator
    /// campaigns), which keeps the synchronous medium's exact cost
    /// accounting.
    pub clock: Option<SimClock>,
    /// Watchdog budget in microseconds of link virtual time, measured from
    /// the moment the link is established.  A send past the deadline panics
    /// with a [`WatchdogExpired`] payload; the sweep service catches it and
    /// quarantines the job.  `None` disables the watchdog.
    pub watchdog_micros: Option<u64>,
}

impl LinkSpec {
    /// A primary-transport link on the medium clock (the compatibility
    /// shape of the old `AirMedium::connect`).
    pub fn new(addr: BdAddr, config: LinkConfig, rng: FuzzRng) -> Self {
        LinkSpec {
            addr,
            config,
            link_seed: rng.seed(),
            link_type: None,
            clock: None,
            watchdog_micros: None,
        }
    }

    /// Selects the transport to connect over.
    pub fn on(mut self, link_type: LinkType) -> Self {
        self.link_type = Some(link_type);
        self
    }

    /// Puts the link's timeline on its own clock (concurrent initiators).
    pub fn with_clock(mut self, clock: SimClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Arms a per-link virtual-time watchdog.
    pub fn with_watchdog(mut self, micros: u64) -> Self {
        self.watchdog_micros = Some(micros);
        self
    }
}

/// Shared state of an [`EventMedium`]: the device registry, the event
/// scheduler and the medium clock.  Every [`LinkHandle`] holds one `Arc` of
/// this.
struct MediumCore {
    scheduler: EventScheduler,
    clock: SimClock,
}

/// The event-driven in-process medium.
pub struct EventMedium {
    devices: Vec<DeviceEntry>,
    core: Arc<MediumCore>,
    next_handle: u16,
}

struct DeviceEntry {
    device: SharedDevice,
    next_slot: u16,
}

impl EventMedium {
    /// Creates an empty medium driven by `clock`, with per-event seeds
    /// derived from seed 0 (use [`EventMedium::with_seed`] for campaigns).
    pub fn new(clock: SimClock) -> Self {
        EventMedium::with_seed(clock, 0)
    }

    /// Creates an empty medium whose per-event RNG seeds derive from
    /// `seed`.
    pub fn with_seed(clock: SimClock, seed: u64) -> Self {
        EventMedium {
            devices: Vec::new(),
            core: Arc::new(MediumCore {
                scheduler: EventScheduler::new(seed),
                clock,
            }),
            next_handle: 0x0001,
        }
    }

    /// Total events fired across all links of this medium.
    pub fn events_fired(&self) -> u64 {
        self.core.scheduler.events_fired()
    }
}

impl Medium for EventMedium {
    fn register_shared(&mut self, device: SharedDevice) {
        self.devices.push(DeviceEntry {
            device,
            next_slot: 0,
        });
    }

    fn device_count(&self) -> usize {
        self.devices.len()
    }

    fn inquiry(&self) -> Vec<DeviceMeta> {
        let mut found = Vec::new();
        for entry in &self.devices {
            let guard = entry.device.lock();
            self.core.clock.advance_micros(1_000);
            if guard.bluetooth_alive() {
                found.push(guard.meta());
            }
        }
        found
    }

    fn clock(&self) -> SimClock {
        self.core.clock.clone()
    }

    fn connect_spec(&mut self, spec: LinkSpec) -> Result<LinkHandle, BtError> {
        let entry = self
            .devices
            .iter_mut()
            .find(|e| e.device.lock().meta().addr == spec.addr)
            .ok_or(BtError::UnknownDevice {
                addr: spec.addr.to_string(),
            })?;
        let (slot, link_type) = {
            let mut guard = entry.device.lock();
            if !guard.bluetooth_alive() {
                return Err(BtError::Connection(ConnectionError::Refused));
            }
            let link_type = spec.link_type.unwrap_or(guard.meta().link_type);
            if !guard.supports_link(link_type) {
                return Err(BtError::Connection(ConnectionError::Refused));
            }
            let slot = LinkSlot(entry.next_slot);
            entry.next_slot += 1;
            guard.attach_link(slot, link_type);
            (slot, link_type)
        };
        let handle = ConnectionHandle(self.next_handle);
        self.next_handle = (self.next_handle + 1) & 0x0EFF;
        let clock = spec.clock.unwrap_or_else(|| self.core.clock.clone());
        // Link setup (paging) costs a few milliseconds of the link's own
        // virtual time.
        clock.advance_micros(5_000);
        let deadline_micros = spec.watchdog_micros.map(|w| clock.now_micros() + w);
        let source = self.core.scheduler.register(clock.now_micros());
        Ok(LinkHandle {
            device: entry.device.clone(),
            core: self.core.clone(),
            source,
            slot,
            link_type,
            clock,
            config: spec.config,
            link_seed: spec.link_seed,
            taps: Vec::new(),
            handle,
            frames_sent: 0,
            frames_received: 0,
            arena: FrameArena::new(),
            retired: Arc::new(AtomicBool::new(false)),
            deadline_micros,
            stalled_until: 0,
            held_frame: None,
        })
    }
}

/// An established link between one initiator and one virtual device.
///
/// The handle is an independent event source on its medium: every
/// [`LinkHandle::send_frame`] passes the scheduler's turnstile, so exchanges
/// from concurrent links fire in deterministic virtual-time order.  All
/// virtual time the exchange costs is charged to the link's own clock.
pub struct LinkHandle {
    device: SharedDevice,
    core: Arc<MediumCore>,
    source: SourceId,
    slot: LinkSlot,
    link_type: LinkType,
    clock: SimClock,
    config: LinkConfig,
    link_seed: u64,
    taps: Vec<SharedTap>,
    handle: ConnectionHandle,
    frames_sent: u64,
    frames_received: u64,
    /// Per-link buffer arena: serialization buffers checked out here return
    /// to the pool once the frame — and every tap record sharing its payload
    /// — has been dropped, so steady-state transmission does not allocate
    /// fresh backing stores.
    arena: FrameArena,
    /// Shared with every [`EventGate`] and [`RetireGuard`] of this link, so
    /// whichever party retires first, all of them observe it.
    retired: Arc<AtomicBool>,
    /// Absolute virtual-time deadline of the per-link watchdog, if armed.
    deadline_micros: Option<u64>,
    /// End of the current fault-injected stall window (0 when not
    /// stalling): while the link clock is before this instant the target is
    /// silent and every frame in flight is swallowed.
    stalled_until: u64,
    /// Depth-1 reorder slot: a frame held back by the fault plan, delivered
    /// after the next exchange.
    held_frame: Option<L2capFrame>,
}

impl LinkHandle {
    /// Attaches a packet tap that will observe every frame in both
    /// directions.
    pub fn attach_tap(&mut self, tap: SharedTap) {
        self.taps.push(tap);
    }

    /// The HCI connection handle of this link.
    pub fn handle(&self) -> ConnectionHandle {
        self.handle
    }

    /// The device-side acceptor slot this link is served by.
    pub fn slot(&self) -> LinkSlot {
        self.slot
    }

    /// The transport this link runs over.
    pub fn link_type(&self) -> LinkType {
        self.link_type
    }

    /// The link's local virtual clock.
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Number of frames sent over this link so far.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Number of frames received over this link so far.
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// Returns `true` if the target's Bluetooth service is still running.
    ///
    /// The read passes the medium's turnstile as a zero-cost event: with
    /// concurrent initiators, whether another link's exchange killed the
    /// device "yet" is answered in virtual-time order, never wall-clock
    /// order.
    pub fn device_alive(&self) -> bool {
        let device = &self.device;
        self.event_gate()
            .serialized(|| device.lock().bluetooth_alive())
    }

    /// A handle for serializing observations — this link's own
    /// [`LinkHandle::device_alive`] as well as *out-of-band* ones (the
    /// campaign's oracle: service status, crash-dump collection) — through
    /// this link's event source, so they land at a deterministic point of
    /// the medium's schedule.
    pub fn event_gate(&self) -> EventGate {
        EventGate {
            core: self.core.clone(),
            source: self.source,
            clock: self.clock.clone(),
            retired: self.retired.clone(),
        }
    }

    /// A guard that [`LinkHandle::retire`]s this link when dropped —
    /// including during a panic unwind.  Concurrent initiators hold one for
    /// the duration of their run: if one initiator's tool panics, its link
    /// still leaves the turnstile, so the surviving initiators (and the
    /// campaign's thread scope) are not deadlocked waiting on a source that
    /// will never advance.
    pub fn retire_guard(&self) -> RetireGuard {
        RetireGuard {
            core: self.core.clone(),
            source: self.source,
            clock: self.clock.clone(),
            retired: self.retired.clone(),
        }
    }

    /// Shared handle to the device at the other end of the link (used by the
    /// out-of-band oracle, e.g. crash-dump collection).
    pub fn device(&self) -> SharedDevice {
        self.device.clone()
    }

    /// The link's frame-buffer arena.  Encoders feeding this link (the packet
    /// queue, hand-driven flows) check their payload buffers out of it so the
    /// buffers recycle once each exchange completes.
    pub fn arena(&self) -> &FrameArena {
        &self.arena
    }

    /// Retires this link as an event source: it stops holding concurrent
    /// links at the turnstile.  Called automatically on drop; call it
    /// explicitly as soon as an initiator is done driving traffic so the
    /// others do not wait on a finished peer.  A retired link must not send
    /// any more frames.
    pub fn retire(&mut self) {
        retire_once(&self.retired, &self.core, self.source, &self.clock);
    }

    fn record(&self, direction: Direction, frame: &L2capFrame) {
        for tap in &self.taps {
            tap.lock().push(PacketRecord {
                direction,
                timestamp_micros: self.clock.now_micros(),
                frame: frame.clone(),
            });
        }
    }

    /// Sends an L2CAP frame to the target and returns the frames it answers
    /// with (possibly none).
    ///
    /// The exchange fires as one event: the link waits at the medium's
    /// turnstile until its virtual time is globally minimal, then the frame
    /// is fragmented into ACL packets, carried across the virtual air
    /// (applying latency, loss and processing cost to the link's clock) and
    /// reassembled on the device side; responses travel the same way back.
    /// Every frame crossing the link is reported to the attached taps,
    /// including frames that are subsequently lost.
    ///
    /// # Panics
    /// Panics if the link has been retired.
    pub fn send_frame(&mut self, frame: &L2capFrame) -> Vec<L2capFrame> {
        assert!(
            !self.retired.load(Ordering::Acquire),
            "retired link must not send frames"
        );
        if let Some(deadline) = self.deadline_micros {
            let now = self.clock.now_micros();
            if now > deadline {
                // Fired before the turnstile: no ticket or lock is held, so
                // the unwind leaves the medium consistent (the RetireGuard
                // and the handle's Drop retire the source).
                std::panic::panic_any(WatchdogExpired {
                    deadline_micros: deadline,
                    now_micros: now,
                });
            }
        }
        let ticket = self
            .core
            .scheduler
            .begin_event(self.source, self.clock.now_micros());

        self.clock.advance_micros(self.config.tx_overhead_micros);
        self.record(Direction::Tx, frame);
        self.frames_sent += 1;

        let fragment_count = frame.wire_len().div_ceil(acl::ACL_FRAGMENT_SIZE).max(1);
        self.clock
            .advance_micros(self.config.latency_micros * fragment_count as u64);

        let lost = self.config.loss_probability > 0.0
            && FuzzRng::seed_from(splitmix64(ticket.seed ^ self.link_seed))
                .chance(self.config.loss_probability);
        let faults = self.config.faults;
        let responses = if lost {
            // Frame lost on the air: the target never sees it.
            Vec::new()
        } else if faults.is_none() {
            self.deliver(frame, fragment_count)
        } else {
            self.deliver_with_faults(frame, &faults, ticket.seed)
        };

        for rsp in &responses {
            self.clock.advance_micros(self.config.latency_micros);
            self.record(Direction::Rx, rsp);
            self.frames_received += 1;
        }

        let end = self.clock.now_micros();
        self.core.clock.advance_to(end);
        self.core.scheduler.end_event(self.source, end, &ticket);
        responses
    }

    /// Runs one exchange through the link's [`FaultPlan`].
    ///
    /// Decisions draw from a per-event RNG seeded from the scheduler ticket
    /// in a fixed order — jitter, stall, loss, corruption, reorder,
    /// duplication — in a seed domain separate from the legacy loss stream,
    /// so the same campaign seed and plan always reproduce the same faulty
    /// schedule, and plans that leave `loss_probability` semantics alone
    /// never perturb existing streams.
    fn deliver_with_faults(
        &mut self,
        frame: &L2capFrame,
        faults: &FaultPlan,
        ticket_seed: u64,
    ) -> Vec<L2capFrame> {
        let mut rng = FuzzRng::seed_from(splitmix64(ticket_seed ^ self.link_seed ^ FAULT_DOMAIN));
        if faults.jitter_micros > 0 {
            let jitter = rng.range_usize(0, faults.jitter_micros as usize) as u64;
            self.clock.advance_micros(jitter);
        }
        let now = self.clock.now_micros();
        // A silent target swallows everything in flight, including a frame
        // held in the reorder slot.
        if now < self.stalled_until {
            self.held_frame = None;
            return Vec::new();
        }
        if faults.stall > 0.0 && rng.chance(faults.stall) {
            self.stalled_until = now + faults.stall_micros;
            self.held_frame = None;
            return Vec::new();
        }
        let previously_held = self.held_frame.take();
        let lost = faults.loss > 0.0 && rng.chance(faults.loss);
        // Frames reaching the target this exchange, in arrival order: the
        // current frame first, then a previously held one — the older frame
        // arrives late, which is exactly depth-1 reordering.
        let mut arriving: Vec<L2capFrame> = Vec::new();
        if !lost {
            let outgoing = if faults.corrupt > 0.0 && rng.chance(faults.corrupt) {
                corrupt_frame(frame, &mut rng)
            } else {
                frame.clone()
            };
            if faults.reorder > 0.0 && previously_held.is_none() && rng.chance(faults.reorder) {
                self.held_frame = Some(outgoing);
            } else {
                arriving.push(outgoing);
            }
        }
        arriving.extend(previously_held);
        let mut responses = Vec::new();
        for arrived in &arriving {
            let fragments = arrived.wire_len().div_ceil(acl::ACL_FRAGMENT_SIZE).max(1);
            responses.extend(self.deliver(arrived, fragments));
            if faults.duplicate > 0.0 && rng.chance(faults.duplicate) {
                responses.extend(self.deliver(arrived, fragments));
            }
        }
        responses
    }

    fn deliver(&mut self, frame: &L2capFrame, fragment_count: usize) -> Vec<L2capFrame> {
        // A single fragment crosses the air byte-for-byte, so re-parsing its
        // serialized form is the identity: the device is handed a borrowed
        // view of the original frame and no byte is serialized or copied.
        // Larger frames go through the full ACL fragmentation/reassembly
        // path — zero-copy fragments sliced from one arena buffer —
        // exercising the same code a real controller buffer would.
        let reassembled;
        let delivered_frame = if fragment_count == 1 {
            frame
        } else {
            let mut wire = self.arena.checkout();
            frame.encode_into(&mut wire);
            let wire = wire.freeze();
            let fragments = acl::fragment(self.handle, &wire);
            match acl::reassemble(&fragments).and_then(|bytes| L2capFrame::parse_buf(&bytes)) {
                Ok(f) => {
                    reassembled = f;
                    &reassembled
                }
                Err(_) => return Vec::new(),
            }
        };

        let mut dev = self.device.lock();
        self.clock.advance_micros(dev.processing_cost_micros());
        if !dev.bluetooth_alive() {
            Vec::new()
        } else {
            dev.receive(self.slot, delivered_frame)
        }
    }
}

impl Drop for LinkHandle {
    fn drop(&mut self) {
        self.retire();
    }
}

/// Serializes arbitrary observations through one link's event source.
///
/// An out-of-band oracle (crash dumps over `adb`/`ssh`) reads device state
/// the medium does not carry; with concurrent initiators those reads still
/// have to happen at a *defined* point of the event schedule or campaigns
/// stop being replayable.  `EventGate::serialized` fires a zero-cost event
/// at the owning link's current virtual time: the observation waits its
/// turn at the turnstile exactly like a frame exchange would.
pub struct EventGate {
    core: Arc<MediumCore>,
    source: SourceId,
    clock: SimClock,
    retired: Arc<AtomicBool>,
}

impl EventGate {
    /// Runs `f` as a zero-cost event on the gate's link source.  After the
    /// link retires, `f` runs directly — the link's thread is the only one
    /// left interested in its timeline.
    pub fn serialized<T>(&self, f: impl FnOnce() -> T) -> T {
        if self.retired.load(Ordering::Acquire) {
            return f();
        }
        let ticket = self
            .core
            .scheduler
            .begin_event(self.source, self.clock.now_micros());
        let result = f();
        self.core
            .scheduler
            .end_event(self.source, self.clock.now_micros(), &ticket);
        result
    }
}

/// Retires a link's event source exactly once, no matter which handle
/// (the [`LinkHandle`] itself, its drop, or a [`RetireGuard`]) gets there
/// first.
fn retire_once(retired: &AtomicBool, core: &MediumCore, source: SourceId, clock: &SimClock) {
    if !retired.swap(true, Ordering::AcqRel) {
        core.clock.advance_to(clock.now_micros());
        core.scheduler.retire(source);
    }
}

/// Retires its link when dropped — including during a panic unwind.
///
/// Obtained from [`LinkHandle::retire_guard`]; see there for why concurrent
/// initiators hold one.
pub struct RetireGuard {
    core: Arc<MediumCore>,
    source: SourceId,
    clock: SimClock,
    retired: Arc<AtomicBool>,
}

impl Drop for RetireGuard {
    fn drop(&mut self) {
        retire_once(&self.retired, &self.core, self.source, &self.clock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::EchoDevice;
    use crate::link::new_tap;
    use btcore::Cid;

    fn setup() -> (EventMedium, BdAddr) {
        let clock = SimClock::new();
        let mut air = EventMedium::new(clock);
        let addr = BdAddr::new([0xAA, 0xBB, 0xCC, 0x00, 0x00, 0x01]);
        air.register(Box::new(EchoDevice::new(addr)));
        (air, addr)
    }

    #[test]
    fn inquiry_finds_registered_devices() {
        let (air, addr) = setup();
        let found = air.inquiry();
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].addr, addr);
        assert_eq!(air.device_count(), 1);
    }

    #[test]
    fn connect_unknown_device_fails() {
        let (mut air, _) = setup();
        match air.connect(
            BdAddr::new([9, 9, 9, 9, 9, 9]),
            LinkConfig::ideal(),
            FuzzRng::seed_from(1),
        ) {
            Err(err) => assert!(matches!(err, BtError::UnknownDevice { .. })),
            Ok(_) => panic!("connecting to an unknown address must fail"),
        }
    }

    #[test]
    fn connect_on_unsupported_transport_is_refused() {
        let (mut air, addr) = setup();
        // EchoDevice announces BR/EDR only.
        let result = air.connect_spec(
            LinkSpec::new(addr, LinkConfig::ideal(), FuzzRng::seed_from(1)).on(LinkType::Le),
        );
        assert!(matches!(
            result,
            Err(BtError::Connection(ConnectionError::Refused))
        ));
    }

    #[test]
    fn send_frame_roundtrips_through_echo_device() {
        let (mut air, addr) = setup();
        let mut link = air
            .connect(addr, LinkConfig::ideal(), FuzzRng::seed_from(1))
            .unwrap();
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        let responses = link.send_frame(&frame);
        assert_eq!(responses, vec![frame]);
        assert_eq!(link.frames_sent(), 1);
        assert_eq!(link.frames_received(), 1);
        assert!(link.device_alive());
        assert_eq!(link.slot(), LinkSlot::PRIMARY);
        assert_eq!(link.link_type(), LinkType::BrEdr);
    }

    #[test]
    fn taps_see_both_directions() {
        let (mut air, addr) = setup();
        let mut link = air
            .connect(addr, LinkConfig::default(), FuzzRng::seed_from(1))
            .unwrap();
        let tap = new_tap();
        link.attach_tap(tap.clone());
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        link.send_frame(&frame);
        let records = tap.lock();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].direction, Direction::Tx);
        assert_eq!(records[1].direction, Direction::Rx);
        assert!(records[1].timestamp_micros >= records[0].timestamp_micros);
    }

    #[test]
    fn clock_advances_with_traffic() {
        let (mut air, addr) = setup();
        let clock = air.clock();
        let before = clock.now_micros();
        let mut link = air
            .connect(addr, LinkConfig::default(), FuzzRng::seed_from(1))
            .unwrap();
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        link.send_frame(&frame);
        assert!(clock.now_micros() > before);
    }

    #[test]
    fn total_loss_drops_every_frame() {
        let (mut air, addr) = setup();
        let mut link = air
            .connect(addr, LinkConfig::lossy(1.0), FuzzRng::seed_from(1))
            .unwrap();
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        for _ in 0..10 {
            assert!(link.send_frame(&frame).is_empty());
        }
        assert_eq!(link.frames_received(), 0);
        assert_eq!(link.frames_sent(), 10);
    }

    #[test]
    fn large_frame_survives_fragmentation() {
        let (mut air, addr) = setup();
        let mut link = air
            .connect(addr, LinkConfig::ideal(), FuzzRng::seed_from(1))
            .unwrap();
        let payload = vec![0x5A; 3000];
        let frame = L2capFrame::new(Cid::SIGNALING, payload);
        let responses = link.send_frame(&frame);
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0], frame);
    }

    #[test]
    fn links_get_distinct_slots_and_handles() {
        let (mut air, addr) = setup();
        let a = air
            .connect(addr, LinkConfig::ideal(), FuzzRng::seed_from(1))
            .unwrap();
        let b = air
            .connect(addr, LinkConfig::ideal(), FuzzRng::seed_from(2))
            .unwrap();
        assert_eq!(a.slot(), LinkSlot(0));
        assert_eq!(b.slot(), LinkSlot(1));
        assert_ne!(a.handle(), b.handle());
    }

    #[test]
    fn fault_duplication_delivers_twice() {
        let (mut air, addr) = setup();
        let config = LinkConfig::ideal().with_faults(FaultPlan::none().with_duplication(1.0));
        let mut link = air.connect(addr, config, FuzzRng::seed_from(1)).unwrap();
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        let responses = link.send_frame(&frame);
        assert_eq!(responses, vec![frame.clone(), frame]);
    }

    #[test]
    fn fault_loss_drops_every_frame() {
        let (mut air, addr) = setup();
        let config = LinkConfig::ideal().with_faults(FaultPlan::none().with_loss(1.0));
        let mut link = air.connect(addr, config, FuzzRng::seed_from(1)).unwrap();
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        for _ in 0..10 {
            assert!(link.send_frame(&frame).is_empty());
        }
        assert_eq!(link.frames_received(), 0);
    }

    #[test]
    fn fault_stall_makes_target_silent() {
        let (mut air, addr) = setup();
        let config = LinkConfig::ideal().with_faults(FaultPlan::none().with_stall(1.0, 60_000));
        let mut link = air.connect(addr, config, FuzzRng::seed_from(1)).unwrap();
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        for _ in 0..5 {
            assert!(link.send_frame(&frame).is_empty());
        }
        assert_eq!(link.frames_received(), 0);
    }

    #[test]
    fn fault_reorder_delivers_previous_frame_late() {
        let (mut air, addr) = setup();
        let config = LinkConfig::ideal().with_faults(FaultPlan::none().with_reorder(1.0));
        let mut link = air.connect(addr, config, FuzzRng::seed_from(1)).unwrap();
        let a = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        let b = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x02, 0x00, 0x00]);
        // First frame is held back...
        assert!(link.send_frame(&a).is_empty());
        // ...and arrives after the second: the echo answers B, then A.
        assert_eq!(link.send_frame(&b), vec![b, a]);
    }

    #[test]
    fn fault_corruption_mangles_payload_but_frame_survives() {
        let (mut air, addr) = setup();
        let config = LinkConfig::ideal().with_faults(FaultPlan::none().with_corruption(1.0));
        let mut link = air.connect(addr, config, FuzzRng::seed_from(1)).unwrap();
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x04, 0x00, 1, 2, 3, 4]);
        let responses = link.send_frame(&frame);
        assert_eq!(responses.len(), 1);
        assert_ne!(responses[0], frame);
        assert_eq!(responses[0].to_bytes().len(), frame.to_bytes().len());
    }

    #[test]
    fn fault_jitter_is_deterministic_and_slows_the_link() {
        let run = |jitter: u64| {
            let (mut air, addr) = setup();
            let config = LinkConfig::default().with_faults(FaultPlan::none().with_jitter(jitter));
            let mut link = air.connect(addr, config, FuzzRng::seed_from(3)).unwrap();
            let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
            for _ in 0..20 {
                link.send_frame(&frame);
            }
            link.clock().now_micros()
        };
        assert_eq!(run(700), run(700));
        assert!(run(700) > run(1));
    }

    #[test]
    fn faulty_schedule_replays_bit_for_bit() {
        let run = || {
            let (mut air, addr) = setup();
            let plan = FaultPlan::degraded(0.2, 0.2)
                .with_duplication(0.1)
                .with_reorder(0.2)
                .with_stall(0.05, 10_000)
                .with_jitter(300);
            let config = LinkConfig::default().with_faults(plan);
            let mut link = air.connect(addr, config, FuzzRng::seed_from(9)).unwrap();
            let tap = new_tap();
            link.attach_tap(tap.clone());
            for k in 0..40u8 {
                let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, k.max(1), 0x00, 0x00]);
                link.send_frame(&frame);
            }
            let records = tap.lock();
            records
                .iter()
                .map(|r| (r.direction, r.timestamp_micros, r.frame.to_bytes()))
                .collect::<Vec<_>>()
        };
        let first = run();
        assert_eq!(first, run());
        // The plan actually bites: some responses are missing or mutated.
        assert!(first.iter().filter(|r| r.0 == Direction::Rx).count() < 40);
    }

    #[test]
    fn watchdog_expiry_panics_with_typed_payload() {
        let (mut air, addr) = setup();
        let spec =
            LinkSpec::new(addr, LinkConfig::default(), FuzzRng::seed_from(1)).with_watchdog(10_000);
        let mut link = air.connect_spec(spec).unwrap();
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for _ in 0..100 {
                link.send_frame(&frame);
            }
        }));
        let payload = result.expect_err("watchdog must fire within 100 default-cost sends");
        let expired = payload
            .downcast_ref::<WatchdogExpired>()
            .expect("payload must be WatchdogExpired");
        assert!(expired.now_micros > expired.deadline_micros);
    }

    #[test]
    fn concurrent_links_interleave_deterministically() {
        // Two initiators on their own clocks and threads: the device sees
        // the same frame order on every run because the turnstile admits
        // exchanges by virtual time, not by OS scheduling.
        let run = || {
            let (mut air, addr) = setup();
            let taps: Vec<SharedTap> = (0..2).map(|_| new_tap()).collect();
            std::thread::scope(|scope| {
                for (i, tap) in taps.iter().enumerate() {
                    let mut link = air
                        .connect_spec(
                            LinkSpec::new(
                                addr,
                                LinkConfig::default(),
                                FuzzRng::seed_from(i as u64),
                            )
                            .with_clock(SimClock::new()),
                        )
                        .unwrap();
                    link.attach_tap(tap.clone());
                    scope.spawn(move || {
                        for k in 0..20u8 {
                            let frame =
                                L2capFrame::new(Cid::SIGNALING, vec![0x08, k.max(1), 0x00, 0x00]);
                            link.send_frame(&frame);
                        }
                        link.retire();
                    });
                }
            });
            assert_eq!(air.events_fired(), 40);
            taps.iter()
                .map(|tap| {
                    tap.lock()
                        .iter()
                        .map(|r| (r.timestamp_micros, r.frame.to_bytes()))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        let first = run();
        assert_eq!(first, run());
        assert_eq!(first[0].len(), 40);
        assert_eq!(first[1].len(), 40);
    }
}
