//! The fuzzer-side HCI dongle.
//!
//! [`HciDongle`] mirrors the "Bluetooth Dongle" box of the paper's workflow
//! (Fig. 5): it is the piece of hardware the fuzzer uses to scan for targets
//! and open ACL links.  Here it is a thin, owned façade over any
//! [`Medium`] implementation, carrying the default link configuration and
//! the RNG stream used for link-level randomness.

use btcore::{BdAddr, BtError, DeviceMeta, FuzzRng, SimClock};

use crate::link::LinkConfig;
use crate::medium::{LinkHandle, Medium};

/// A virtual Bluetooth Class-1 dongle.
pub struct HciDongle {
    medium: Box<dyn Medium>,
    clock: SimClock,
    link_config: LinkConfig,
    rng: FuzzRng,
}

impl HciDongle {
    /// Creates a dongle over `medium` with the default link configuration
    /// and a fixed RNG seed (use [`HciDongle::with_config`] to override
    /// both).
    pub fn new(medium: impl Medium + 'static, clock: SimClock) -> Self {
        HciDongle {
            medium: Box::new(medium),
            clock,
            link_config: LinkConfig::default(),
            rng: FuzzRng::seed_from(0x0d0e),
        }
    }

    /// Creates a dongle with an explicit link configuration and RNG.
    pub fn with_config(
        medium: impl Medium + 'static,
        clock: SimClock,
        config: LinkConfig,
        rng: FuzzRng,
    ) -> Self {
        HciDongle {
            medium: Box::new(medium),
            clock,
            link_config: config,
            rng,
        }
    }

    /// Scans for nearby devices (inquiry), returning their metadata.
    pub fn inquiry(&self) -> Vec<DeviceMeta> {
        self.medium.inquiry()
    }

    /// Opens an ACL link to the device with the given address.
    ///
    /// # Errors
    /// Propagates [`BtError`] from the medium (unknown device, service
    /// down).
    pub fn connect(&mut self, addr: BdAddr) -> Result<LinkHandle, BtError> {
        let rng = self.rng.fork(u64::from(addr.bytes()[5]));
        self.medium.connect(addr, self.link_config, rng)
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// The link configuration used for new connections.
    pub fn link_config(&self) -> LinkConfig {
        self.link_config
    }

    /// Mutable access to the underlying medium (e.g. to register more
    /// devices mid-experiment).
    pub fn medium_mut(&mut self) -> &mut dyn Medium {
        &mut *self.medium
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::EchoDevice;
    use crate::medium::EventMedium;
    use btcore::Cid;
    use l2cap::packet::L2capFrame;

    #[test]
    fn dongle_inquiry_and_connect() {
        let clock = SimClock::new();
        let mut air = EventMedium::new(clock.clone());
        let addr = BdAddr::new([1, 2, 3, 4, 5, 6]);
        air.register(Box::new(EchoDevice::new(addr)));

        let mut dongle = HciDongle::new(air, clock);
        let found = dongle.inquiry();
        assert_eq!(found.len(), 1);

        let mut link = dongle.connect(addr).unwrap();
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        assert_eq!(link.send_frame(&frame).len(), 1);
    }

    #[test]
    fn connect_to_unknown_address_errors() {
        let clock = SimClock::new();
        let air = EventMedium::new(clock.clone());
        let mut dongle = HciDongle::new(air, clock);
        assert!(dongle.connect(BdAddr::new([0; 6])).is_err());
    }

    #[test]
    fn with_config_uses_custom_link_config() {
        let clock = SimClock::new();
        let air = EventMedium::new(clock.clone());
        let dongle = HciDongle::with_config(air, clock, LinkConfig::ideal(), FuzzRng::seed_from(7));
        assert_eq!(dongle.link_config(), LinkConfig::ideal());
    }
}
