//! Coverage-guided stateful mutation: the feedback loop the paper left open.
//!
//! L2Fuzz mutates from a fixed field dictionary and never looks back at what
//! a mutated packet achieved.  The sniffer already computes per-trace state
//! coverage ([`sniffer::StateCoverage`]), and the protocol model gives a
//! minimal witness prelude per reachable state
//! ([`analysis::fuzz_plans`]) — this crate closes the loop between them:
//!
//! * [`FeedbackCorpus`] retains every mutated packet whose observed outcome
//!   reached a *new* `(state-coverage signature, response class)` pair, in
//!   wire form together with the state it was sent from, so it can seed
//!   later mutations.
//! * [`EnergySchedule`] divides each round's transmission budget across the
//!   reachable states, weighting by under-visitation and by witness/prelude
//!   depth, so deep states get proportionally more energy.
//! * [`FeedbackFuzzer`] is a drop-in [`l2fuzz::Fuzzer`] that splices corpus
//!   entries with dictionary mutation (splice / havoc /
//!   resend-with-field-mutation), selectable on any campaign via
//!   [`FeedbackCampaignExt::feedback`].
//! * [`CorpusHub`] pools novelty across the units of a
//!   [`l2fuzz::campaign::SeedSweepExecutor`] without breaking per-seed
//!   isolation: units publish as they finish and the hub merges in canonical
//!   seed order afterwards, so sweeps replay bit-for-bit at any parallelism.
//!
//! # Determinism
//!
//! Every random decision — dictionary draws, corpus-operator selection,
//! splice cut points — derives from the campaign's per-target seed stream
//! (domain-separated under the `0xFEED` label), and cross-seed sharing is
//! publish-only during a run.  A feedback campaign therefore replays
//! bit-for-bit serial or sharded, at any thread count, like every other
//! campaign in this repository; `tests/feedback_fuzzing.rs` enforces it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod fuzzer;
pub mod hub;
pub mod schedule;

pub use corpus::{CorpusEntry, FeedbackCorpus, NoveltyKey, ResponseClass};
pub use fuzzer::{FeedbackConfig, FeedbackFuzzer};
pub use hub::CorpusHub;
pub use schedule::{EnergyAllocation, EnergySchedule};

use l2fuzz::campaign::CampaignBuilder;
use l2fuzz::Fuzzer;

/// Extension trait adding the feedback mode to the campaign builder.
///
/// Lives here rather than on [`CampaignBuilder`] itself because the core
/// crate cannot depend on this one; `use feedback::FeedbackCampaignExt;`
/// makes `Campaign::builder().feedback(config)` available.
pub trait FeedbackCampaignExt {
    /// Runs the campaign with the coverage-guided [`FeedbackFuzzer`]: every
    /// initiator gets a fresh fuzzer instance seeded from `config` (and from
    /// `config`'s seed corpus, when one is attached).
    fn feedback(self, config: FeedbackConfig) -> CampaignBuilder;
}

impl FeedbackCampaignExt for CampaignBuilder {
    fn feedback(self, config: FeedbackConfig) -> CampaignBuilder {
        self.fuzzer(move || Box::new(FeedbackFuzzer::new(config.clone())) as Box<dyn Fuzzer>)
    }
}
