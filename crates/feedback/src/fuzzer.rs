//! The coverage-guided fuzzer: the session engine re-run under feedback.
//!
//! [`FeedbackFuzzer`] keeps the paper's four phases (scan → guide → mutate →
//! detect) but replaces the fixed per-state packet count with an
//! [`EnergySchedule`] and mixes the dictionary mutator with corpus replay:
//! each test packet is either a fresh dictionary mutation or one of the
//! splice / havoc / resend-with-field-mutation operators applied to a
//! retained [`CorpusEntry`] of the current state.  Every random decision
//! derives from the campaign's per-target seed stream (domain label
//! `0xFEED`), so feedback campaigns replay bit-for-bit at any executor
//! parallelism.

use std::collections::BTreeMap;

use btcore::{FuzzRng, SimClock, TargetOracle};
use hci::link::Direction;
use hci::medium::LinkHandle;
use l2cap::code::CommandCode;
use l2cap::jobs::job_of;
use l2cap::packet::SignalingPacket;
use l2cap::state::ChannelState;
use l2fuzz::config::FuzzConfig;
use l2fuzz::detector::{DetectionVerdict, VulnerabilityDetector};
use l2fuzz::fuzzer::{FuzzCtx, Fuzzer};
use l2fuzz::guide::{ChannelContext, StateGuide};
use l2fuzz::mutator::CoreFieldMutator;
use l2fuzz::queue::{PacketKind, PacketQueue};
use l2fuzz::report::{FuzzReport, VulnerabilityFinding};
use l2fuzz::retry::RetryPolicy;
use l2fuzz::scanner::TargetScanner;
use sniffer::coverage::CoverageBuilder;

use crate::corpus::{CorpusEntry, FeedbackCorpus, NoveltyKey, ResponseClass};
use crate::hub::CorpusHub;
use crate::schedule::EnergySchedule;

/// Domain-separation label for the feedback round-seed stream (disjoint from
/// the session engine's `0x4C32` stream, so a feedback campaign and a
/// dictionary campaign under the same campaign seed draw independent bytes).
const FEEDBACK_DOMAIN: u64 = 0xFEED;

/// Configuration of a feedback campaign.
#[derive(Clone)]
pub struct FeedbackConfig {
    /// The underlying session configuration (mutation switches, budgets,
    /// seed).  `max_packets` caps each unit exactly as in dictionary mode.
    pub base: FuzzConfig,
    /// Rounds to run per unit before giving up on a hardened target.
    pub max_rounds: usize,
    /// Malformed-packet pool the energy scheduler divides per round.
    pub round_budget: u64,
    /// Probability that a test packet replays a corpus entry (when the
    /// current state has any) instead of drawing from the dictionary.
    pub corpus_ratio: f64,
    /// Entries every unit starts from (e.g. a previous sweep's merged
    /// corpus).
    pub seed_corpus: FeedbackCorpus,
    /// When attached, each unit publishes its finished corpus here under its
    /// per-target seed (see [`CorpusHub`] for the determinism contract).
    pub hub: Option<CorpusHub>,
}

impl Default for FeedbackConfig {
    /// Defaults tuned on the seeded extended-profile targets: short rounds
    /// re-plan the schedule often enough for visit feedback to bite, eight
    /// rounds give hardened targets a fair total budget, and a 30% replay
    /// ratio keeps the dictionary exploring while the corpus exploits.
    fn default() -> Self {
        FeedbackConfig {
            base: FuzzConfig::default(),
            max_rounds: 8,
            round_budget: 300,
            corpus_ratio: 0.3,
            seed_corpus: FeedbackCorpus::new(),
            hub: None,
        }
    }
}

impl FeedbackConfig {
    /// Replaces the underlying session configuration.
    pub fn with_base(mut self, base: FuzzConfig) -> Self {
        self.base = base;
        self
    }

    /// Sets the per-unit round cap.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds.max(1);
        self
    }

    /// Sets the per-round energy pool.
    pub fn with_round_budget(mut self, packets: u64) -> Self {
        self.round_budget = packets.max(1);
        self
    }

    /// Attaches a cross-seed corpus hub.
    pub fn with_hub(mut self, hub: CorpusHub) -> Self {
        self.hub = Some(hub);
        self
    }

    /// Seeds every unit's corpus (second-generation runs replaying a merged
    /// sweep corpus).
    pub fn with_seed_corpus(mut self, corpus: FeedbackCorpus) -> Self {
        self.seed_corpus = corpus;
        self
    }
}

/// The coverage-guided [`Fuzzer`].  Construct via [`FeedbackFuzzer::new`] or
/// select on a campaign with
/// [`crate::FeedbackCampaignExt::feedback`].
pub struct FeedbackFuzzer {
    config: FeedbackConfig,
    corpus: FeedbackCorpus,
    visits: BTreeMap<ChannelState, u64>,
}

impl FeedbackFuzzer {
    /// Creates a fuzzer starting from the configuration's seed corpus.
    pub fn new(config: FeedbackConfig) -> FeedbackFuzzer {
        FeedbackFuzzer {
            corpus: config.seed_corpus.clone(),
            visits: BTreeMap::new(),
            config,
        }
    }

    /// The corpus accumulated so far (the seed corpus plus everything this
    /// fuzzer retained).
    pub fn corpus(&self) -> &FeedbackCorpus {
        &self.corpus
    }
}

impl Fuzzer for FeedbackFuzzer {
    fn name(&self) -> &'static str {
        "L2Fuzz+feedback"
    }

    fn fuzz(&mut self, ctx: &mut FuzzCtx<'_>) -> Option<FuzzReport> {
        let mut merged: Option<FuzzReport> = None;
        let mut round = 0u64;
        while (round as usize) < self.config.max_rounds {
            let remaining = ctx.remaining();
            if remaining == Some(0) {
                break;
            }
            let mut config = self.config.base.clone();
            // Domain-separated round seed, mirroring the dictionary tool's
            // round-seed derivation but on an independent stream.
            config.seed = ctx
                .stream_seed(self.config.base.seed ^ FEEDBACK_DOMAIN)
                .wrapping_add(round);
            if let Some(remaining) = remaining {
                config.max_packets = if config.max_packets == 0 {
                    remaining as usize
                } else {
                    config.max_packets.min(remaining as usize)
                };
            }
            let before = ctx.link.frames_sent();
            let round_start_secs = ctx.clock.now().as_secs();
            let meta = ctx.meta.clone();
            let clock = ctx.clock.clone();
            let retry = ctx.retry;
            let round_budget = self.config.round_budget;
            let corpus_ratio = self.config.corpus_ratio;
            let corpus = &mut self.corpus;
            let visits = &mut self.visits;
            let (link, oracle) = ctx.link_and_oracle();
            let mut round_ctx = RoundCtx {
                config,
                clock,
                retry,
                round_budget,
                corpus_ratio,
                corpus,
                visits,
            };
            let mut report = round_ctx.run(link, meta, oracle);
            report.elapsed_secs = ctx.clock.now().as_secs();
            for finding in &mut report.findings {
                finding.elapsed_secs += round_start_secs;
            }
            let vulnerable = report.vulnerable();
            let stalled = ctx.link.frames_sent() == before;
            match merged {
                None => merged = Some(report),
                Some(ref mut total) => {
                    total.packets_sent += report.packets_sent;
                    total.malformed_sent += report.malformed_sent;
                    for state in report.states_tested {
                        if !total.states_tested.contains(&state) {
                            total.states_tested.push(state);
                        }
                    }
                    total.findings.extend(report.findings);
                    total.elapsed_secs = report.elapsed_secs;
                }
            }
            round += 1;
            if vulnerable && self.config.base.stop_at_first_vulnerability {
                break;
            }
            if stalled {
                break;
            }
        }
        if let Some(hub) = &self.config.hub {
            hub.publish(ctx.seed, &self.corpus);
        }
        merged
    }
}

/// One feedback round: the four-phase session loop under an energy schedule,
/// with corpus retention and replay.
struct RoundCtx<'a> {
    config: FuzzConfig,
    clock: SimClock,
    retry: RetryPolicy,
    round_budget: u64,
    corpus_ratio: f64,
    corpus: &'a mut FeedbackCorpus,
    visits: &'a mut BTreeMap<ChannelState, u64>,
}

impl RoundCtx<'_> {
    fn run(
        &mut self,
        link: &mut LinkHandle,
        meta: btcore::DeviceMeta,
        mut oracle: Option<&mut dyn TargetOracle>,
    ) -> FuzzReport {
        let started = self.clock.now().as_secs();
        let link_type = meta.link_type;
        let mut rng = FuzzRng::seed_from(self.config.seed);
        let mut scanner = TargetScanner::new();
        let mut guide = StateGuide::new().with_retry(self.retry);
        let mut mutator = CoreFieldMutator::with_options(
            rng.fork(1),
            self.config.core_fields_only,
            self.config.append_garbage,
            self.config.max_garbage_len,
        );
        mutator.set_link(link_type);
        // Feedback mode always mutates configuration options on classic
        // links: the retransmission-mode surface lives behind the deep
        // CONFIG/OPEN parks the scheduler favours, exactly where corpus
        // replay pays off.
        mutator.set_config_option_mutation(self.config.mutate_config_options || !link_type.is_le());
        let mut pick_rng = rng.fork(2);
        let mut detector = VulnerabilityDetector::new_on(link_type).with_retry(self.retry);
        let mut queue = PacketQueue::new();
        let mut coverage = CoverageBuilder::for_link(link_type);

        let scan = scanner.scan(meta.clone(), link);
        let psm = scan.chosen_port.unwrap_or(btcore::Psm::SDP);

        let mut report = FuzzReport {
            fuzzer: "L2Fuzz+feedback".to_owned(),
            target: meta,
            scan,
            states_tested: Vec::new(),
            packets_sent: 0,
            malformed_sent: 0,
            findings: Vec::new(),
            elapsed_secs: 0,
        };

        let budget = if self.config.max_packets > 0 {
            self.round_budget.min(self.config.max_packets as u64)
        } else {
            self.round_budget
        };
        let schedule = EnergySchedule::plan(link_type, self.visits, budget);

        'states: for alloc in schedule.allocations() {
            let state = alloc.state;
            // Count the attempt (not the success): a state whose prelude
            // keeps failing must not hoard energy forever.
            *self.visits.entry(state).or_insert(0) += 1;
            let ctx = match link_type {
                btcore::LinkType::BrEdr => guide.drive_to(link, psm, state),
                btcore::LinkType::Le => guide.drive_to_le(link, psm, state),
            };
            let ctx = match ctx {
                Some(ctx) => ctx,
                None => continue,
            };
            report.states_tested.push(state);
            let job = job_of(state);
            let commands = job.generous_valid_commands_on(link_type);

            for _ in 0..alloc.packets {
                if self.config.max_packets > 0
                    && queue.sent() + guide.transition_packets_sent() + detector.pings_sent()
                        >= self.config.max_packets as u64
                {
                    break 'states;
                }
                let identifier = guide.next_identifier();
                let packet = next_packet(
                    self.corpus,
                    &mut mutator,
                    &mut pick_rng,
                    self.corpus_ratio,
                    &commands,
                    state,
                    link_type,
                    &ctx,
                    identifier,
                );
                coverage.saw_tx_signaling();
                coverage.observe(Direction::Tx, &packet);
                let outcome = queue.send_now(link, &packet, PacketKind::Malformed);
                report.malformed_sent += 1;
                for response in &outcome.responses {
                    coverage.observe(
                        Direction::Rx,
                        &SignalingPacket::new(packet.identifier, response.clone()),
                    );
                }
                let key = NoveltyKey {
                    signature: coverage.signature_snapshot(),
                    class: ResponseClass::of(&outcome),
                };
                if !self.corpus.contains(key) {
                    self.corpus.consider(CorpusEntry {
                        state,
                        link: link_type,
                        wire: packet.to_bytes(),
                        key,
                    });
                }
                let verdict = match oracle {
                    Some(ref mut o) => detector.check(link, Some(&mut **o), outcome.silent),
                    None => detector.check(link, None, outcome.silent),
                };
                if let DetectionVerdict::Vulnerable(evidence) = verdict {
                    report.findings.push(VulnerabilityFinding {
                        state,
                        job,
                        command: CommandCode::from_u8(packet.code)
                            .unwrap_or(CommandCode::CommandReject),
                        packet_hex: btcore::codec::hex_dump(&packet.to_bytes()),
                        evidence,
                        elapsed_secs: self.clock.now().as_secs().saturating_sub(started),
                    });
                    if self.config.stop_at_first_vulnerability {
                        break 'states;
                    }
                }
            }

            guide.disconnect(link, ctx);
        }

        report.packets_sent =
            queue.sent() + guide.transition_packets_sent() + detector.pings_sent();
        report.elapsed_secs = self.clock.now().as_secs().saturating_sub(started);
        report
    }
}

/// Draws the next test packet: a corpus replay (resend / havoc / splice)
/// with probability `corpus_ratio` when the current state has retained
/// entries, a dictionary mutation otherwise.
#[allow(clippy::too_many_arguments)]
fn next_packet(
    corpus: &FeedbackCorpus,
    mutator: &mut CoreFieldMutator,
    rng: &mut FuzzRng,
    corpus_ratio: f64,
    commands: &[CommandCode],
    state: ChannelState,
    link: btcore::LinkType,
    ctx: &ChannelContext,
    identifier: btcore::Identifier,
) -> SignalingPacket {
    let here: Vec<&CorpusEntry> = corpus.entries_for(state, link).collect();
    if !here.is_empty() && rng.chance(corpus_ratio) {
        let base = *rng.pick(&here);
        match rng.range_usize(0, 2) {
            0 => mutator.resend_with_field_mutation(&base.wire, ctx, identifier),
            1 => mutator.havoc(&base.wire, identifier),
            _ => {
                // Splice against any retained packet of this link, not just
                // this state — crossing parks is where splice earns its keep.
                let partners: Vec<&CorpusEntry> =
                    corpus.entries().iter().filter(|e| e.link == link).collect();
                let partner = *rng.pick(&partners);
                mutator.splice(&base.wire, &partner.wire, identifier)
            }
        }
    } else {
        let code = *rng.pick(commands);
        mutator.mutate(code, ctx, identifier)
    }
}
