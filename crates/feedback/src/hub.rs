//! Cross-seed corpus pooling for sweep campaigns.
//!
//! The contract (documented on [`l2fuzz::campaign::SeedSweepExecutor`]):
//! during a sweep each `(target, seed)` unit is a pure function of its pair —
//! it *publishes* its finished corpus into the hub under its own seed and
//! never reads another unit's.  After the executor returns, [`CorpusHub::merged`]
//! folds the published corpora in ascending seed order, which is independent
//! of the work-index scheduling that completed them — so an 8-seed sweep
//! pools novelty while staying bit-for-bit replayable at any thread count.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::corpus::FeedbackCorpus;

/// A shared, publish-only accumulator of per-seed corpora.
///
/// Cloning is cheap and yields a handle to the same accumulator; the
/// campaign spawner closure clones one handle per fuzzer instance.
#[derive(Clone, Default)]
pub struct CorpusHub {
    inner: Arc<Mutex<BTreeMap<u64, FeedbackCorpus>>>,
}

impl CorpusHub {
    /// An empty hub.
    pub fn new() -> CorpusHub {
        CorpusHub::default()
    }

    /// Publishes one unit's corpus under its seed.  Publishing twice under
    /// the same seed (several initiators of one unit, or back-to-back
    /// campaigns) merges into the existing slot.
    pub fn publish(&self, seed: u64, corpus: &FeedbackCorpus) {
        let mut inner = self.inner.lock();
        inner.entry(seed).or_default().merge(corpus);
    }

    /// The seeds published so far, ascending.
    pub fn seeds(&self) -> Vec<u64> {
        self.inner.lock().keys().copied().collect()
    }

    /// Number of published slots.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Returns `true` if nothing has been published.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Folds every published corpus in ascending seed order into one merged
    /// corpus.  The fold order is canonical — a function of the seeds, not
    /// of which worker thread finished first — so the merged corpus is
    /// schedule-independent.
    pub fn merged(&self) -> FeedbackCorpus {
        let inner = self.inner.lock();
        let mut merged = FeedbackCorpus::new();
        for corpus in inner.values() {
            merged.merge(corpus);
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{CorpusEntry, NoveltyKey, ResponseClass};
    use btcore::LinkType;
    use l2cap::state::ChannelState;

    fn corpus_with(signature: u32) -> FeedbackCorpus {
        let mut corpus = FeedbackCorpus::new();
        corpus.consider(CorpusEntry {
            state: ChannelState::Closed,
            link: LinkType::BrEdr,
            wire: vec![0x02, 0x01, 0x00, 0x00],
            key: NoveltyKey {
                signature,
                class: ResponseClass::Rejected,
            },
        });
        corpus
    }

    #[test]
    fn merged_is_independent_of_publish_order() {
        let forward = CorpusHub::new();
        forward.publish(1, &corpus_with(1));
        forward.publish(2, &corpus_with(2));
        forward.publish(3, &corpus_with(1));
        let backward = CorpusHub::new();
        backward.publish(3, &corpus_with(1));
        backward.publish(1, &corpus_with(1));
        backward.publish(2, &corpus_with(2));
        assert_eq!(forward.merged(), backward.merged());
        assert_eq!(forward.merged().len(), 2, "one entry per distinct key");
        assert_eq!(forward.seeds(), vec![1, 2, 3]);
    }

    #[test]
    fn republishing_merges_into_the_same_slot() {
        let hub = CorpusHub::new();
        hub.publish(7, &corpus_with(1));
        hub.publish(7, &corpus_with(2));
        assert_eq!(hub.len(), 1);
        assert_eq!(hub.merged().len(), 2);
    }
}
