//! The feedback corpus: mutated packets retained for reaching novelty.
//!
//! A packet earns its place by producing an outcome nobody produced before:
//! a state-coverage signature (the running [`sniffer::coverage::CoverageBuilder`]
//! bitmask after the packet's exchange) × response-class pair that is not in
//! the corpus yet.  Retained entries carry their full wire form plus the
//! state they were sent from, so the fuzzer can replay them as mutation
//! seeds from the matching park.

use btcore::LinkType;
use l2cap::state::ChannelState;
use l2fuzz::queue::SendOutcome;
use serde::{Deserialize, Serialize};
use sniffer::classify::is_rejection_command;

/// Coarse classification of what a target answered to one test packet.
///
/// Together with the coverage signature this forms the novelty key: a packet
/// that flips a state machine into new territory *or* provokes an answer
/// shape nobody provoked from that territory before is worth keeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResponseClass {
    /// No answer at all.
    Silent,
    /// At least one answer was an L2CAP Command Reject.
    Rejected,
    /// Answered with a refusal result (connection refused, configuration
    /// failed, move refused, non-zero LE result word).
    Refused,
    /// Answered, and no answer was a rejection.
    Answered,
}

serde_json::stream_unit_enum!(ResponseClass);
serde_json::stream_unit_enum_de!(ResponseClass);

impl ResponseClass {
    /// Classifies one transmission outcome.
    pub fn of(outcome: &SendOutcome) -> ResponseClass {
        if outcome.silent {
            ResponseClass::Silent
        } else if outcome.rejected {
            ResponseClass::Rejected
        } else if outcome.responses.iter().any(is_rejection_command) {
            ResponseClass::Refused
        } else {
            ResponseClass::Answered
        }
    }
}

/// The dedup key novelty is measured by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct NoveltyKey {
    /// State-coverage bitmask observed after the packet's exchange (one bit
    /// per [`ChannelState::ALL`] index, as
    /// [`sniffer::StateCoverage::signature`] packs it).
    pub signature: u32,
    /// How the target answered.
    pub class: ResponseClass,
}

impl serde_json::StreamSerialize for NoveltyKey {
    fn stream(&self, w: &mut serde_json::JsonStreamWriter) {
        w.begin_object()
            .field("signature", &self.signature)
            .field("class", &self.class)
            .end_object();
    }
}

impl serde_json::StreamDeserialize for NoveltyKey {
    fn stream_from(r: &mut serde_json::JsonStreamReader<'_>) -> Result<Self, serde_json::Error> {
        r.begin_object()?;
        let signature = r.key("signature")?.value()?;
        let class = r.key("class")?.value()?;
        r.end_object()?;
        Ok(NoveltyKey { signature, class })
    }
}

/// One retained packet: its wire form plus the state it was sent from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// The state the packet was sent from (the park to replay it from).
    pub state: ChannelState,
    /// The transport it was sent over.
    pub link: LinkType,
    /// The packet's complete wire form ([`l2cap::packet::SignalingPacket::to_bytes`]:
    /// code, identifier, little-endian declared length, data).
    pub wire: Vec<u8>,
    /// The novelty that earned the entry its place.
    pub key: NoveltyKey,
}

impl serde_json::StreamSerialize for CorpusEntry {
    fn stream(&self, w: &mut serde_json::JsonStreamWriter) {
        w.begin_object()
            .field("state", &self.state)
            .field("link", &self.link)
            .field("wire", &self.wire)
            .field("key", &self.key)
            .end_object();
    }
}

impl serde_json::StreamDeserialize for CorpusEntry {
    fn stream_from(r: &mut serde_json::JsonStreamReader<'_>) -> Result<Self, serde_json::Error> {
        r.begin_object()?;
        let state = r.key("state")?.value()?;
        let link = r.key("link")?.value()?;
        let wire = r.key("wire")?.value()?;
        let key = r.key("key")?.value()?;
        r.end_object()?;
        Ok(CorpusEntry {
            state,
            link,
            wire,
            key,
        })
    }
}

/// The coverage-guided corpus: entries in retention order, one per distinct
/// novelty key.
///
/// The corpus is bounded by construction — there are at most
/// 2^19 × 4 distinct keys, and in practice a campaign retains a few dozen —
/// so membership is a linear scan over the entries themselves rather than a
/// side table that serialization would have to keep consistent.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FeedbackCorpus {
    entries: Vec<CorpusEntry>,
}

impl FeedbackCorpus {
    /// An empty corpus.
    pub fn new() -> FeedbackCorpus {
        FeedbackCorpus::default()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The retained entries, in retention order.
    pub fn entries(&self) -> &[CorpusEntry] {
        &self.entries
    }

    /// Returns `true` if the novelty key is already represented.
    pub fn contains(&self, key: NoveltyKey) -> bool {
        self.entries.iter().any(|e| e.key == key)
    }

    /// Offers an entry: it is retained iff its novelty key is new.  Returns
    /// `true` when the entry was kept.
    pub fn consider(&mut self, entry: CorpusEntry) -> bool {
        if self.contains(entry.key) {
            return false;
        }
        self.entries.push(entry);
        true
    }

    /// Merges another corpus into this one, entry by entry in the other's
    /// retention order; duplicated novelty keys keep this corpus's entry.
    /// Returns how many entries were newly retained.
    pub fn merge(&mut self, other: &FeedbackCorpus) -> usize {
        other
            .entries
            .iter()
            .filter(|e| self.consider((*e).clone()))
            .count()
    }

    /// The retained entries sent from `state` over `link` — the replay seeds
    /// available at that park.
    pub fn entries_for(
        &self,
        state: ChannelState,
        link: LinkType,
    ) -> impl Iterator<Item = &CorpusEntry> {
        self.entries
            .iter()
            .filter(move |e| e.state == state && e.link == link)
    }

    /// Serializes the corpus as pretty-printed JSON through the streaming
    /// writer (byte-identical round trip with [`FeedbackCorpus::from_json`]).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty_streamed(self)
    }

    /// Parses a corpus back from JSON through the streaming reader.
    ///
    /// # Errors
    /// Returns a `serde_json::Error` if the input is not a valid corpus.
    pub fn from_json(json: &str) -> Result<FeedbackCorpus, serde_json::Error> {
        serde_json::from_str_streamed(json)
    }
}

impl serde_json::StreamSerialize for FeedbackCorpus {
    fn stream(&self, w: &mut serde_json::JsonStreamWriter) {
        w.begin_object()
            .field("entries", &self.entries)
            .end_object();
    }
}

impl serde_json::StreamDeserialize for FeedbackCorpus {
    fn stream_from(r: &mut serde_json::JsonStreamReader<'_>) -> Result<Self, serde_json::Error> {
        r.begin_object()?;
        let entries = r.key("entries")?.value()?;
        r.end_object()?;
        Ok(FeedbackCorpus { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(state: ChannelState, signature: u32, class: ResponseClass) -> CorpusEntry {
        CorpusEntry {
            state,
            link: LinkType::BrEdr,
            wire: vec![0x02, 0x01, 0x04, 0x00, 0x01, 0x01, 0x40, 0x00],
            key: NoveltyKey { signature, class },
        }
    }

    #[test]
    fn consider_retains_only_new_keys() {
        let mut corpus = FeedbackCorpus::new();
        assert!(corpus.consider(entry(ChannelState::Closed, 1, ResponseClass::Rejected)));
        assert!(!corpus.consider(entry(ChannelState::Open, 1, ResponseClass::Rejected)));
        assert!(corpus.consider(entry(ChannelState::Closed, 1, ResponseClass::Silent)));
        assert!(corpus.consider(entry(ChannelState::Closed, 3, ResponseClass::Rejected)));
        assert_eq!(corpus.len(), 3);
    }

    #[test]
    fn entries_for_filters_by_state_and_link() {
        let mut corpus = FeedbackCorpus::new();
        corpus.consider(entry(ChannelState::Closed, 1, ResponseClass::Rejected));
        corpus.consider(entry(ChannelState::Open, 2, ResponseClass::Rejected));
        assert_eq!(
            corpus
                .entries_for(ChannelState::Open, LinkType::BrEdr)
                .count(),
            1
        );
        assert_eq!(
            corpus.entries_for(ChannelState::Open, LinkType::Le).count(),
            0
        );
    }

    #[test]
    fn merge_is_idempotent_and_counts_new_entries() {
        let mut a = FeedbackCorpus::new();
        a.consider(entry(ChannelState::Closed, 1, ResponseClass::Rejected));
        let mut b = FeedbackCorpus::new();
        b.consider(entry(ChannelState::Closed, 1, ResponseClass::Rejected));
        b.consider(entry(ChannelState::Open, 2, ResponseClass::Silent));
        assert_eq!(a.merge(&b), 1);
        assert_eq!(a.merge(&b), 0);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let mut corpus = FeedbackCorpus::new();
        corpus.consider(entry(ChannelState::Closed, 1, ResponseClass::Rejected));
        corpus.consider(entry(ChannelState::Open, 0x5F, ResponseClass::Answered));
        let json = corpus.to_json();
        let back = FeedbackCorpus::from_json(&json).unwrap();
        assert_eq!(back, corpus);
        assert_eq!(back.to_json(), json);
        // The empty corpus round-trips too.
        let empty = FeedbackCorpus::new();
        assert_eq!(FeedbackCorpus::from_json(&empty.to_json()).unwrap(), empty);
    }
}
