//! Energy scheduling: dividing a round's budget across the reachable states.
//!
//! Two signals rank a state ("A Survey of Protocol Fuzzing" catalogues both
//! as the policies that matter): *under-visitation* — states fuzzed less so
//! far deserve more energy — and *depth* — states behind a long witness
//! prelude (from [`analysis::fuzz_plans`]) are expensive to reach, so once
//! reached they should be exercised proportionally harder.  The weight is
//! plain integer arithmetic and the division uses largest-remainder
//! apportionment with canonical-order tie-breaks, so a schedule is a pure
//! function of `(link, visit counts, budget)` — no floating point, no
//! iteration-order dependence.

use std::collections::BTreeMap;

use btcore::LinkType;
use l2cap::state::ChannelState;

/// Fixed-point scale for the integer weights.
const SCALE: u64 = 1_000;

/// One state's share of a round's transmission budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnergyAllocation {
    /// The state to park in.
    pub state: ChannelState,
    /// Malformed packets to spend there this round.
    pub packets: u64,
}

impl serde_json::StreamSerialize for EnergyAllocation {
    fn stream(&self, w: &mut serde_json::JsonStreamWriter) {
        w.begin_object()
            .field("state", &self.state)
            .field("packets", &self.packets)
            .end_object();
    }
}

impl serde_json::StreamDeserialize for EnergyAllocation {
    fn stream_from(r: &mut serde_json::JsonStreamReader<'_>) -> Result<Self, serde_json::Error> {
        r.begin_object()?;
        let state = r.key("state")?.value()?;
        let packets = r.key("packets")?.value()?;
        r.end_object()?;
        Ok(EnergyAllocation { state, packets })
    }
}

/// A deterministic division of one round's packet budget across the states
/// reachable on a link, in canonical state order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EnergySchedule {
    allocations: Vec<EnergyAllocation>,
}

impl EnergySchedule {
    /// Plans one round: `visits` counts how often each state has been fuzzed
    /// so far (absent = never), `budget` is the round's malformed-packet
    /// pool.  The returned allocations are in canonical state order (the
    /// session engine's own walk order); the energy weighting shapes how
    /// much each state gets, not when it is visited.
    pub fn plan(
        link: LinkType,
        visits: &BTreeMap<ChannelState, u64>,
        budget: u64,
    ) -> EnergySchedule {
        let states: &[ChannelState] = match link {
            LinkType::BrEdr => &ChannelState::REACHABLE_FROM_INITIATOR,
            LinkType::Le => &ChannelState::REACHABLE_FROM_INITIATOR_LE,
        };
        let plans = analysis::fuzz_plans(link);
        // weight = (1 + prelude_len) * SCALE / (1 + visits): depth in the
        // numerator, visitation in the denominator.
        let weights: Vec<u64> = states
            .iter()
            .map(|s| {
                let prelude = plans.get(s).map(|p| p.prelude.len() as u64).unwrap_or(0);
                let visited = visits.get(s).copied().unwrap_or(0);
                (1 + prelude) * SCALE / (1 + visited)
            })
            .collect();
        let total: u128 = weights.iter().map(|w| u128::from(*w)).sum();
        if total == 0 || budget == 0 {
            return EnergySchedule::default();
        }
        // Largest-remainder apportionment: floor shares first, then one
        // extra packet each to the largest remainders (canonical order
        // breaking ties), so the shares sum exactly to the budget.
        let mut allocations: Vec<(usize, u64, u128)> = states
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let exact = u128::from(budget) * u128::from(weights[i]);
                (i, (exact / total) as u64, exact % total)
            })
            .collect();
        let assigned: u64 = allocations.iter().map(|(_, p, _)| *p).sum();
        let mut leftover = budget - assigned;
        let mut by_remainder: Vec<usize> = (0..allocations.len()).collect();
        by_remainder.sort_by(|a, b| allocations[*b].2.cmp(&allocations[*a].2).then(a.cmp(b)));
        for i in by_remainder {
            if leftover == 0 {
                break;
            }
            allocations[i].1 += 1;
            leftover -= 1;
        }
        // Present in canonical state order — the session engine's own walk
        // order, so shallow states are still exercised before the guide
        // spends transitions parking deep (the energy *split*, not the walk
        // order, is what favours depth).  Drop states that got nothing.
        allocations.sort_by_key(|a| a.0);
        EnergySchedule {
            allocations: allocations
                .into_iter()
                .filter(|(_, packets, _)| *packets > 0)
                .map(|(i, packets, _)| EnergyAllocation {
                    state: states[i],
                    packets,
                })
                .collect(),
        }
    }

    /// The planned allocations, in canonical state order.
    pub fn allocations(&self) -> &[EnergyAllocation] {
        &self.allocations
    }

    /// Total packets across all allocations (equals the planned budget).
    pub fn total(&self) -> u64 {
        self.allocations.iter().map(|a| a.packets).sum()
    }
}

impl serde_json::StreamSerialize for EnergySchedule {
    fn stream(&self, w: &mut serde_json::JsonStreamWriter) {
        w.begin_object()
            .field("allocations", &self.allocations)
            .end_object();
    }
}

impl serde_json::StreamDeserialize for EnergySchedule {
    fn stream_from(r: &mut serde_json::JsonStreamReader<'_>) -> Result<Self, serde_json::Error> {
        r.begin_object()?;
        let allocations = r.key("allocations")?.value()?;
        r.end_object()?;
        Ok(EnergySchedule { allocations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_spends_the_whole_budget() {
        let visits = BTreeMap::new();
        for budget in [1, 13, 100, 997] {
            let schedule = EnergySchedule::plan(LinkType::BrEdr, &visits, budget);
            assert_eq!(schedule.total(), budget, "budget {budget}");
        }
        let schedule = EnergySchedule::plan(LinkType::Le, &visits, 50);
        assert_eq!(schedule.total(), 50);
    }

    #[test]
    fn deep_states_outrank_shallow_ones_when_unvisited() {
        let schedule = EnergySchedule::plan(LinkType::BrEdr, &BTreeMap::new(), 1000);
        let packets_for = |state: ChannelState| {
            schedule
                .allocations()
                .iter()
                .find(|a| a.state == state)
                .map(|a| a.packets)
                .unwrap_or(0)
        };
        // OPEN sits behind a three-command prelude, CLOSED behind none.
        assert!(packets_for(ChannelState::Open) > packets_for(ChannelState::Closed));
        // The walk order stays canonical even though the split favours depth.
        assert_eq!(schedule.allocations()[0].state, ChannelState::Closed);
    }

    #[test]
    fn visited_states_lose_energy_to_unvisited_ones() {
        let budget = 1000;
        let fresh = EnergySchedule::plan(LinkType::BrEdr, &BTreeMap::new(), budget);
        let mut visits = BTreeMap::new();
        visits.insert(ChannelState::Open, 9u64);
        let tired = EnergySchedule::plan(LinkType::BrEdr, &visits, budget);
        let packets = |s: &EnergySchedule, state: ChannelState| {
            s.allocations()
                .iter()
                .find(|a| a.state == state)
                .map(|a| a.packets)
                .unwrap_or(0)
        };
        assert!(packets(&tired, ChannelState::Open) < packets(&fresh, ChannelState::Open));
        assert!(packets(&tired, ChannelState::Closed) > packets(&fresh, ChannelState::Closed));
        assert_eq!(tired.total(), budget);
    }

    #[test]
    fn schedule_is_a_pure_function_of_its_inputs() {
        let mut visits = BTreeMap::new();
        visits.insert(ChannelState::WaitConfig, 3u64);
        let a = EnergySchedule::plan(LinkType::BrEdr, &visits, 321);
        let b = EnergySchedule::plan(LinkType::BrEdr, &visits, 321);
        assert_eq!(a, b);
    }

    #[test]
    fn json_round_trip_is_byte_identical() {
        let schedule = EnergySchedule::plan(LinkType::BrEdr, &BTreeMap::new(), 64);
        let json = serde_json::to_string_pretty_streamed(&schedule);
        let back: EnergySchedule = serde_json::from_str_streamed(&json).unwrap();
        assert_eq!(back, schedule);
        assert_eq!(serde_json::to_string_pretty_streamed(&back), json);
    }
}
