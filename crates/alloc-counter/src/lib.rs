//! A counting global allocator for measuring per-packet allocation budgets.
//!
//! Shared by `tests/alloc_per_packet.rs` (which *enforces* the zero-copy
//! pipeline's ≤ 2 allocations per injected packet) and the `perf_report`
//! bench binary (which *reports* allocs/packet into `BENCH_PR3.json`), so
//! the enforced budget and the tracked baseline are measured by the same
//! code.
//!
//! Install it in a binary or test crate with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every heap allocation made through the global allocator.
pub struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to the `System` allocator; the
// only addition is a relaxed counter increment on the allocation paths
// (`alloc`, `alloc_zeroed` via the default impl's `alloc`, and `realloc`).
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocations counted so far in this process.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    // The counter itself is exercised end-to-end by the consumers that
    // install the allocator; here we only check the counter is monotonic.
    #[test]
    fn counter_is_monotonic() {
        let a = super::allocations();
        let b = super::allocations();
        assert!(b >= a);
    }
}
