//! Packet traces.

use hci::link::{Direction, PacketRecord, SharedTap};
use serde::{Deserialize, Serialize};
use serde_json::{StreamDeserialize, StreamSerialize};

/// A captured packet trace: every frame that crossed a link, in order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<PacketRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Builds a trace by draining the records accumulated in a link tap.
    ///
    /// Draining (rather than copying) means the capture moves into the trace:
    /// the tap is left empty, and a second call only sees records captured
    /// after the first.  The campaign harness collects each tap exactly once,
    /// at the end of the run.
    pub fn from_tap(tap: &SharedTap) -> Self {
        Trace {
            records: std::mem::take(&mut *tap.lock()),
        }
    }

    /// Builds a trace from raw records.
    pub fn from_records(records: Vec<PacketRecord>) -> Self {
        Trace { records }
    }

    /// Serializes the trace as pretty-printed JSON through the streaming
    /// writer — no intermediate `Value` tree, so archiving a big capture
    /// materializes each frame's bytes once, straight into the output
    /// buffer.  The document is byte-identical to what the tree-based
    /// serializer produces.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty_streamed(self)
    }

    /// Parses a trace back from JSON through the streaming reader — the
    /// symmetric path to [`Trace::to_json`]: records land in the vector as
    /// they are parsed, without an intermediate `Value` tree holding the
    /// whole capture twice.
    ///
    /// # Errors
    /// Returns a `serde_json::Error` if the input is not a valid trace.
    pub fn from_json(json: &str) -> Result<Trace, serde_json::Error> {
        serde_json::from_str_streamed(json)
    }

    /// Appends a record.
    pub fn push(&mut self, record: PacketRecord) {
        self.records.push(record);
    }

    /// All records in capture order.
    pub fn records(&self) -> &[PacketRecord] {
        &self.records
    }

    /// Number of captured packets (both directions).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Packets transmitted by the fuzzer.
    pub fn transmitted(&self) -> impl Iterator<Item = &PacketRecord> {
        self.records.iter().filter(|r| r.direction == Direction::Tx)
    }

    /// Packets received from the target.
    pub fn received(&self) -> impl Iterator<Item = &PacketRecord> {
        self.records.iter().filter(|r| r.direction == Direction::Rx)
    }

    /// Number of transmitted packets.
    pub fn transmitted_count(&self) -> usize {
        self.transmitted().count()
    }

    /// Number of received packets.
    pub fn received_count(&self) -> usize {
        self.received().count()
    }

    /// Virtual time spanned by the capture, in microseconds.
    pub fn duration_micros(&self) -> u64 {
        match (self.records.first(), self.records.last()) {
            (Some(first), Some(last)) => {
                last.timestamp_micros.saturating_sub(first.timestamp_micros)
            }
            _ => 0,
        }
    }

    /// Merges another trace into this one, keeping records ordered by
    /// timestamp.
    ///
    /// Both inputs are already time-ordered (taps record monotonically), so
    /// this is a linear two-way merge, not a concatenate-and-sort.  Ties keep
    /// `self`'s records first, matching what a stable sort of the
    /// concatenation produced.
    pub fn merge(&mut self, other: Trace) {
        if other.records.is_empty() {
            return;
        }
        if self
            .records
            .last()
            .is_none_or(|last| last.timestamp_micros <= other.records[0].timestamp_micros)
        {
            // Common case: the other run starts after this one ends.
            self.records.extend(other.records);
            return;
        }
        let mut merged = Vec::with_capacity(self.records.len() + other.records.len());
        let mut left = std::mem::take(&mut self.records).into_iter().peekable();
        let mut right = other.records.into_iter().peekable();
        loop {
            match (left.peek(), right.peek()) {
                (Some(l), Some(r)) => {
                    if l.timestamp_micros <= r.timestamp_micros {
                        merged.extend(left.next());
                    } else {
                        merged.extend(right.next());
                    }
                }
                (Some(_), None) => {
                    merged.extend(left);
                    break;
                }
                (None, _) => {
                    merged.extend(right);
                    break;
                }
            }
        }
        self.records = merged;
    }
}

impl Extend<PacketRecord> for Trace {
    fn extend<T: IntoIterator<Item = PacketRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

/// Streams like the derived encoding: `{records: [...]}`.
impl StreamSerialize for Trace {
    fn stream(&self, w: &mut serde_json::JsonStreamWriter) {
        w.begin_object()
            .field("records", &self.records)
            .end_object();
    }
}

/// The reading mirror of the streamed encoding above.
impl StreamDeserialize for Trace {
    fn stream_from(r: &mut serde_json::JsonStreamReader<'_>) -> Result<Self, serde_json::Error> {
        r.begin_object()?;
        let records = r.key("records")?.value()?;
        r.end_object()?;
        Ok(Trace { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::Cid;
    use l2cap::packet::L2capFrame;

    fn record(direction: Direction, ts: u64) -> PacketRecord {
        PacketRecord {
            direction,
            timestamp_micros: ts,
            frame: L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]),
        }
    }

    #[test]
    fn counts_and_duration() {
        let mut trace = Trace::new();
        assert!(trace.is_empty());
        trace.push(record(Direction::Tx, 100));
        trace.push(record(Direction::Rx, 300));
        trace.push(record(Direction::Tx, 700));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.transmitted_count(), 2);
        assert_eq!(trace.received_count(), 1);
        assert_eq!(trace.duration_micros(), 600);
    }

    #[test]
    fn from_tap_drains_the_capture() {
        let tap = hci::link::new_tap();
        tap.lock().push(record(Direction::Tx, 5));
        let trace = Trace::from_tap(&tap);
        assert_eq!(trace.len(), 1);
        // The capture moved into the trace; the tap starts over.
        assert!(Trace::from_tap(&tap).is_empty());
        tap.lock().push(record(Direction::Rx, 9));
        assert_eq!(Trace::from_tap(&tap).len(), 1);
    }

    #[test]
    fn merge_keeps_timestamp_order() {
        let mut a = Trace::from_records(vec![record(Direction::Tx, 10), record(Direction::Tx, 30)]);
        let b = Trace::from_records(vec![record(Direction::Rx, 20)]);
        a.merge(b);
        let ts: Vec<u64> = a.records().iter().map(|r| r.timestamp_micros).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn merge_matches_a_stable_sort_of_the_concatenation() {
        let left = vec![
            record(Direction::Tx, 10),
            record(Direction::Tx, 20),
            record(Direction::Tx, 20),
            record(Direction::Tx, 40),
        ];
        let right = vec![
            record(Direction::Rx, 5),
            record(Direction::Rx, 20),
            record(Direction::Rx, 50),
        ];
        let mut merged = Trace::from_records(left.clone());
        merged.merge(Trace::from_records(right.clone()));

        let mut expected: Vec<PacketRecord> = left.into_iter().chain(right).collect();
        expected.sort_by_key(|r| r.timestamp_micros);
        assert_eq!(merged.records(), expected.as_slice());
        // Ties keep the left run's records first.
        let at_20: Vec<Direction> = merged
            .records()
            .iter()
            .filter(|r| r.timestamp_micros == 20)
            .map(|r| r.direction)
            .collect();
        assert_eq!(at_20, vec![Direction::Tx, Direction::Tx, Direction::Rx]);
    }

    #[test]
    fn merge_appends_when_runs_do_not_overlap() {
        let mut a = Trace::from_records(vec![record(Direction::Tx, 1), record(Direction::Tx, 2)]);
        a.merge(Trace::from_records(vec![record(Direction::Rx, 2)]));
        a.merge(Trace::new());
        let ts: Vec<u64> = a.records().iter().map(|r| r.timestamp_micros).collect();
        assert_eq!(ts, vec![1, 2, 2]);
        let mut empty = Trace::new();
        empty.merge(Trace::from_records(vec![record(Direction::Rx, 7)]));
        assert_eq!(empty.len(), 1);
    }
}
