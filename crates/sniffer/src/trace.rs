//! Packet traces.

use hci::link::{Direction, PacketRecord, SharedTap};
use serde::{Deserialize, Serialize};

/// A captured packet trace: every frame that crossed a link, in order.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    records: Vec<PacketRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Builds a trace by draining the records accumulated in a link tap.
    pub fn from_tap(tap: &SharedTap) -> Self {
        Trace {
            records: tap.lock().clone(),
        }
    }

    /// Builds a trace from raw records.
    pub fn from_records(records: Vec<PacketRecord>) -> Self {
        Trace { records }
    }

    /// Appends a record.
    pub fn push(&mut self, record: PacketRecord) {
        self.records.push(record);
    }

    /// All records in capture order.
    pub fn records(&self) -> &[PacketRecord] {
        &self.records
    }

    /// Number of captured packets (both directions).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Packets transmitted by the fuzzer.
    pub fn transmitted(&self) -> impl Iterator<Item = &PacketRecord> {
        self.records.iter().filter(|r| r.direction == Direction::Tx)
    }

    /// Packets received from the target.
    pub fn received(&self) -> impl Iterator<Item = &PacketRecord> {
        self.records.iter().filter(|r| r.direction == Direction::Rx)
    }

    /// Number of transmitted packets.
    pub fn transmitted_count(&self) -> usize {
        self.transmitted().count()
    }

    /// Number of received packets.
    pub fn received_count(&self) -> usize {
        self.received().count()
    }

    /// Virtual time spanned by the capture, in microseconds.
    pub fn duration_micros(&self) -> u64 {
        match (self.records.first(), self.records.last()) {
            (Some(first), Some(last)) => {
                last.timestamp_micros.saturating_sub(first.timestamp_micros)
            }
            _ => 0,
        }
    }

    /// Merges another trace into this one, keeping records ordered by
    /// timestamp.
    pub fn merge(&mut self, other: Trace) {
        self.records.extend(other.records);
        self.records.sort_by_key(|r| r.timestamp_micros);
    }
}

impl Extend<PacketRecord> for Trace {
    fn extend<T: IntoIterator<Item = PacketRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::Cid;
    use l2cap::packet::L2capFrame;

    fn record(direction: Direction, ts: u64) -> PacketRecord {
        PacketRecord {
            direction,
            timestamp_micros: ts,
            frame: L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]),
        }
    }

    #[test]
    fn counts_and_duration() {
        let mut trace = Trace::new();
        assert!(trace.is_empty());
        trace.push(record(Direction::Tx, 100));
        trace.push(record(Direction::Rx, 300));
        trace.push(record(Direction::Tx, 700));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.transmitted_count(), 2);
        assert_eq!(trace.received_count(), 1);
        assert_eq!(trace.duration_micros(), 600);
    }

    #[test]
    fn from_tap_copies_records() {
        let tap = hci::link::new_tap();
        tap.lock().push(record(Direction::Tx, 5));
        let trace = Trace::from_tap(&tap);
        assert_eq!(trace.len(), 1);
        // The tap is not drained, so a later snapshot still sees the record.
        assert_eq!(Trace::from_tap(&tap).len(), 1);
    }

    #[test]
    fn merge_keeps_timestamp_order() {
        let mut a = Trace::from_records(vec![record(Direction::Tx, 10), record(Direction::Tx, 30)]);
        let b = Trace::from_records(vec![record(Direction::Rx, 20)]);
        a.merge(b);
        let ts: Vec<u64> = a.records().iter().map(|r| r.timestamp_micros).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }
}
