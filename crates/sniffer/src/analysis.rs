//! Single-pass trace analysis.
//!
//! The comparison experiments want both a [`MetricsSummary`] (Table VII) and
//! a [`StateCoverage`] (Figs. 10–11) from the same capture.  Computing them
//! separately parses every record's signalling payload twice;
//! [`TraceAnalysis::from_trace`] walks the trace once, parses each record
//! once, and feeds the parsed packet to both the malformed/rejection
//! classifiers and the coverage replay.  The results are identical to the
//! two-pass computations (`tests` below assert it).

use hci::link::Direction;
use l2cap::packet::parse_signaling;

use crate::classify::{is_malformed_signaling_on, is_rejection_signaling};
use crate::coverage::{CoverageBuilder, StateCoverage};
use crate::metrics::MetricsSummary;
use crate::trace::Trace;

/// Everything the evaluation computes from one captured trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceAnalysis {
    /// Mutation-efficiency metrics (Table VII row).
    pub metrics: MetricsSummary,
    /// Inferred state coverage (Fig. 10/11 row).
    pub coverage: StateCoverage,
}

impl TraceAnalysis {
    /// Computes metrics and coverage in one pass, parsing each record once
    /// (BR/EDR trace).
    pub fn from_trace(trace: &Trace) -> TraceAnalysis {
        TraceAnalysis::from_trace_on(trace, btcore::LinkType::BrEdr)
    }

    /// Single-pass analysis of a trace captured on a link of the given type;
    /// the coverage replay follows that transport's side of the transition
    /// table.
    pub fn from_trace_on(trace: &Trace, link: btcore::LinkType) -> TraceAnalysis {
        let (mut transmitted, mut malformed, mut received, mut rejections) = (0, 0, 0, 0);
        let mut coverage = CoverageBuilder::for_link(link);
        for record in trace.records() {
            let frame = &record.frame;
            let signaling = frame.cid.is_signaling();
            let parsed = if signaling {
                parse_signaling(frame).ok()
            } else {
                None
            };
            match record.direction {
                Direction::Tx => {
                    transmitted += 1;
                    // `classify::is_malformed_on`, inlined over the shared
                    // parse.
                    let is_malformed = signaling
                        && (!frame.is_length_consistent()
                            || match &parsed {
                                Some(packet) => is_malformed_signaling_on(packet, link),
                                None => true,
                            });
                    if is_malformed {
                        malformed += 1;
                    }
                    if signaling {
                        coverage.saw_tx_signaling();
                    }
                }
                Direction::Rx => {
                    received += 1;
                    if let Some(packet) = &parsed {
                        if is_rejection_signaling(packet) {
                            rejections += 1;
                        }
                    }
                }
            }
            if let Some(packet) = &parsed {
                coverage.observe(record.direction, packet);
            }
        }
        TraceAnalysis {
            metrics: MetricsSummary::from_counts(
                transmitted,
                malformed,
                received,
                rejections,
                trace.duration_micros(),
            ),
            coverage: coverage.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::{Cid, FuzzRng, Identifier, Psm};
    use hci::link::PacketRecord;
    use l2cap::code::CommandCode;
    use l2cap::command::{Command, ConnectionRequest, ConnectionResponse, EchoRequest};
    use l2cap::consts::ConnectionResult;
    use l2cap::packet::{signaling_frame, L2capFrame};

    fn record(direction: Direction, ts: u64, frame: L2capFrame) -> PacketRecord {
        PacketRecord {
            direction,
            timestamp_micros: ts,
            frame,
        }
    }

    /// A messy trace mixing well-formed exchanges, malformed packets, data
    /// frames and unparseable runts.
    fn mixed_trace(seed: u64) -> Trace {
        let mut rng = FuzzRng::seed_from(seed);
        let mut records = Vec::new();
        records.push(record(
            Direction::Tx,
            0,
            signaling_frame(
                Identifier(1),
                Command::ConnectionRequest(ConnectionRequest {
                    psm: Psm::SDP,
                    scid: Cid(0x0040),
                }),
            ),
        ));
        records.push(record(
            Direction::Rx,
            10,
            signaling_frame(
                Identifier(1),
                Command::ConnectionResponse(ConnectionResponse {
                    dcid: Cid(0x0041),
                    scid: Cid(0x0040),
                    result: ConnectionResult::Success,
                    status: 0,
                }),
            ),
        ));
        for i in 0..200u64 {
            let ts = 20 + i * 7;
            match rng.range_usize(0, 4) {
                0 => {
                    // Mutated configure request with garbage.
                    let mut m =
                        super::tests_support::mutated_config_packet(&mut rng, (i % 250 + 1) as u8);
                    m.timestamp_micros = ts;
                    records.push(m);
                }
                1 => records.push(record(
                    Direction::Rx,
                    ts,
                    signaling_frame(
                        Identifier((i % 250 + 1) as u8),
                        Command::EchoRequest(EchoRequest { data: vec![1] }),
                    ),
                )),
                2 => records.push(record(
                    Direction::Tx,
                    ts,
                    L2capFrame::new(Cid(0x0041), vec![0xAA; 8]),
                )),
                _ => records.push(record(
                    Direction::Tx,
                    ts,
                    L2capFrame {
                        declared_payload_len: 2,
                        cid: Cid::SIGNALING,
                        payload: vec![0x02].into(),
                    },
                )),
            }
        }
        records.push(record(
            Direction::Tx,
            2000,
            signaling_frame(
                Identifier(9),
                Command::DisconnectionRequest(l2cap::command::DisconnectionRequest {
                    dcid: Cid(0x0041),
                    scid: Cid(0x0040),
                }),
            ),
        ));
        Trace::from_records(records)
    }

    #[test]
    fn single_pass_matches_the_two_pass_computations() {
        for seed in [1, 2, 3, 0xDEAD] {
            let trace = mixed_trace(seed);
            let analysis = TraceAnalysis::from_trace(&trace);
            assert_eq!(analysis.metrics, MetricsSummary::from_trace(&trace));
            assert_eq!(analysis.coverage, StateCoverage::from_trace(&trace));
        }
    }

    #[test]
    fn empty_trace_analyzes_cleanly() {
        let analysis = TraceAnalysis::from_trace(&Trace::new());
        assert_eq!(analysis.metrics.transmitted, 0);
        assert_eq!(analysis.coverage.count(), 0);
    }

    #[test]
    fn code_constants_used_by_the_replay_exist() {
        // Guard against silently renumbering the codes the fast paths match.
        assert_eq!(CommandCode::ConnectionResponse.value(), 0x03);
        assert_eq!(CommandCode::CommandReject.value(), 0x01);
    }
}

#[cfg(test)]
pub(crate) mod tests_support {
    use btcore::{FuzzRng, Identifier};
    use hci::link::{Direction, PacketRecord};
    use l2cap::packet::{L2capFrame, SignalingPacket};

    /// A Fig. 7-style mutated Configure Request with a random garbage tail.
    pub fn mutated_config_packet(rng: &mut FuzzRng, id: u8) -> PacketRecord {
        let mut data = vec![0x8F, 0x7B, 0, 0, 0, 0, 0, 0];
        let garbage = rng.range_usize(1, 8);
        for _ in 0..garbage {
            data.push(rng.next_u16() as u8);
        }
        let pkt = SignalingPacket {
            identifier: Identifier(id),
            code: 0x04,
            declared_data_len: 8,
            data: data.into(),
        };
        PacketRecord {
            direction: Direction::Tx,
            timestamp_micros: 0,
            frame: L2capFrame::new(btcore::Cid::SIGNALING, pkt.to_bytes()),
        }
    }
}
