//! Mutation-efficiency metrics (paper §IV-A, Table VII, Figs. 8–9).
//!
//! * **MP ratio** — transmitted malformed packets over transmitted packets.
//! * **PR ratio** — received rejection packets over received packets.
//! * **Mutation efficiency** — `MP * (1 - PR)`: the minimum fraction of
//!   malformed packets that went through without being rejected.
//! * **pps** — transmitted packets per (virtual) second.

use hci::link::Direction;
use serde::{Deserialize, Serialize};

use crate::classify::{is_malformed, is_rejection};
use crate::trace::Trace;

/// One point of the cumulative Fig. 8 / Fig. 9 series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CumulativePoint {
    /// Number of packets considered so far (x axis).
    pub packets: usize,
    /// Number of matching packets so far (y axis: malformed for Fig. 8,
    /// rejections for Fig. 9).
    pub matching: usize,
}

/// Summary of a fuzzing trace in the paper's evaluation terms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSummary {
    /// Packets transmitted by the fuzzer.
    pub transmitted: usize,
    /// Transmitted packets classified as malformed.
    pub malformed: usize,
    /// Packets received from the target.
    pub received: usize,
    /// Received packets classified as rejections.
    pub rejections: usize,
    /// Malformed-packet ratio (0..=1).
    pub mp_ratio: f64,
    /// Packet-rejection ratio (0..=1).
    pub pr_ratio: f64,
    /// Mutation efficiency `MP * (1 - PR)` (0..=1).
    pub mutation_efficiency: f64,
    /// Transmitted packets per virtual second.
    pub packets_per_second: f64,
}

impl MetricsSummary {
    /// Computes the summary over a trace (a single pass over the records —
    /// traces run to hundreds of thousands of packets in long campaigns).
    pub fn from_trace(trace: &Trace) -> MetricsSummary {
        let (mut transmitted, mut malformed, mut received, mut rejections) = (0, 0, 0, 0);
        for record in trace.records() {
            match record.direction {
                Direction::Tx => {
                    transmitted += 1;
                    if is_malformed(&record.frame) {
                        malformed += 1;
                    }
                }
                Direction::Rx => {
                    received += 1;
                    if is_rejection(&record.frame) {
                        rejections += 1;
                    }
                }
            }
        }
        MetricsSummary::from_counts(
            transmitted,
            malformed,
            received,
            rejections,
            trace.duration_micros(),
        )
    }

    /// Assembles a summary from raw counters, deriving the paper's ratios —
    /// the shared tail of [`MetricsSummary::from_trace`] and the single-pass
    /// [`crate::TraceAnalysis`].
    pub fn from_counts(
        transmitted: usize,
        malformed: usize,
        received: usize,
        rejections: usize,
        duration_micros: u64,
    ) -> MetricsSummary {
        let mp_ratio = ratio(malformed, transmitted);
        let pr_ratio = ratio(rejections, received);
        let duration_secs = duration_micros as f64 / 1_000_000.0;
        let packets_per_second = if duration_secs > 0.0 {
            transmitted as f64 / duration_secs
        } else {
            0.0
        };
        MetricsSummary {
            transmitted,
            malformed,
            received,
            rejections,
            mp_ratio,
            pr_ratio,
            mutation_efficiency: mp_ratio * (1.0 - pr_ratio),
            packets_per_second,
        }
    }

    /// Renders the three Table VII percentages as a short human-readable row.
    pub fn table_row(&self, label: &str) -> String {
        format!(
            "{label:<10} MP {:>6.2}%  PR {:>6.2}%  ME {:>6.2}%  ({:.1} pps)",
            self.mp_ratio * 100.0,
            self.pr_ratio * 100.0,
            self.mutation_efficiency * 100.0,
            self.packets_per_second
        )
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Cumulative malformed-packet series over transmitted packets (Fig. 8),
/// sampled every `step` packets.
pub fn malformed_series(trace: &Trace, step: usize) -> Vec<CumulativePoint> {
    cumulative(trace, Direction::Tx, step, is_malformed)
}

/// Cumulative rejection series over received packets (Fig. 9), sampled every
/// `step` packets.
pub fn rejection_series(trace: &Trace, step: usize) -> Vec<CumulativePoint> {
    cumulative(trace, Direction::Rx, step, is_rejection)
}

fn cumulative(
    trace: &Trace,
    direction: Direction,
    step: usize,
    pred: impl Fn(&l2cap::packet::L2capFrame) -> bool,
) -> Vec<CumulativePoint> {
    let step = step.max(1);
    let mut points = Vec::new();
    let mut packets = 0usize;
    let mut matching = 0usize;
    for record in trace.records().iter().filter(|r| r.direction == direction) {
        packets += 1;
        if pred(&record.frame) {
            matching += 1;
        }
        if packets.is_multiple_of(step) {
            points.push(CumulativePoint { packets, matching });
        }
    }
    if !packets.is_multiple_of(step) {
        points.push(CumulativePoint { packets, matching });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::{Cid, Identifier, Psm};
    use hci::link::PacketRecord;
    use l2cap::command::{Command, CommandReject, ConnectionRequest, EchoResponse};
    use l2cap::consts::RejectReason;
    use l2cap::packet::{signaling_frame, L2capFrame, SignalingPacket};

    fn tx_normal(ts: u64) -> PacketRecord {
        PacketRecord {
            direction: Direction::Tx,
            timestamp_micros: ts,
            frame: signaling_frame(
                Identifier(1),
                Command::ConnectionRequest(ConnectionRequest {
                    psm: Psm::SDP,
                    scid: Cid(0x40),
                }),
            ),
        }
    }

    fn tx_malformed(ts: u64) -> PacketRecord {
        let packet = SignalingPacket {
            identifier: Identifier(6),
            code: 0x04,
            declared_data_len: 8,
            data: vec![0x8F, 0x7B, 0, 0, 0, 0, 0, 0, 0xD2, 0x3A].into(),
        };
        PacketRecord {
            direction: Direction::Tx,
            timestamp_micros: ts,
            frame: packet.into_frame(),
        }
    }

    fn rx_reject(ts: u64) -> PacketRecord {
        PacketRecord {
            direction: Direction::Rx,
            timestamp_micros: ts,
            frame: signaling_frame(
                Identifier(1),
                Command::CommandReject(CommandReject {
                    reason: RejectReason::CommandNotUnderstood,
                    data: vec![],
                }),
            ),
        }
    }

    fn rx_ok(ts: u64) -> PacketRecord {
        PacketRecord {
            direction: Direction::Rx,
            timestamp_micros: ts,
            frame: signaling_frame(
                Identifier(1),
                Command::EchoResponse(EchoResponse { data: vec![] }),
            ),
        }
    }

    fn sample_trace() -> Trace {
        Trace::from_records(vec![
            tx_normal(0),
            tx_malformed(1_000_000),
            tx_malformed(2_000_000),
            tx_malformed(3_000_000),
            rx_ok(3_100_000),
            rx_reject(3_200_000),
            rx_ok(3_300_000),
            rx_ok(4_000_000),
        ])
    }

    #[test]
    fn summary_matches_hand_computation() {
        let m = MetricsSummary::from_trace(&sample_trace());
        assert_eq!(m.transmitted, 4);
        assert_eq!(m.malformed, 3);
        assert_eq!(m.received, 4);
        assert_eq!(m.rejections, 1);
        assert!((m.mp_ratio - 0.75).abs() < 1e-9);
        assert!((m.pr_ratio - 0.25).abs() < 1e-9);
        assert!((m.mutation_efficiency - 0.75 * 0.75).abs() < 1e-9);
        // 4 packets over 4 virtual seconds.
        assert!((m.packets_per_second - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_yields_zeroes() {
        let m = MetricsSummary::from_trace(&Trace::new());
        assert_eq!(m.transmitted, 0);
        assert_eq!(m.mp_ratio, 0.0);
        assert_eq!(m.pr_ratio, 0.0);
        assert_eq!(m.mutation_efficiency, 0.0);
        assert_eq!(m.packets_per_second, 0.0);
    }

    #[test]
    fn mutation_efficiency_formula() {
        // MP = 1, PR = 1 -> efficiency 0; MP = 1, PR = 0 -> efficiency 1.
        let all_rejected = Trace::from_records(vec![tx_malformed(0), rx_reject(10)]);
        let m = MetricsSummary::from_trace(&all_rejected);
        assert_eq!(m.mutation_efficiency, 0.0);

        let none_rejected = Trace::from_records(vec![tx_malformed(0), rx_ok(10)]);
        let m = MetricsSummary::from_trace(&none_rejected);
        assert_eq!(m.mutation_efficiency, 1.0);
    }

    #[test]
    fn cumulative_series_end_at_totals() {
        let trace = sample_trace();
        let fig8 = malformed_series(&trace, 2);
        assert_eq!(fig8.last().unwrap().packets, 4);
        assert_eq!(fig8.last().unwrap().matching, 3);
        // Monotonic in both coordinates.
        for pair in fig8.windows(2) {
            assert!(pair[1].packets > pair[0].packets);
            assert!(pair[1].matching >= pair[0].matching);
        }
        let fig9 = rejection_series(&trace, 3);
        assert_eq!(fig9.last().unwrap().packets, 4);
        assert_eq!(fig9.last().unwrap().matching, 1);
    }

    #[test]
    fn table_row_contains_percentages() {
        let row = MetricsSummary::from_trace(&sample_trace()).table_row("L2Fuzz");
        assert!(row.contains("L2Fuzz"));
        assert!(row.contains("75.00%"));
    }

    #[test]
    fn data_frames_do_not_skew_ratios() {
        let mut trace = sample_trace();
        trace.push(PacketRecord {
            direction: Direction::Tx,
            timestamp_micros: 5_000_000,
            frame: L2capFrame::new(Cid(0x0040), vec![0xAB; 10]),
        });
        let m = MetricsSummary::from_trace(&trace);
        assert_eq!(m.transmitted, 5);
        assert_eq!(m.malformed, 3);
    }
}
