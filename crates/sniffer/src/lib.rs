//! Packet-trace capture and the paper's evaluation metrics.
//!
//! The original evaluation measures everything from sniffed packet traces:
//! Wireshark captures provide the malformed-packet ratio (MP) and
//! packet-rejection ratio (PR) behind *mutation efficiency* (Table VII,
//! Figs. 8–9), and PRETT-style trace analysis provides *state coverage*
//! (Figs. 10–11).  This crate is the equivalent: it consumes the
//! [`hci::PacketRecord`]s collected by link taps and computes the same
//! quantities.
//!
//! * [`trace`] — the [`trace::Trace`] container and per-packet summaries.
//! * [`classify`] — what counts as a *malformed* transmitted packet and a
//!   *rejection* received packet.
//! * [`metrics`] — MP ratio, PR ratio, mutation efficiency, packets/second
//!   and the cumulative series of Figs. 8 and 9.
//! * [`coverage`] — trace-replay state-coverage inference against the
//!   Bluetooth 5.2 state machine.
//! * [`analysis`] — the single-pass [`TraceAnalysis`] computing metrics and
//!   coverage together, parsing each record once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod classify;
pub mod coverage;
pub mod metrics;
pub mod trace;

pub use analysis::TraceAnalysis;
pub use classify::{is_malformed, is_rejection};
pub use coverage::StateCoverage;
pub use metrics::{CumulativePoint, MetricsSummary};
pub use trace::Trace;
