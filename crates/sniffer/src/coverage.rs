//! Trace-replay state-coverage inference (paper §IV-D, Figs. 10–11).
//!
//! The paper measures how many of the 19 L2CAP states each fuzzer exercises
//! by analysing its packet trace with a protocol-reverse-engineering tool.
//! Here the equivalent is exact: the trace is replayed against the Bluetooth
//! 5.2 acceptor state machine (the same [`l2cap::state::StateMachine`] the
//! simulated targets run), creating one machine per channel the initiator
//! opens and feeding it every command addressed to it.  The union of states
//! visited by all machines is the fuzzer's state coverage.

use std::collections::BTreeSet;

use btcore::{Cid, LinkType};
use hci::link::Direction;
use l2cap::code::CommandCode;
use l2cap::command::Command;
use l2cap::packet::parse_signaling;
use l2cap::state::{ChannelState, StateMachine};
use serde::{Deserialize, Serialize};

use crate::trace::Trace;

/// The set of L2CAP states a fuzzer's trace exercised on the target.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateCoverage {
    covered: BTreeSet<ChannelState>,
}

impl StateCoverage {
    /// Replays a trace captured on a BR/EDR link and infers the covered
    /// states.
    pub fn from_trace(trace: &Trace) -> StateCoverage {
        StateCoverage::from_trace_on(trace, LinkType::BrEdr)
    }

    /// Replays a trace captured on a link of the given type.  The link type
    /// selects which side of the two-sided transition table the replay
    /// machines follow — an LE trace replays the credit-based channel flows.
    pub fn from_trace_on(trace: &Trace, link: LinkType) -> StateCoverage {
        let mut builder = CoverageBuilder::for_link(link);
        for record in trace.records() {
            builder.observe_frame(record.direction, &record.frame);
        }
        builder.finish()
    }

    /// The covered states in specification order.
    pub fn states(&self) -> Vec<ChannelState> {
        ChannelState::ALL
            .iter()
            .copied()
            .filter(|s| self.covered.contains(s))
            .collect()
    }

    /// Number of covered states (of 19).
    pub fn count(&self) -> usize {
        self.covered.len()
    }

    /// Returns `true` if the given state was covered.
    pub fn covers(&self, state: ChannelState) -> bool {
        self.covered.contains(&state)
    }

    /// Packs the covered-state set into a bitmask, one bit per
    /// [`ChannelState::ALL`] index (bit 0 = CLOSED).  Two traces that
    /// exercise the same states produce the same signature, which makes this
    /// the cheap half of the corpus dedup key ("Is Stateful Fuzzing Really
    /// Challenging?" uses exactly this clustering).
    pub fn signature(&self) -> u32 {
        ChannelState::ALL
            .iter()
            .enumerate()
            .filter(|(_, s)| self.covered.contains(s))
            .fold(0u32, |mask, (i, _)| mask | (1 << i))
    }

    /// Renders the Fig. 11-style matrix row: one `#` per covered state, `.`
    /// per uncovered state, in [`ChannelState::ALL`] order.
    pub fn matrix_row(&self) -> String {
        ChannelState::ALL
            .iter()
            .map(|s| if self.covered.contains(s) { '#' } else { '.' })
            .collect()
    }
}

/// Incremental state-coverage inference: records are fed one at a time (in
/// capture order) and the covered-state set is produced at the end.  The
/// single-pass trace analysis drives this alongside the metrics counters so
/// each record is parsed exactly once.
pub struct CoverageBuilder {
    link: LinkType,
    covered: BTreeSet<ChannelState>,
    /// One replay machine per channel, with an index from every CID seen on
    /// the wire (the initiator's SCID and the target's allocated DCID) to
    /// its machine — long traces open hundreds of channels, so the lookup
    /// must not scan them per record.
    channels: Vec<StateMachine>,
    cid_index: CidMap,
    /// Connection requests the target has not answered yet: the initiator
    /// CID announced and which connect-shaped command carried it.
    pending_connects: Vec<(u16, CommandCode)>,
    saw_tx_signaling: bool,
}

impl Default for CoverageBuilder {
    fn default() -> Self {
        CoverageBuilder::new()
    }
}

impl CoverageBuilder {
    /// Creates an empty builder for a BR/EDR trace.
    pub fn new() -> CoverageBuilder {
        CoverageBuilder::for_link(LinkType::BrEdr)
    }

    /// Creates an empty builder replaying against the given link type's side
    /// of the transition table.
    pub fn for_link(link: LinkType) -> CoverageBuilder {
        CoverageBuilder {
            link,
            covered: BTreeSet::new(),
            channels: Vec::new(),
            cid_index: CidMap::new(),
            pending_connects: Vec::new(),
            saw_tx_signaling: false,
        }
    }

    /// Feeds one captured frame (parsing its signalling payload internally).
    pub fn observe_frame(&mut self, direction: Direction, frame: &l2cap::packet::L2capFrame) {
        if !frame.cid.is_signaling() {
            return;
        }
        if direction == Direction::Tx {
            self.saw_tx_signaling = true;
        }
        if let Ok(packet) = parse_signaling(frame) {
            self.observe(direction, &packet);
        }
    }

    /// Feeds one already-parsed signalling record.  Callers must have
    /// reported non-parsing transmitted signalling frames through
    /// [`CoverageBuilder::observe_frame`] (or [`CoverageBuilder::saw_tx_signaling`])
    /// for the CLOSED-state rule to hold.
    pub fn observe(&mut self, direction: Direction, packet: &l2cap::packet::SignalingPacket) {
        let Some(code) = CommandCode::from_u8(packet.code) else {
            return;
        };
        // Only the four connect-shaped commands ever need their typed form;
        // every other record is replayed from code + core fields alone,
        // skipping command decoding (this runs per record of every trace).
        match direction {
            Direction::Tx => {
                let mut settled = false;
                if self.is_connect_shaped(code) {
                    match Command::decode_opt(packet.code, &packet.data) {
                        Some(Command::ConnectionRequest(req)) => {
                            self.pending_connects.push((req.scid.value(), code));
                            settled = true;
                        }
                        Some(Command::CreateChannelRequest(req)) => {
                            self.pending_connects.push((req.scid.value(), code));
                            settled = true;
                        }
                        Some(Command::LeCreditBasedConnectionRequest(req)) => {
                            self.pending_connects.push((req.scid.value(), code));
                            settled = true;
                        }
                        Some(Command::CreditBasedConnectionRequest(req)) => {
                            // An enhanced request opens several channels at
                            // once; the replay follows its first channel
                            // (one machine per exchange suffices for state
                            // coverage).
                            let scid = req.scids.first().map(|c| c.value()).unwrap_or(0);
                            self.pending_connects.push((scid, code));
                            settled = true;
                        }
                        _ => {}
                    }
                }
                if !settled {
                    // Link-level commands (echo/information on BR/EDR, the
                    // connection-parameter update on LE, rejects on both)
                    // are handled outside the channel state machines by
                    // every stack; only channel commands advance a machine.
                    let link_level = match self.link {
                        LinkType::BrEdr => matches!(
                            code,
                            CommandCode::EchoRequest
                                | CommandCode::EchoResponse
                                | CommandCode::InformationRequest
                                | CommandCode::InformationResponse
                                | CommandCode::CommandReject
                        ),
                        LinkType::Le => matches!(
                            code,
                            CommandCode::ConnectionParameterUpdateRequest
                                | CommandCode::ConnectionParameterUpdateResponse
                                | CommandCode::CommandReject
                        ),
                    };
                    if link_level {
                        return;
                    }
                    let core = l2cap::fields::extract_core_values(code, &packet.data);
                    let machine = resolve_machine(&mut self.channels, &self.cid_index, &core.cidp);
                    if let Some(machine) = machine {
                        machine.advance(code, true);
                    }
                }
            }
            Direction::Rx => {
                if self.is_connect_response(code) {
                    match Command::decode_opt(packet.code, &packet.data) {
                        Some(Command::ConnectionResponse(rsp)) => {
                            self.settle_connect(
                                Some(rsp.scid),
                                rsp.dcid,
                                rsp.result.is_refusal(),
                                CommandCode::ConnectionRequest,
                            );
                        }
                        Some(Command::CreateChannelResponse(rsp)) => {
                            self.settle_connect(
                                Some(rsp.scid),
                                rsp.dcid,
                                rsp.result.is_refusal(),
                                CommandCode::CreateChannelRequest,
                            );
                        }
                        // The LE responses do not echo the initiator CID, so
                        // they settle the oldest pending request of their
                        // kind.
                        Some(Command::LeCreditBasedConnectionResponse(rsp)) => {
                            self.settle_connect(
                                None,
                                rsp.dcid,
                                rsp.result != 0,
                                CommandCode::LeCreditBasedConnectionRequest,
                            );
                        }
                        Some(Command::CreditBasedConnectionResponse(rsp)) => {
                            let dcid = rsp.dcids.first().copied().unwrap_or(Cid::NULL);
                            self.settle_connect(
                                None,
                                dcid,
                                rsp.result != 0 && rsp.dcids.is_empty(),
                                CommandCode::CreditBasedConnectionRequest,
                            );
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    /// Returns `true` for the connect-shaped requests of this link type.
    fn is_connect_shaped(&self, code: CommandCode) -> bool {
        match self.link {
            LinkType::BrEdr => matches!(
                code,
                CommandCode::ConnectionRequest | CommandCode::CreateChannelRequest
            ),
            LinkType::Le => matches!(
                code,
                CommandCode::LeCreditBasedConnectionRequest
                    | CommandCode::CreditBasedConnectionRequest
            ),
        }
    }

    /// Returns `true` for the responses that settle a pending connect.
    fn is_connect_response(&self, code: CommandCode) -> bool {
        match self.link {
            LinkType::BrEdr => matches!(
                code,
                CommandCode::ConnectionResponse | CommandCode::CreateChannelResponse
            ),
            LinkType::Le => matches!(
                code,
                CommandCode::LeCreditBasedConnectionResponse
                    | CommandCode::CreditBasedConnectionResponse
            ),
        }
    }

    /// Settles a pending connect: a refusal walks a transient machine
    /// through the deciding state; a success opens a replay machine and
    /// indexes both CIDs of the exchange.  `scid` is `None` for the LE
    /// responses, which do not echo the initiator CID — the oldest pending
    /// request of `request_code`'s kind is matched instead.
    fn settle_connect(
        &mut self,
        scid: Option<Cid>,
        dcid: Cid,
        refused: bool,
        request_code: CommandCode,
    ) {
        let pos = self.pending_connects.iter().position(|(s, c)| {
            *c == request_code && scid.map(|scid| *s == scid.value()).unwrap_or(true)
        });
        let pending_scid = match pos {
            Some(pos) => Some(self.pending_connects.remove(pos).0),
            None => None,
        };
        if refused {
            // A refused request still exercises the deciding state on the
            // target.
            let mut machine = StateMachine::for_link(self.link);
            machine.advance(request_code, false);
            self.covered.extend(machine.visited().iter().copied());
            return;
        }
        let mut machine = StateMachine::for_link(self.link);
        machine.advance(request_code, true);
        let idx = self.channels.len();
        self.channels.push(machine);
        // First mapping wins: a reused CID keeps routing to the earliest
        // channel that carried it, exactly as an in-order list scan would.
        let scid = scid.map(|c| c.value()).or(pending_scid);
        if let Some(scid) = scid {
            self.cid_index.insert_first(scid, idx);
        }
        self.cid_index.insert_first(dcid.value(), idx);
    }

    /// Marks that at least one signalling frame was transmitted (exercising
    /// the CLOSED state), for callers feeding pre-parsed packets.
    pub fn saw_tx_signaling(&mut self) {
        self.saw_tx_signaling = true;
    }

    /// Packs the states covered *so far* into the same bitmask
    /// [`StateCoverage::signature`] produces, without consuming the builder.
    /// A feedback loop polls this after every transmitted packet to decide
    /// whether the packet reached anything new; the builder keeps replaying
    /// subsequent records as if the snapshot never happened.
    pub fn signature_snapshot(&self) -> u32 {
        let mut mask = ChannelState::ALL
            .iter()
            .enumerate()
            .filter(|(_, s)| self.covered.contains(s))
            .fold(0u32, |mask, (i, _)| mask | (1 << i));
        if self.saw_tx_signaling {
            mask |= 1 << ChannelState::Closed.index();
        }
        for machine in &self.channels {
            for state in machine.visited() {
                mask |= 1 << state.index();
            }
        }
        mask
    }

    /// Produces the covered-state set.
    pub fn finish(mut self) -> StateCoverage {
        // The CLOSED state is exercised as soon as any signalling packet is
        // sent at all.
        if self.saw_tx_signaling {
            self.covered.insert(ChannelState::Closed);
        }
        for machine in &self.channels {
            self.covered.extend(machine.visited().iter().copied());
        }
        StateCoverage {
            covered: self.covered,
        }
    }
}

/// Minimal open-addressing map from a 16-bit CID to a channel index, with
/// first-insert-wins semantics.  Replaying a long trace performs a handful of
/// lookups per record, so this avoids both `HashMap`'s SipHash cost and a
/// linear scan over hundreds of opened channels.
struct CidMap {
    // (cid, index) pairs; `index == u32::MAX` marks an empty slot.
    slots: Vec<(u16, u32)>,
    len: usize,
}

impl CidMap {
    const EMPTY: u32 = u32::MAX;

    fn new() -> CidMap {
        CidMap {
            slots: vec![(0, Self::EMPTY); 64],
            len: 0,
        }
    }

    fn bucket(&self, cid: u16) -> usize {
        // Fibonacci hashing; slot count is a power of two.
        (u64::from(cid).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & (self.slots.len() - 1)
    }

    fn get(&self, cid: u16) -> Option<usize> {
        let mut i = self.bucket(cid);
        loop {
            let (key, idx) = self.slots[i];
            if idx == Self::EMPTY {
                return None;
            }
            if key == cid {
                return Some(idx as usize);
            }
            i = (i + 1) & (self.slots.len() - 1);
        }
    }

    /// Inserts `cid -> index` unless the CID is already mapped (the earliest
    /// channel keeps owning a reused CID).
    fn insert_first(&mut self, cid: u16, index: usize) {
        if self.len * 2 >= self.slots.len() {
            self.grow();
        }
        let mut i = self.bucket(cid);
        loop {
            let (key, idx) = self.slots[i];
            if idx == Self::EMPTY {
                self.slots[i] = (cid, index as u32);
                self.len += 1;
                return;
            }
            if key == cid {
                return;
            }
            i = (i + 1) & (self.slots.len() - 1);
        }
    }

    fn grow(&mut self) {
        let old = std::mem::replace(&mut self.slots, vec![(0, Self::EMPTY); 0]);
        self.slots = vec![(0, Self::EMPTY); old.len() * 2];
        self.len = 0;
        for (key, idx) in old {
            if idx != Self::EMPTY {
                self.insert_first(key, idx as usize);
            }
        }
    }
}

fn resolve_machine<'a>(
    channels: &'a mut [StateMachine],
    cid_index: &CidMap,
    cidp: &[u16],
) -> Option<&'a mut StateMachine> {
    // Find a channel whose known CIDs intersect the packet's CIDP values
    // (first CIDP value wins, matching the old first-channel-in-open-order
    // scan because channel indices grow monotonically); otherwise fall back
    // to the most recently opened channel, mirroring the lenient routing of
    // real stacks.
    let idx = cidp
        .iter()
        .filter_map(|v| cid_index.get(*v))
        .min()
        .or_else(|| channels.len().checked_sub(1))?;
    Some(&mut channels[idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::{Identifier, Psm};
    use hci::link::PacketRecord;
    use l2cap::command::{
        ConfigureRequest, ConfigureResponse, ConnectionRequest, ConnectionResponse,
        DisconnectionRequest,
    };
    use l2cap::consts::{ConfigureResult, ConnectionResult};
    use l2cap::packet::signaling_frame;

    fn tx(ts: u64, cmd: Command) -> PacketRecord {
        PacketRecord {
            direction: Direction::Tx,
            timestamp_micros: ts,
            frame: signaling_frame(Identifier(1), cmd),
        }
    }

    fn rx(ts: u64, cmd: Command) -> PacketRecord {
        PacketRecord {
            direction: Direction::Rx,
            timestamp_micros: ts,
            frame: signaling_frame(Identifier(1), cmd),
        }
    }

    fn connect_exchange(scid: u16, dcid: u16, base_ts: u64) -> Vec<PacketRecord> {
        vec![
            tx(
                base_ts,
                Command::ConnectionRequest(ConnectionRequest {
                    psm: Psm::SDP,
                    scid: Cid(scid),
                }),
            ),
            rx(
                base_ts + 1,
                Command::ConnectionResponse(ConnectionResponse {
                    dcid: Cid(dcid),
                    scid: Cid(scid),
                    result: ConnectionResult::Success,
                    status: 0,
                }),
            ),
        ]
    }

    #[test]
    fn empty_trace_covers_nothing() {
        let cov = StateCoverage::from_trace(&Trace::new());
        assert_eq!(cov.count(), 0);
        assert_eq!(cov.matrix_row(), ".".repeat(19));
    }

    #[test]
    fn a_single_connect_covers_the_connection_path() {
        let trace = Trace::from_records(connect_exchange(0x0040, 0x0041, 0));
        let cov = StateCoverage::from_trace(&trace);
        assert!(cov.covers(ChannelState::Closed));
        assert!(cov.covers(ChannelState::WaitConnect));
        assert!(cov.covers(ChannelState::WaitConfig));
        assert!(!cov.covers(ChannelState::WaitConfigReqRsp));
        assert!(!cov.covers(ChannelState::Open));
        assert_eq!(cov.count(), 3);
    }

    #[test]
    fn full_handshake_and_disconnect_cover_seven_states() {
        let mut records = connect_exchange(0x0040, 0x0041, 0);
        records.push(tx(
            10,
            Command::ConfigureRequest(ConfigureRequest {
                dcid: Cid(0x0041),
                flags: 0,
                options: vec![],
            }),
        ));
        records.push(tx(
            20,
            Command::ConfigureResponse(ConfigureResponse {
                scid: Cid(0x0041),
                flags: 0,
                result: ConfigureResult::Success,
                options: vec![],
            }),
        ));
        records.push(tx(
            30,
            Command::DisconnectionRequest(DisconnectionRequest {
                dcid: Cid(0x0041),
                scid: Cid(0x0040),
            }),
        ));
        let cov = StateCoverage::from_trace(&Trace::from_records(records));
        assert!(cov.covers(ChannelState::Open));
        assert!(cov.covers(ChannelState::WaitDisconnect));
        assert!(cov.covers(ChannelState::WaitConfigRsp));
        assert_eq!(cov.count(), 7, "covered: {:?}", cov.states());
    }

    #[test]
    fn refused_connection_still_covers_wait_connect() {
        let records = vec![
            tx(
                0,
                Command::ConnectionRequest(ConnectionRequest {
                    psm: Psm(0x0F0F),
                    scid: Cid(0x0040),
                }),
            ),
            rx(
                1,
                Command::ConnectionResponse(ConnectionResponse {
                    dcid: Cid::NULL,
                    scid: Cid(0x0040),
                    result: ConnectionResult::RefusedPsmNotSupported,
                    status: 0,
                }),
            ),
        ];
        let cov = StateCoverage::from_trace(&Trace::from_records(records));
        assert!(cov.covers(ChannelState::Closed));
        assert!(cov.covers(ChannelState::WaitConnect));
        assert!(!cov.covers(ChannelState::WaitConfig));
        assert_eq!(cov.count(), 2);
    }

    #[test]
    fn signature_packs_one_bit_per_canonical_state() {
        assert_eq!(StateCoverage::from_trace(&Trace::new()).signature(), 0);
        let trace = Trace::from_records(connect_exchange(0x0040, 0x0041, 0));
        let cov = StateCoverage::from_trace(&trace);
        let mask = cov.signature();
        assert_eq!(mask.count_ones() as usize, cov.count());
        // CLOSED is bit 0 of the canonical ordering.
        assert_eq!(mask & 1, 1);
    }

    #[test]
    fn matrix_row_marks_covered_states() {
        let trace = Trace::from_records(connect_exchange(0x0040, 0x0041, 0));
        let cov = StateCoverage::from_trace(&trace);
        let row = cov.matrix_row();
        assert_eq!(row.len(), 19);
        assert_eq!(row.chars().filter(|c| *c == '#').count(), cov.count());
        // CLOSED is the first state in the canonical ordering.
        assert!(row.starts_with('#'));
    }
}
