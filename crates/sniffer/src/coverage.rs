//! Trace-replay state-coverage inference (paper §IV-D, Figs. 10–11).
//!
//! The paper measures how many of the 19 L2CAP states each fuzzer exercises
//! by analysing its packet trace with a protocol-reverse-engineering tool.
//! Here the equivalent is exact: the trace is replayed against the Bluetooth
//! 5.2 acceptor state machine (the same [`l2cap::state::StateMachine`] the
//! simulated targets run), creating one machine per channel the initiator
//! opens and feeding it every command addressed to it.  The union of states
//! visited by all machines is the fuzzer's state coverage.

use std::collections::BTreeSet;

use btcore::Cid;
use hci::link::Direction;
use l2cap::code::CommandCode;
use l2cap::command::Command;
use l2cap::packet::parse_signaling;
use l2cap::state::{ChannelState, StateMachine};
use serde::{Deserialize, Serialize};

use crate::trace::Trace;

/// The set of L2CAP states a fuzzer's trace exercised on the target.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateCoverage {
    covered: BTreeSet<ChannelState>,
}

impl StateCoverage {
    /// Replays a trace and infers the covered states.
    pub fn from_trace(trace: &Trace) -> StateCoverage {
        let mut covered: BTreeSet<ChannelState> = BTreeSet::new();
        // The CLOSED state is exercised as soon as any signalling packet is
        // sent at all.
        if trace.transmitted().any(|r| r.frame.cid.is_signaling()) {
            covered.insert(ChannelState::Closed);
        }

        // One replay machine per channel, keyed by the CIDs seen on the wire:
        // the initiator's SCID and the target's allocated DCID.
        let mut channels: Vec<(Vec<u16>, StateMachine)> = Vec::new();
        // Connection requests the target has not answered yet: SCID -> ().
        let mut pending_connects: Vec<(u16, bool)> = Vec::new(); // (scid, is_create)

        for record in trace.records() {
            if !record.frame.cid.is_signaling() {
                continue;
            }
            let Ok(packet) = parse_signaling(&record.frame) else {
                continue;
            };
            let Some(code) = CommandCode::from_u8(packet.code) else {
                continue;
            };
            let command = packet.command();

            match record.direction {
                Direction::Tx => match &command {
                    Command::ConnectionRequest(req) => {
                        pending_connects.push((req.scid.value(), false));
                    }
                    Command::CreateChannelRequest(req) => {
                        pending_connects.push((req.scid.value(), true));
                    }
                    _ => {
                        // Link-level commands (echo, information, rejects)
                        // are handled outside the channel state machines by
                        // every stack; only channel commands advance a
                        // machine.
                        let link_level = matches!(
                            code,
                            CommandCode::EchoRequest
                                | CommandCode::EchoResponse
                                | CommandCode::InformationRequest
                                | CommandCode::InformationResponse
                                | CommandCode::CommandReject
                        );
                        if link_level {
                            continue;
                        }
                        let core = l2cap::fields::extract_core_values(code, &packet.data);
                        let machine = resolve_machine(&mut channels, &core.cidp);
                        if let Some(machine) = machine {
                            machine.on_command(code, true);
                        }
                    }
                },
                Direction::Rx => match &command {
                    Command::ConnectionResponse(rsp) => {
                        settle_connect(
                            &mut channels,
                            &mut pending_connects,
                            &mut covered,
                            rsp.scid,
                            rsp.dcid,
                            rsp.result.is_refusal(),
                            false,
                        );
                    }
                    Command::CreateChannelResponse(rsp) => {
                        settle_connect(
                            &mut channels,
                            &mut pending_connects,
                            &mut covered,
                            rsp.scid,
                            rsp.dcid,
                            rsp.result.is_refusal(),
                            true,
                        );
                    }
                    _ => {}
                },
            }
        }

        for (_, machine) in &channels {
            covered.extend(machine.visited().iter().copied());
        }
        StateCoverage { covered }
    }

    /// The covered states in specification order.
    pub fn states(&self) -> Vec<ChannelState> {
        ChannelState::ALL
            .iter()
            .copied()
            .filter(|s| self.covered.contains(s))
            .collect()
    }

    /// Number of covered states (of 19).
    pub fn count(&self) -> usize {
        self.covered.len()
    }

    /// Returns `true` if the given state was covered.
    pub fn covers(&self, state: ChannelState) -> bool {
        self.covered.contains(&state)
    }

    /// Renders the Fig. 11-style matrix row: one `#` per covered state, `.`
    /// per uncovered state, in [`ChannelState::ALL`] order.
    pub fn matrix_row(&self) -> String {
        ChannelState::ALL
            .iter()
            .map(|s| if self.covered.contains(s) { '#' } else { '.' })
            .collect()
    }
}

fn resolve_machine<'a>(
    channels: &'a mut [(Vec<u16>, StateMachine)],
    cidp: &[u16],
) -> Option<&'a mut StateMachine> {
    // Find a channel whose known CIDs intersect the packet's CIDP values;
    // otherwise fall back to the most recently opened channel, mirroring the
    // lenient routing of real stacks.
    let idx = channels
        .iter()
        .position(|(cids, _)| cidp.iter().any(|v| cids.contains(v)))
        .or_else(|| {
            if channels.is_empty() {
                None
            } else {
                Some(channels.len() - 1)
            }
        })?;
    Some(&mut channels[idx].1)
}

#[allow(clippy::too_many_arguments)]
fn settle_connect(
    channels: &mut Vec<(Vec<u16>, StateMachine)>,
    pending: &mut Vec<(u16, bool)>,
    covered: &mut BTreeSet<ChannelState>,
    scid: Cid,
    dcid: Cid,
    refused: bool,
    is_create: bool,
) {
    let code = if is_create {
        CommandCode::CreateChannelRequest
    } else {
        CommandCode::ConnectionRequest
    };
    // Match the response to the oldest pending request of the same kind.
    let pos = pending
        .iter()
        .position(|(s, c)| *c == is_create && *s == scid.value());
    if let Some(pos) = pos {
        pending.remove(pos);
    }
    if refused {
        // A refused request still exercises the deciding state on the target.
        let mut machine = StateMachine::new();
        machine.on_command(code, false);
        covered.extend(machine.visited().iter().copied());
        return;
    }
    let mut machine = StateMachine::new();
    machine.on_command(code, true);
    channels.push((vec![scid.value(), dcid.value()], machine));
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::{Identifier, Psm};
    use hci::link::PacketRecord;
    use l2cap::command::{
        ConfigureRequest, ConfigureResponse, ConnectionRequest, ConnectionResponse,
        DisconnectionRequest,
    };
    use l2cap::consts::{ConfigureResult, ConnectionResult};
    use l2cap::packet::signaling_frame;

    fn tx(ts: u64, cmd: Command) -> PacketRecord {
        PacketRecord {
            direction: Direction::Tx,
            timestamp_micros: ts,
            frame: signaling_frame(Identifier(1), cmd),
        }
    }

    fn rx(ts: u64, cmd: Command) -> PacketRecord {
        PacketRecord {
            direction: Direction::Rx,
            timestamp_micros: ts,
            frame: signaling_frame(Identifier(1), cmd),
        }
    }

    fn connect_exchange(scid: u16, dcid: u16, base_ts: u64) -> Vec<PacketRecord> {
        vec![
            tx(
                base_ts,
                Command::ConnectionRequest(ConnectionRequest {
                    psm: Psm::SDP,
                    scid: Cid(scid),
                }),
            ),
            rx(
                base_ts + 1,
                Command::ConnectionResponse(ConnectionResponse {
                    dcid: Cid(dcid),
                    scid: Cid(scid),
                    result: ConnectionResult::Success,
                    status: 0,
                }),
            ),
        ]
    }

    #[test]
    fn empty_trace_covers_nothing() {
        let cov = StateCoverage::from_trace(&Trace::new());
        assert_eq!(cov.count(), 0);
        assert_eq!(cov.matrix_row(), ".".repeat(19));
    }

    #[test]
    fn a_single_connect_covers_the_connection_path() {
        let trace = Trace::from_records(connect_exchange(0x0040, 0x0041, 0));
        let cov = StateCoverage::from_trace(&trace);
        assert!(cov.covers(ChannelState::Closed));
        assert!(cov.covers(ChannelState::WaitConnect));
        assert!(cov.covers(ChannelState::WaitConfig));
        assert!(!cov.covers(ChannelState::WaitConfigReqRsp));
        assert!(!cov.covers(ChannelState::Open));
        assert_eq!(cov.count(), 3);
    }

    #[test]
    fn full_handshake_and_disconnect_cover_seven_states() {
        let mut records = connect_exchange(0x0040, 0x0041, 0);
        records.push(tx(
            10,
            Command::ConfigureRequest(ConfigureRequest {
                dcid: Cid(0x0041),
                flags: 0,
                options: vec![],
            }),
        ));
        records.push(tx(
            20,
            Command::ConfigureResponse(ConfigureResponse {
                scid: Cid(0x0041),
                flags: 0,
                result: ConfigureResult::Success,
                options: vec![],
            }),
        ));
        records.push(tx(
            30,
            Command::DisconnectionRequest(DisconnectionRequest {
                dcid: Cid(0x0041),
                scid: Cid(0x0040),
            }),
        ));
        let cov = StateCoverage::from_trace(&Trace::from_records(records));
        assert!(cov.covers(ChannelState::Open));
        assert!(cov.covers(ChannelState::WaitDisconnect));
        assert!(cov.covers(ChannelState::WaitConfigRsp));
        assert_eq!(cov.count(), 7, "covered: {:?}", cov.states());
    }

    #[test]
    fn refused_connection_still_covers_wait_connect() {
        let records = vec![
            tx(
                0,
                Command::ConnectionRequest(ConnectionRequest {
                    psm: Psm(0x0F0F),
                    scid: Cid(0x0040),
                }),
            ),
            rx(
                1,
                Command::ConnectionResponse(ConnectionResponse {
                    dcid: Cid::NULL,
                    scid: Cid(0x0040),
                    result: ConnectionResult::RefusedPsmNotSupported,
                    status: 0,
                }),
            ),
        ];
        let cov = StateCoverage::from_trace(&Trace::from_records(records));
        assert!(cov.covers(ChannelState::Closed));
        assert!(cov.covers(ChannelState::WaitConnect));
        assert!(!cov.covers(ChannelState::WaitConfig));
        assert_eq!(cov.count(), 2);
    }

    #[test]
    fn matrix_row_marks_covered_states() {
        let trace = Trace::from_records(connect_exchange(0x0040, 0x0041, 0));
        let cov = StateCoverage::from_trace(&trace);
        let row = cov.matrix_row();
        assert_eq!(row.len(), 19);
        assert_eq!(row.chars().filter(|c| *c == '#').count(), cov.count());
        // CLOSED is the first state in the canonical ordering.
        assert!(row.starts_with('#'));
    }
}
