//! Packet classification: malformed transmissions and rejection responses.
//!
//! The MP and PR ratios of §IV-A are defined over two classifications that a
//! trace analyst can make from packet bytes alone:
//!
//! * a **malformed** transmitted packet carries malicious information — a
//!   garbage tail, inconsistent length fields, an abnormal PSM, an undefined
//!   command code, or a payload that does not parse as its code's structure;
//! * a **rejection** received packet is the target turning a packet down — an
//!   L2CAP Command Reject, or a response whose result code refuses the
//!   request (connection refused, configuration failed, move refused).

use l2cap::code::CommandCode;
use l2cap::command::Command;
use l2cap::packet::{parse_signaling, L2capFrame};
use l2cap::ranges::is_abnormal_psm;

/// Returns `true` if a frame transmitted on a BR/EDR link should be counted
/// as a malformed packet.
pub fn is_malformed(frame: &L2capFrame) -> bool {
    is_malformed_on(frame, btcore::LinkType::BrEdr)
}

/// Link-aware variant of [`is_malformed`]: on an LE link the credit-based
/// fields (SPSM, credits) are additionally checked against their abnormal
/// ranges.
pub fn is_malformed_on(frame: &L2capFrame, link: btcore::LinkType) -> bool {
    if !frame.cid.is_signaling() {
        // Data traffic is out of scope for the signalling fuzzers compared in
        // the paper.
        return false;
    }
    if !frame.is_length_consistent() {
        return true;
    }
    let Ok(packet) = parse_signaling(frame) else {
        return true;
    };
    is_malformed_signaling_on(&packet, link)
}

/// The signalling-layer half of [`is_malformed`] (BR/EDR), for callers that
/// already parsed the C-frame (the single-pass trace analysis parses each
/// record once and feeds every classifier from it).
pub fn is_malformed_signaling(packet: &l2cap::packet::SignalingPacket) -> bool {
    is_malformed_signaling_on(packet, btcore::LinkType::BrEdr)
}

/// The signalling-layer half of [`is_malformed_on`].
///
/// The LE credit-range checks only apply on an LE link: on BR/EDR the same
/// byte positions are plain application fields that legitimately hold zero
/// (e.g. a default-valued LE-family packet a classic fuzzer sends just to be
/// rejected), so classifying them by LE rules would skew classic metrics.
pub fn is_malformed_signaling_on(
    packet: &l2cap::packet::SignalingPacket,
    link: btcore::LinkType,
) -> bool {
    if !packet.is_length_consistent() || packet.garbage_len() > 0 {
        return true;
    }
    let Some(code) = CommandCode::from_u8(packet.code) else {
        return true;
    };
    // Structurally undecodable payload for a defined code (checked without
    // materializing the command — this runs per record of every trace).
    if !Command::structurally_valid(packet.code, &packet.data) {
        return true;
    }
    // Abnormal PSM values (Table IV) are malicious by construction.
    let core = l2cap::fields::extract_core_values(code, &packet.data);
    if let Some(psm) = core.psm {
        if is_abnormal_psm(psm) {
            return true;
        }
    }
    // The LE credit-based analogues: an SPSM outside the defined space or a
    // credit count from the zero-stall/overflow classes.
    if link.is_le() {
        let le = l2cap::fields::extract_le_values(code, &packet.data);
        if let Some(spsm) = le.spsm {
            if l2cap::ranges::is_abnormal_spsm(spsm) {
                return true;
            }
        }
        if let Some(credits) = le.credits {
            if l2cap::ranges::is_abnormal_credits(credits) {
                return true;
            }
        }
    }
    false
}

/// Returns `true` if a received frame is a rejection from the target.
pub fn is_rejection(frame: &L2capFrame) -> bool {
    if !frame.cid.is_signaling() {
        return false;
    }
    let Ok(packet) = parse_signaling(frame) else {
        return false;
    };
    is_rejection_signaling(&packet)
}

/// The signalling-layer half of [`is_rejection`], for callers that already
/// parsed the C-frame.
pub fn is_rejection_signaling(packet: &l2cap::packet::SignalingPacket) -> bool {
    // Only eight command kinds can ever express a rejection; everything else
    // skips decoding entirely (this runs per received record of every trace).
    match CommandCode::from_u8(packet.code) {
        Some(
            CommandCode::CommandReject
            | CommandCode::ConnectionResponse
            | CommandCode::CreateChannelResponse
            | CommandCode::ConfigureResponse
            | CommandCode::MoveChannelResponse
            | CommandCode::LeCreditBasedConnectionResponse
            | CommandCode::CreditBasedConnectionResponse
            | CommandCode::CreditBasedReconfigureResponse,
        ) => {}
        _ => return false,
    }
    match Command::decode_opt(packet.code, &packet.data) {
        Some(cmd) => is_rejection_command(&cmd),
        None => false,
    }
}

/// The decoded-command half of [`is_rejection_signaling`], for callers that
/// already hold typed commands (a live fuzzing loop classifies the parsed
/// responses of each send outcome without re-encoding them).
pub fn is_rejection_command(cmd: &Command) -> bool {
    match cmd {
        Command::CommandReject(_) => true,
        Command::ConnectionResponse(rsp) => rsp.result.is_refusal(),
        Command::CreateChannelResponse(rsp) => rsp.result.is_refusal(),
        Command::ConfigureResponse(rsp) => rsp.result.is_failure(),
        Command::MoveChannelResponse(rsp) => rsp.result.is_refusal(),
        // The LE credit-based responses carry a plain result word: non-zero
        // refuses the request.
        Command::LeCreditBasedConnectionResponse(rsp) => rsp.result != 0,
        Command::CreditBasedConnectionResponse(rsp) => rsp.result != 0,
        Command::CreditBasedReconfigureResponse(rsp) => rsp.result != 0,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::{Cid, Identifier, Psm};
    use l2cap::command::{
        CommandReject, ConfigureRequest, ConnectionRequest, ConnectionResponse, EchoRequest,
    };
    use l2cap::consts::{ConnectionResult, RejectReason};
    use l2cap::packet::{signaling_frame, SignalingPacket};

    #[test]
    fn well_formed_packets_are_not_malformed() {
        let frame = signaling_frame(
            Identifier(1),
            Command::ConnectionRequest(ConnectionRequest {
                psm: Psm::SDP,
                scid: Cid(0x0040),
            }),
        );
        assert!(!is_malformed(&frame));
        let frame = signaling_frame(
            Identifier(2),
            Command::EchoRequest(EchoRequest {
                data: vec![1, 2, 3],
            }),
        );
        assert!(!is_malformed(&frame));
        let frame = signaling_frame(
            Identifier(3),
            Command::ConfigureRequest(ConfigureRequest {
                dcid: Cid(0x0040),
                flags: 0,
                options: vec![],
            }),
        );
        assert!(!is_malformed(&frame));
    }

    #[test]
    fn garbage_tail_is_malformed() {
        let packet = SignalingPacket {
            identifier: Identifier(6),
            code: 0x04,
            declared_data_len: 8,
            data: vec![0x8F, 0x7B, 0, 0, 0, 0, 0, 0, 0xD2, 0x3A, 0x91, 0x0E].into(),
        };
        assert!(is_malformed(&packet.into_frame()));
    }

    #[test]
    fn abnormal_psm_is_malformed() {
        let frame = signaling_frame(
            Identifier(1),
            Command::ConnectionRequest(ConnectionRequest {
                psm: Psm(0x0101),
                scid: Cid(0x0040),
            }),
        );
        assert!(is_malformed(&frame));
    }

    #[test]
    fn undefined_code_and_broken_structure_are_malformed() {
        let frame = SignalingPacket::from_raw(Identifier(1), 0x7F, vec![1, 2]).into_frame();
        assert!(is_malformed(&frame));
        // Connection request with only one data byte.
        let frame = SignalingPacket::from_raw(Identifier(1), 0x02, vec![1]).into_frame();
        assert!(is_malformed(&frame));
    }

    #[test]
    fn inconsistent_frame_length_is_malformed() {
        let sig = SignalingPacket::new(
            Identifier(1),
            Command::EchoRequest(EchoRequest { data: vec![] }),
        );
        let frame = L2capFrame {
            declared_payload_len: 2,
            cid: Cid::SIGNALING,
            payload: sig.to_bytes().into(),
        };
        assert!(is_malformed(&frame));
    }

    #[test]
    fn data_frames_are_not_counted() {
        let frame = L2capFrame::new(Cid(0x0040), vec![0xFF; 32]);
        assert!(!is_malformed(&frame));
        assert!(!is_rejection(&frame));
    }

    #[test]
    fn le_credit_abnormalities_count_only_on_le_links() {
        use l2cap::command::LeCreditBasedConnectionRequest;
        // Zero credits and a zero SPSM: abnormal by LE rules, but on a
        // classic link the same bytes are inert application fields.
        let frame = signaling_frame(
            Identifier(1),
            Command::LeCreditBasedConnectionRequest(LeCreditBasedConnectionRequest {
                spsm: 0,
                scid: Cid(0x0040),
                mtu: 512,
                mps: 64,
                initial_credits: 0,
            }),
        );
        assert!(is_malformed_on(&frame, btcore::LinkType::Le));
        assert!(!is_malformed_on(&frame, btcore::LinkType::BrEdr));
        assert!(!is_malformed(&frame), "BR/EDR classification is unchanged");
        // A well-formed LE connect is clean on both.
        let frame = signaling_frame(
            Identifier(2),
            Command::LeCreditBasedConnectionRequest(LeCreditBasedConnectionRequest {
                spsm: 0x0080,
                scid: Cid(0x0040),
                mtu: 512,
                mps: 64,
                initial_credits: 8,
            }),
        );
        assert!(!is_malformed_on(&frame, btcore::LinkType::Le));
    }

    #[test]
    fn le_refusal_responses_are_rejections() {
        use l2cap::command::LeCreditBasedConnectionResponse;
        let refused = signaling_frame(
            Identifier(1),
            Command::LeCreditBasedConnectionResponse(LeCreditBasedConnectionResponse {
                dcid: Cid::NULL,
                mtu: 512,
                mps: 64,
                initial_credits: 0,
                result: 0x0002,
            }),
        );
        assert!(is_rejection(&refused));
        let accepted = signaling_frame(
            Identifier(2),
            Command::LeCreditBasedConnectionResponse(LeCreditBasedConnectionResponse {
                dcid: Cid(0x0041),
                mtu: 512,
                mps: 64,
                initial_credits: 8,
                result: 0,
            }),
        );
        assert!(!is_rejection(&accepted));
    }

    #[test]
    fn command_reject_is_a_rejection() {
        let frame = signaling_frame(
            Identifier(1),
            Command::CommandReject(CommandReject {
                reason: RejectReason::InvalidCidInRequest,
                data: vec![],
            }),
        );
        assert!(is_rejection(&frame));
    }

    #[test]
    fn refused_connection_response_is_a_rejection_but_success_is_not() {
        let refused = signaling_frame(
            Identifier(1),
            Command::ConnectionResponse(ConnectionResponse {
                dcid: Cid::NULL,
                scid: Cid(0x0040),
                result: ConnectionResult::RefusedPsmNotSupported,
                status: 0,
            }),
        );
        assert!(is_rejection(&refused));
        let success = signaling_frame(
            Identifier(1),
            Command::ConnectionResponse(ConnectionResponse {
                dcid: Cid(0x0041),
                scid: Cid(0x0040),
                result: ConnectionResult::Success,
                status: 0,
            }),
        );
        assert!(!is_rejection(&success));
    }

    #[test]
    fn echo_response_is_not_a_rejection() {
        let frame = signaling_frame(
            Identifier(1),
            Command::EchoResponse(l2cap::command::EchoResponse { data: vec![] }),
        );
        assert!(!is_rejection(&frame));
    }
}
