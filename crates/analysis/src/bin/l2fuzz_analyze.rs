//! `l2fuzz-analyze` — the gating protocol-model checker.
//!
//! Exhaustively verifies the L2CAP protocol model (reachability masks,
//! witness replay, derived fuzz plans, dead rows, asymmetries, and
//! vulnerability trigger certificates), optionally runs the source-level
//! invariant lints, prints a human report, and exits nonzero on any
//! unproven claim.
//!
//! ```text
//! l2fuzz-analyze [--lints] [--json PATH] [--pretty] [--root PATH]
//! ```

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use analysis::{run_lints, Allowlist, AnalysisReport};

struct Args {
    lints: bool,
    json: Option<PathBuf>,
    pretty: bool,
    root: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        lints: false,
        json: None,
        pretty: false,
        root: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--lints" => args.lints = true,
            "--pretty" => args.pretty = true,
            "--json" => {
                let path = it.next().ok_or("--json requires a path")?;
                args.json = Some(PathBuf::from(path));
            }
            "--root" => {
                let path = it.next().ok_or("--root requires a path")?;
                args.root = Some(PathBuf::from(path));
            }
            "--help" | "-h" => {
                println!(
                    "l2fuzz-analyze [--lints] [--json PATH] [--pretty] [--root PATH]\n\
                     \n\
                     Exhaustively model-checks the L2CAP protocol model and exits\n\
                     nonzero on any unproven reachability claim or lint violation.\n\
                     \n\
                     --lints       also run source-level invariant lints\n\
                     --json PATH   write the full report as JSON to PATH\n\
                     --pretty      pretty-print the JSON report\n\
                     --root PATH   repository root (default: walk up from cwd)"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Walks up from `start` until a directory containing `crates/btcore`
/// appears (the repository root).
fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("crates").join("btcore").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("l2fuzz-analyze: {msg}");
            return ExitCode::from(2);
        }
    };

    let lints = if args.lints {
        let start = args
            .root
            .clone()
            .or_else(|| std::env::current_dir().ok())
            .unwrap_or_else(|| PathBuf::from("."));
        let Some(root) = find_root(&start) else {
            eprintln!(
                "l2fuzz-analyze: could not locate the repository root from {} \
                 (pass --root)",
                start.display()
            );
            return ExitCode::from(2);
        };
        match run_lints(&root) {
            Ok(report) => Some(report),
            Err(err) => {
                eprintln!("l2fuzz-analyze: lint scan failed: {err}");
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };

    let report = AnalysisReport::run(&Allowlist::default(), lints);
    print!("{}", report.render_text());

    if let Some(path) = &args.json {
        let json = if args.pretty {
            serde_json::to_string_pretty_streamed(&report)
        } else {
            serde_json::to_string_streamed(&report)
        };
        if let Err(err) = std::fs::write(path, json + "\n") {
            eprintln!("l2fuzz-analyze: failed to write {}: {err}", path.display());
            return ExitCode::from(2);
        }
        println!("JSON report written to {}", path.display());
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
