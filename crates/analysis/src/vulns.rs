//! Reachability certificates for the seeded vulnerabilities.
//!
//! Every [`VulnerabilitySpec`] a device profile carries names the jobs and
//! commands that reach its defective code path.  The detector can only ever
//! find such a vulnerability if (a) at least one state of a triggering job
//! is initiator-reachable on a transport the device serves, and (b) at
//! least one triggering command is in the mutation set the session draws
//! from in that state (the job's generous valid commands).  This module
//! proves that for D1–D11: each certificate entry pairs a concrete
//! reachable state (with its minimal witness) and a concrete command the
//! mutator is allowed to send there.

use btcore::LinkType;
use btstack::profiles::DeviceProfile;
use btstack::vuln::VulnerabilitySpec;
use l2cap::code::CommandCode;
use l2cap::jobs::Job;
use l2cap::state::ChannelState;
use serde::{Deserialize, Serialize};
use serde_json::{JsonStreamWriter, StreamSerialize};

use crate::checks::Violation;
use crate::model::{witness, Witness};
use crate::plan::link_name;

/// One provable way to trigger a vulnerability: a reachable state whose
/// job the trigger names, and a triggering command the mutator may send
/// in that state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CertificateEntry {
    /// The reachable trigger state.
    pub state: ChannelState,
    /// The job the state belongs to.
    pub job: Job,
    /// A triggering command in the state's mutation set.
    pub command: CommandCode,
    /// The minimal witness sequence driving the target into `state`.
    pub witness: Witness,
}

impl StreamSerialize for CertificateEntry {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("state", &self.state)
            .field("job", &self.job)
            .field("command", &self.command)
            .field("witness", &self.witness)
            .end_object();
    }
}

/// The reachability certificate of one seeded vulnerability on one
/// transport of one device profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VulnCertificate {
    /// The device carrying the vulnerability (D1–D11).
    pub profile: String,
    /// The vulnerability's stable identifier.
    pub vuln_id: String,
    /// The transport this certificate covers.
    pub link: LinkType,
    /// Every provable (state, command) trigger pair.
    pub entries: Vec<CertificateEntry>,
}

impl StreamSerialize for VulnCertificate {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("profile", &self.profile)
            .field("vuln_id", &self.vuln_id)
            .field("link", &self.link)
            .field("entries", &self.entries)
            .end_object();
    }
}

/// The commands of `spec`'s trigger that the mutator may send in states of
/// `job` on `link` (an empty trigger command list means "any command").
fn triggering_commands(spec: &VulnerabilitySpec, job: Job, link: LinkType) -> Vec<CommandCode> {
    job.generous_valid_commands_on(link)
        .into_iter()
        .filter(|c| spec.trigger.commands.is_empty() || spec.trigger.commands.contains(c))
        .collect()
}

/// Builds the certificate for one spec on one transport.
fn certify_on(
    profile: &DeviceProfile,
    spec: &VulnerabilitySpec,
    link: LinkType,
) -> VulnCertificate {
    let jobs: Vec<Job> = if spec.trigger.jobs.is_empty() {
        Job::ALL.to_vec()
    } else {
        spec.trigger.jobs.clone()
    };
    let mut entries = Vec::new();
    for job in jobs {
        let commands = triggering_commands(spec, job, link);
        if commands.is_empty() {
            continue;
        }
        for &state in job.states() {
            let Some(w) = witness(state, link) else {
                continue;
            };
            for &command in &commands {
                entries.push(CertificateEntry {
                    state,
                    job,
                    command,
                    witness: w.clone(),
                });
            }
        }
    }
    VulnCertificate {
        profile: profile.id.to_string(),
        vuln_id: spec.id.clone(),
        link,
        entries,
    }
}

/// The transports a profile serves: its campaign link plus, for dual-mode
/// devices, the other transport.
fn served_links(profile: &DeviceProfile) -> Vec<LinkType> {
    let mut links = vec![profile.link_type];
    if profile.dual_mode {
        links.push(match profile.link_type {
            LinkType::BrEdr => LinkType::Le,
            LinkType::Le => LinkType::BrEdr,
        });
    }
    links
}

/// Certifies every seeded vulnerability of every profile (D1–D8 plus the
/// extended D9–D11) on every transport the device serves.  Returns the
/// certificates and the violations (a certificate with no entries means
/// the campaign can never trigger that vulnerability on that transport).
pub fn certify_vulnerabilities() -> (Vec<VulnCertificate>, Vec<Violation>) {
    let mut certificates = Vec::new();
    let mut violations = Vec::new();
    let mut profiles = DeviceProfile::all();
    profiles.extend(DeviceProfile::extended());
    for profile in &profiles {
        for spec in profile.vulnerabilities() {
            for link in served_links(profile) {
                let cert = certify_on(profile, &spec, link);
                if cert.entries.is_empty() {
                    violations.push(Violation {
                        check: "vuln-certificate".into(),
                        detail: format!(
                            "{}: {} has no reachable trigger (state, command) pair on {}",
                            cert.profile,
                            cert.vuln_id,
                            link_name(link)
                        ),
                    });
                }
                certificates.push(cert);
            }
        }
    }
    (certificates, violations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_seeded_vulnerability_has_a_certificate() {
        let (certs, violations) = certify_vulnerabilities();
        assert!(violations.is_empty(), "{violations:#?}");
        assert!(!certs.is_empty());
        for cert in &certs {
            assert!(
                !cert.entries.is_empty(),
                "{} / {}",
                cert.profile,
                cert.vuln_id
            );
        }
    }

    #[test]
    fn certificates_replay_through_the_machine() {
        let (certs, _) = certify_vulnerabilities();
        for cert in &certs {
            for entry in &cert.entries {
                assert!(entry.witness.replay(), "{} / {}", cert.vuln_id, entry.state);
                assert_eq!(entry.witness.state, entry.state);
                assert_eq!(l2cap::jobs::job_of(entry.state), entry.job);
            }
        }
    }

    #[test]
    fn dual_mode_profiles_are_certified_on_both_transports() {
        let (certs, _) = certify_vulnerabilities();
        let d10: Vec<_> = certs.iter().filter(|c| c.profile == "D10").collect();
        assert!(d10.iter().any(|c| c.link == LinkType::Le));
        assert!(d10.iter().any(|c| c.link == LinkType::BrEdr));
    }

    #[test]
    fn le_only_wearable_is_certified_over_le() {
        let (certs, _) = certify_vulnerabilities();
        let d9: Vec<_> = certs.iter().filter(|c| c.profile == "D9").collect();
        assert!(!d9.is_empty());
        assert!(d9.iter().all(|c| c.link == LinkType::Le));
    }
}
