//! Aggregated analysis report: model check + vulnerability certificates +
//! (optionally) source lints, rendered as human-readable text or streamed
//! JSON.

use std::fmt::Write as _;

use serde_json::{JsonStreamWriter, StreamSerialize};

use crate::checks::{check_model, Allowlist, ModelCheck, Violation};
use crate::lints::LintReport;
use crate::vulns::{certify_vulnerabilities, VulnCertificate};

/// Everything the analyzer proved (or failed to prove) in one run.
#[derive(Debug)]
pub struct AnalysisReport {
    /// The exhaustive model check: witnesses, plans, dead rows,
    /// asymmetries, and any violations.
    pub model: ModelCheck,
    /// One reachability certificate per served `(profile, vulnerability,
    /// link)` triple.
    pub certificates: Vec<VulnCertificate>,
    /// Violations raised while certifying (a vulnerability whose trigger
    /// state the model cannot reach).
    pub certificate_violations: Vec<Violation>,
    /// The source lint pass, when `--lints` was requested.
    pub lints: Option<LintReport>,
}

impl AnalysisReport {
    /// Runs the full analysis. `lints` carries the result of
    /// [`crate::lints::run_lints`] when the source pass was requested.
    pub fn run(allowlist: &Allowlist, lints: Option<LintReport>) -> Self {
        let model = check_model(allowlist);
        let (certificates, certificate_violations) = certify_vulnerabilities();
        AnalysisReport {
            model,
            certificates,
            certificate_violations,
            lints,
        }
    }

    /// The per-state plan index: for every derived fuzz plan, how long the
    /// model's minimal witness to that state is and how much of it the
    /// guide's prelude actually replays.  This is the quick answer to "how
    /// deep is each state" an operator reads off the JSON report.
    pub fn plan_index(&self) -> Vec<PlanIndexEntry> {
        self.model
            .plans
            .iter()
            .map(|plan| PlanIndexEntry {
                state: plan.state,
                link: plan.link,
                kind: format!("{:?}", plan.kind),
                witness_len: crate::model::witness(plan.state, plan.link)
                    .map_or(0, |w| w.inputs.len()),
                prelude_len: plan.prelude.len(),
            })
            .collect()
    }

    /// `true` when every claim was proven and no lint fired.
    pub fn is_clean(&self) -> bool {
        self.model.violations.is_empty()
            && self.certificate_violations.is_empty()
            && self.lints.as_ref().is_none_or(|l| l.findings.is_empty())
    }

    /// All gating problems, flattened for display.
    pub fn problems(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .model
            .violations
            .iter()
            .chain(&self.certificate_violations)
            .map(|v| format!("[{}] {}", v.check, v.detail))
            .collect();
        if let Some(lints) = &self.lints {
            out.extend(
                lints
                    .findings
                    .iter()
                    .map(|f| format!("[lint:{}] {}:{}: {}", f.lint, f.file, f.line, f.message)),
            );
        }
        out
    }

    /// The human-readable report.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "l2fuzz-analyze: protocol model check");
        let _ = writeln!(s, "====================================");
        for (link, count) in [("BR/EDR", 13usize), ("LE", 5usize)] {
            let witnesses = self
                .model
                .witnesses
                .iter()
                .filter(|w| crate::plan::link_name(w.link) == link)
                .count();
            let _ = writeln!(
                s,
                "{link}: {witnesses} reachable states (expected {count}), all with replayable \
                 minimal witnesses"
            );
        }
        let _ = writeln!(
            s,
            "fuzz plans derived: {} (all validated against the state machine)",
            self.model.plans.len()
        );
        let _ = writeln!(
            s,
            "dead transition rows: {} (all pinned in the allowlist)",
            self.model.dead_rows.len()
        );
        let _ = writeln!(
            s,
            "BR/EDR vs LE asymmetries: {} (all pinned in the allowlist)",
            self.model.asymmetries.len()
        );
        for a in &self.model.asymmetries {
            let _ = writeln!(
                s,
                "  ({:?}, {:?}): BR/EDR {:?} vs LE {:?}",
                a.state, a.code, a.bredr, a.le
            );
        }
        let _ = writeln!(
            s,
            "vulnerability certificates: {} across {} profiles",
            self.certificates.len(),
            self.certificates
                .iter()
                .map(|c| c.profile.as_str())
                .collect::<std::collections::BTreeSet<_>>()
                .len()
        );
        if let Some(lints) = &self.lints {
            let _ = writeln!(
                s,
                "lints: {} files scanned, {} pinned panic sites, {} parity-checked impls, \
                 {} advisory index sites",
                lints.files_scanned, lints.allowed_panics, lints.parity_checked, lints.index_sites
            );
        }
        let problems = self.problems();
        if problems.is_empty() {
            let _ = writeln!(s, "RESULT: clean — every reachability claim is proven");
        } else {
            let _ = writeln!(s, "RESULT: {} violation(s)", problems.len());
            for p in &problems {
                let _ = writeln!(s, "  {p}");
            }
        }
        s
    }
}

/// One row of [`AnalysisReport::plan_index`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanIndexEntry {
    /// The state the plan drives toward.
    pub state: l2cap::state::ChannelState,
    /// The transport.
    pub link: btcore::LinkType,
    /// The plan's kind (`Debug` rendering of [`crate::plan::PlanKind`]).
    pub kind: String,
    /// Length of the model's minimal witness to `state` (0 for `CLOSED`).
    pub witness_len: usize,
    /// Length of the plan's guide-replayable prelude.
    pub prelude_len: usize,
}

impl StreamSerialize for PlanIndexEntry {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("state", &self.state)
            .field("link", &self.link)
            .field("kind", &self.kind)
            .field("witness_len", &self.witness_len)
            .field("prelude_len", &self.prelude_len)
            .end_object();
    }
}

// analyzer: allow(parity) — streams the computed `clean` verdict, the
// derived `plan_index`, and inlines the optional LintReport as a nested
// object, so the key list intentionally differs from the struct's field
// list.
impl StreamSerialize for AnalysisReport {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object();
        w.key("model");
        self.model.stream(w);
        w.key("plan_index").begin_array();
        for entry in self.plan_index() {
            entry.stream(w);
        }
        w.end_array();
        w.key("certificates").begin_array();
        for cert in &self.certificates {
            cert.stream(w);
        }
        w.end_array();
        w.key("certificate_violations").begin_array();
        for v in &self.certificate_violations {
            v.stream(w);
        }
        w.end_array();
        w.key("lints");
        match &self.lints {
            Some(lints) => {
                w.begin_object()
                    .field("files_scanned", &lints.files_scanned)
                    .field("allowed_panics", &lints.allowed_panics)
                    .field("parity_checked", &lints.parity_checked)
                    .field("index_sites", &lints.index_sites);
                w.key("findings").begin_array();
                for f in &lints.findings {
                    f.stream(w);
                }
                w.end_array();
                w.end_object();
            }
            None => {
                w.null();
            }
        }
        w.key("clean").bool(self.is_clean());
        w.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_analysis_is_clean() {
        let report = AnalysisReport::run(&Allowlist::default(), None);
        assert!(report.is_clean(), "{:#?}", report.problems());
        assert_eq!(report.model.witnesses.len(), 18);
        assert!(!report.certificates.is_empty());
    }

    #[test]
    fn text_report_mentions_the_verdict() {
        let report = AnalysisReport::run(&Allowlist::default(), None);
        let text = report.render_text();
        assert!(text.contains("RESULT: clean"));
        assert!(text.contains("BR/EDR: 13 reachable states"));
        assert!(text.contains("LE: 5 reachable states"));
    }

    #[test]
    fn empty_allowlist_is_reported_dirty() {
        let report = AnalysisReport::run(&Allowlist::empty(), None);
        assert!(!report.is_clean());
        assert!(report.render_text().contains("violation(s)"));
    }

    #[test]
    fn json_report_round_trips_as_valid_json() {
        let report = AnalysisReport::run(&Allowlist::default(), None);
        let json = serde_json::to_string_streamed(&report);
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        assert_eq!(value.get("clean"), Some(&serde_json::Value::Bool(true)));
        let witnesses = value
            .get("model")
            .and_then(|m| m.get("witnesses"))
            .expect("model.witnesses present");
        assert!(witnesses.as_array().is_ok_and(|w| w.len() == 18));
    }

    #[test]
    fn plan_index_reports_per_state_witness_lengths() {
        let report = AnalysisReport::run(&Allowlist::default(), None);
        let index = report.plan_index();
        // One entry per derived plan: every reachable (state, link) pair.
        assert_eq!(index.len(), report.model.plans.len());
        assert_eq!(index.len(), 18);
        for entry in &index {
            // CLOSED is the initial state; everything else needs a witness.
            if entry.state == l2cap::state::ChannelState::Closed {
                assert_eq!(entry.witness_len, 0);
            } else {
                assert!(entry.witness_len > 0, "{entry:?}");
            }
            // Kind-specific shape: closed-fuzzing plans send no prelude,
            // and an at-rest plan replays exactly the minimal witness.
            match entry.kind.as_str() {
                "ClosedFuzzing" => assert_eq!(entry.prelude_len, 0, "{entry:?}"),
                "AtRest" => assert_eq!(entry.prelude_len, entry.witness_len, "{entry:?}"),
                _ => {}
            }
        }

        // And the JSON report carries the index.
        let json = serde_json::to_string_streamed(&report);
        let value: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let rows = value.get("plan_index").expect("plan_index present");
        let rows = rows.as_array().expect("plan_index is an array");
        assert_eq!(rows.len(), 18);
        assert!(rows.iter().all(|r| {
            r.get("witness_len").is_some()
                && r.get("prelude_len").is_some()
                && r.get("state").is_some()
                && r.get("kind").is_some()
        }));
    }
}
