//! Static model checker for the L2CAP protocol model.
//!
//! The fuzzer's effectiveness rests on claims the rest of the workspace
//! merely asserts: that the `REACHABLE_FROM_INITIATOR` masks in
//! `l2cap::state` list exactly the states an initiator-driven
//! [`StateMachine`](l2cap::StateMachine) can rest in, that the state
//! guide's hand-written command sequences actually reach the states they
//! claim to, and that every seeded vulnerability's trigger state is
//! reachable on every transport its device profile serves.  This crate
//! *proves* those claims by exhaustive search instead of trusting them:
//!
//! * [`model`] — breadth-first exploration of `spec_transition` for both
//!   link types, with the deployed `StateMachine` as the stepping
//!   primitive, yielding the true reachable set and a minimal replayable
//!   [`Witness`] per reachable state.
//! * [`plan`] — derivation of guide-executable [`FuzzPlan`]s from the
//!   witnesses, so the fuzzer's state guide is generated from the model
//!   rather than maintained by hand.
//! * [`checks`] — mask parity, witness replay, plan validation, dead
//!   transition rows, and BR/EDR-vs-LE asymmetries, diffed against a pinned
//!   [`Allowlist`].
//! * [`vulns`] — a reachability certificate for every `(profile,
//!   vulnerability, link)` triple the campaign can serve.
//! * [`lints`] — source-level invariant lints (panicking operations in
//!   hot-path crates, `StreamSerialize` field parity).
//! * [`report`] — the aggregate [`AnalysisReport`] with text and JSON
//!   renderings, exposed by the `l2fuzz-analyze` binary and gating CI.

#![forbid(unsafe_code)]

pub mod checks;
pub mod lints;
pub mod model;
pub mod plan;
pub mod report;
pub mod vulns;

pub use checks::{check_model, ActionClass, Allowlist, Asymmetry, DeadRow, ModelCheck, Violation};
pub use lints::{run_lints, LintFinding, LintReport, HOT_PATH_CRATES};
pub use model::{witness, witnesses, Exploration, Input, LinkModel, Witness};
pub use plan::{fuzz_plan, fuzz_plans, validate_plan, FuzzPlan, PlanKind, GUIDE_SENDABLE};
pub use report::{AnalysisReport, PlanIndexEntry};
pub use vulns::{certify_vulnerabilities, CertificateEntry, VulnCertificate};
