//! Guide-plan synthesis: deriving the state guide's driving sequences from
//! the computed witnesses.
//!
//! The fuzzer's state guide used to hand-maintain one command sequence per
//! initiator-reachable state.  This module derives those sequences from the
//! model instead: each [`FuzzPlan`] is built from the minimal witness of its
//! target state and a small, explicit parking policy, and the analyzer
//! verifies every plan against the machine (the prelude must replay to the
//! parking state, and the target must either be visited by the prelude or
//! be one job-valid command away from the park).
//!
//! ## Parking policy
//!
//! A witness proves reachability; a *plan* must additionally leave the
//! target somewhere useful to fuzz from.  Three rules bridge the gap:
//!
//! 1. **Connection-shaped jobs park closed.**  The closed and connection
//!    jobs are entered from `CLOSED` by the very connect commands the
//!    mutator sends, so the empty prelude is the anchor.  The creation job
//!    exercises its witness once (so `WAIT_CREATE` is visited) and tears
//!    the channel down again, because creation traffic is also sent against
//!    a closed channel.
//! 2. **Teardown jobs park open.**  A disconnection witness destroys the
//!    channel it proves reachability with, so the plan anchors at `OPEN` —
//!    every disconnection-job command sent from there passes through
//!    `WAIT_DISCONNECT` on the target.
//! 3. **Everything else follows its witness.**  The prelude is the longest
//!    prefix of the witness the guide can materialize as normal packets;
//!    the park is wherever that prefix rests.  If the full witness rests in
//!    the target state the plan is *at rest*; if the target is only passed
//!    through (`WAIT_SEND_CONFIG`, the LE `WAIT_CONFIG` dip) the plan is a
//!    *pass-through*; if the witness tail is not guide-sendable (e.g. the
//!    `WAIT_CONFIG_REQ_RSP` witness ends in a bare Command Reject, and the
//!    guide has no sender for Move Confirmation Requests) the trimmed plan
//!    parks one job-valid command short of the target.

use std::collections::BTreeMap;
use std::sync::OnceLock;

use btcore::LinkType;
use l2cap::code::CommandCode;
use l2cap::jobs::{job_of, Job};
use l2cap::state::{ChannelState, StateMachine};
use serde::{Deserialize, Serialize};
use serde_json::{JsonStreamWriter, StreamSerialize};

use crate::model::{link_model, step, Input, LinkModel, Witness};

/// The commands the state guide can materialize as normal driving packets
/// (each has a concrete sender on `StateGuide`).
pub const GUIDE_SENDABLE: [CommandCode; 8] = [
    CommandCode::ConnectionRequest,
    CommandCode::CreateChannelRequest,
    CommandCode::DisconnectionRequest,
    CommandCode::ConfigureRequest,
    CommandCode::ConfigureResponse,
    CommandCode::MoveChannelRequest,
    CommandCode::LeCreditBasedConnectionRequest,
    CommandCode::CreditBasedReconfigureRequest,
];

/// Returns `true` if the guide has a sender for this command.
pub fn guide_sendable(code: CommandCode) -> bool {
    GUIDE_SENDABLE.contains(&code)
}

/// How a plan relates its target state to its parking state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanKind {
    /// No channel is opened; the mutator's own connect-shaped traffic
    /// enters the target state from `CLOSED`.
    ClosedFuzzing,
    /// The prelude exercises the target state once, then returns to
    /// `CLOSED` and fuzzes from there (the creation job).
    ExerciseThenClose,
    /// The prelude rests the target machine exactly in the target state.
    AtRest,
    /// The prelude visits the target state transiently and rests nearby.
    PassThrough,
    /// The prelude parks one job-valid command short of the target state.
    OneStepFromPark,
}

/// A verified driving sequence for one `(state, link)` pair: send
/// `prelude` (in order, as normal packets), ending with the target's
/// channel machine resting in `park`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuzzPlan {
    /// The state this plan drives toward.
    pub state: ChannelState,
    /// The transport the plan runs on.
    pub link: LinkType,
    /// Commands the guide sends, in order.
    pub prelude: Vec<CommandCode>,
    /// The state the target's machine rests in after the prelude.
    pub park: ChannelState,
    /// The relationship between `park` and `state`.
    pub kind: PlanKind,
}

impl FuzzPlan {
    /// `true` if the plan fuzzes without an open channel (the mutated
    /// packets themselves carry the connect-shaped traffic).
    pub fn parks_closed(&self) -> bool {
        self.park == ChannelState::Closed
    }

    /// Replays the prelude through a fresh production machine.
    pub fn replay_machine(&self) -> StateMachine {
        let mut machine = StateMachine::for_link(self.link);
        for &code in &self.prelude {
            machine.advance(code, true);
        }
        machine
    }
}

impl StreamSerialize for FuzzPlan {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("state", &self.state)
            .field("link", &self.link)
            .field("prelude", &self.prelude)
            .field("park", &self.park)
            .field("kind", &format!("{:?}", self.kind))
            .end_object();
    }
}

/// The guide-expressible prefix of a witness: its codes up to (not
/// including) the first input that is refused or has no guide sender.
fn sendable_prefix(witness: &Witness) -> Vec<CommandCode> {
    witness
        .inputs
        .iter()
        .take_while(|i| i.accept && guide_sendable(i.code))
        .map(|i| i.code)
        .collect()
}

/// The state a fresh machine rests in after sending `prelude`.
fn rest_after(link: LinkType, prelude: &[CommandCode]) -> ChannelState {
    let mut machine = StateMachine::for_link(link);
    for &code in prelude {
        machine.advance(code, true);
    }
    machine.state()
}

fn derive_plan(state: ChannelState, link: LinkType, model: &LinkModel) -> Option<FuzzPlan> {
    let witness = model.witness(state)?;
    match job_of(state) {
        // Rule 1: connect-shaped jobs fuzz against a closed channel.
        Job::Closed | Job::Connection => Some(FuzzPlan {
            state,
            link,
            prelude: Vec::new(),
            park: ChannelState::Closed,
            kind: PlanKind::ClosedFuzzing,
        }),
        Job::Creation => {
            let mut prelude = sendable_prefix(model.witness(ChannelState::WaitCreate)?);
            prelude.push(CommandCode::DisconnectionRequest);
            Some(FuzzPlan {
                state,
                link,
                prelude,
                park: ChannelState::Closed,
                kind: PlanKind::ExerciseThenClose,
            })
        }
        // Rule 2: teardown traffic needs a live channel; anchor at OPEN.
        Job::Disconnection => Some(FuzzPlan {
            state,
            link,
            prelude: sendable_prefix(model.witness(ChannelState::Open)?),
            park: ChannelState::Open,
            kind: PlanKind::OneStepFromPark,
        }),
        // Rule 3: follow the witness as far as the guide can express it.
        Job::Configuration | Job::Open | Job::Move => {
            let prelude = sendable_prefix(witness);
            let park = rest_after(link, &prelude);
            let kind = if prelude.len() < witness.inputs.len() {
                PlanKind::OneStepFromPark
            } else if park == state {
                PlanKind::AtRest
            } else {
                PlanKind::PassThrough
            };
            Some(FuzzPlan {
                state,
                link,
                prelude,
                park,
                kind,
            })
        }
    }
}

/// Every plan for the given transport, keyed by target state (computed
/// once per process; only initiator-reachable states have plans).
pub fn fuzz_plans(link: LinkType) -> &'static BTreeMap<ChannelState, FuzzPlan> {
    static BREDR: OnceLock<BTreeMap<ChannelState, FuzzPlan>> = OnceLock::new();
    static LE: OnceLock<BTreeMap<ChannelState, FuzzPlan>> = OnceLock::new();
    let build = move || {
        let model = link_model(link);
        ChannelState::ALL
            .iter()
            .filter_map(|&s| derive_plan(s, link, model).map(|p| (s, p)))
            .collect()
    };
    match link {
        LinkType::BrEdr => BREDR.get_or_init(build),
        LinkType::Le => LE.get_or_init(build),
    }
}

/// The verified driving plan for `(state, link)`, if the state is
/// initiator-reachable on that transport.  This is the API the fuzzer's
/// state guide executes — the hand-written per-state sequences it replaces
/// are certified equivalent by `tests/model_analysis.rs`.
pub fn fuzz_plan(state: ChannelState, link: LinkType) -> Option<&'static FuzzPlan> {
    fuzz_plans(link).get(&state)
}

/// Validates one plan against the machine; returns human-readable
/// problems (empty = valid).
pub fn validate_plan(plan: &FuzzPlan) -> Vec<String> {
    let mut problems = Vec::new();
    for &code in &plan.prelude {
        if !guide_sendable(code) {
            problems.push(format!(
                "{} plan for {} contains {code:?}, which the guide cannot send",
                link_name(plan.link),
                plan.state
            ));
        }
    }
    let machine = plan.replay_machine();
    if machine.state() != plan.park {
        problems.push(format!(
            "{} plan for {} rests in {} instead of its declared park {}",
            link_name(plan.link),
            plan.state,
            machine.state(),
            plan.park
        ));
        return problems;
    }
    let visited_by_prelude = machine.visited().contains(&plan.state);
    let one_step = job_of(plan.state)
        .generous_valid_commands_on(plan.link)
        .iter()
        .any(|&code| {
            let edge = step(
                plan.link,
                plan.link == LinkType::BrEdr,
                plan.park,
                Input::accepted(code),
            );
            edge.visited.contains(&plan.state) || edge.rest == plan.state
        });
    if !visited_by_prelude && !one_step {
        problems.push(format!(
            "{} plan for {} parks in {} but the target is neither visited by the \
             prelude nor one job-valid command away",
            link_name(plan.link),
            plan.state,
            plan.park
        ));
    }
    problems
}

pub(crate) fn link_name(link: LinkType) -> &'static str {
    match link {
        LinkType::BrEdr => "BR/EDR",
        LinkType::Le => "LE",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_reachable_state_has_a_valid_plan() {
        for link in [LinkType::BrEdr, LinkType::Le] {
            for state in ChannelState::ALL {
                let reachable = state.reachable_from_initiator_on(link);
                let plan = fuzz_plan(state, link);
                assert_eq!(plan.is_some(), reachable, "{state} on {link:?}");
                if let Some(plan) = plan {
                    assert!(
                        validate_plan(plan).is_empty(),
                        "{state} on {link:?}: {:?}",
                        validate_plan(plan)
                    );
                }
            }
        }
    }

    #[test]
    fn derived_plans_match_the_historical_guide_sequences() {
        use CommandCode as C;
        let seq = |state: ChannelState, link: LinkType| -> Vec<C> {
            fuzz_plan(state, link).expect("reachable").prelude.clone()
        };
        // BR/EDR (the hand-written `drive_to` sequences of PR 2–5).
        assert_eq!(seq(ChannelState::Closed, LinkType::BrEdr), vec![]);
        assert_eq!(seq(ChannelState::WaitConnect, LinkType::BrEdr), vec![]);
        assert_eq!(
            seq(ChannelState::WaitCreate, LinkType::BrEdr),
            vec![C::CreateChannelRequest, C::DisconnectionRequest]
        );
        assert_eq!(
            seq(ChannelState::WaitConfig, LinkType::BrEdr),
            vec![C::ConnectionRequest]
        );
        assert_eq!(
            seq(ChannelState::WaitConfigReqRsp, LinkType::BrEdr),
            vec![C::ConnectionRequest]
        );
        assert_eq!(
            seq(ChannelState::WaitConfigReq, LinkType::BrEdr),
            vec![C::ConnectionRequest, C::ConfigureResponse]
        );
        assert_eq!(
            seq(ChannelState::WaitConfigRsp, LinkType::BrEdr),
            vec![C::ConnectionRequest, C::ConfigureRequest]
        );
        assert_eq!(
            seq(ChannelState::WaitSendConfig, LinkType::BrEdr),
            vec![
                C::ConnectionRequest,
                C::ConfigureRequest,
                C::ConfigureResponse,
                C::ConfigureRequest
            ]
        );
        let open = vec![
            C::ConnectionRequest,
            C::ConfigureRequest,
            C::ConfigureResponse,
        ];
        assert_eq!(seq(ChannelState::Open, LinkType::BrEdr), open);
        assert_eq!(seq(ChannelState::WaitDisconnect, LinkType::BrEdr), open);
        let moved = vec![
            C::ConnectionRequest,
            C::ConfigureRequest,
            C::ConfigureResponse,
            C::MoveChannelRequest,
        ];
        assert_eq!(seq(ChannelState::WaitMove, LinkType::BrEdr), moved);
        assert_eq!(seq(ChannelState::WaitMoveConfirm, LinkType::BrEdr), moved);
        assert_eq!(seq(ChannelState::WaitConfirmRsp, LinkType::BrEdr), moved);
        // LE (the `drive_to_le` sequences of PR 5).
        assert_eq!(seq(ChannelState::Closed, LinkType::Le), vec![]);
        assert_eq!(seq(ChannelState::WaitConnect, LinkType::Le), vec![]);
        assert_eq!(
            seq(ChannelState::WaitConfig, LinkType::Le),
            vec![
                C::LeCreditBasedConnectionRequest,
                C::CreditBasedReconfigureRequest
            ]
        );
        assert_eq!(
            seq(ChannelState::Open, LinkType::Le),
            vec![C::LeCreditBasedConnectionRequest]
        );
        assert_eq!(
            seq(ChannelState::WaitDisconnect, LinkType::Le),
            vec![C::LeCreditBasedConnectionRequest]
        );
    }

    #[test]
    fn plan_kinds_record_the_parking_relationship() {
        assert_eq!(
            fuzz_plan(ChannelState::Open, LinkType::BrEdr).unwrap().kind,
            PlanKind::AtRest
        );
        assert_eq!(
            fuzz_plan(ChannelState::WaitSendConfig, LinkType::BrEdr)
                .unwrap()
                .kind,
            PlanKind::PassThrough
        );
        assert_eq!(
            fuzz_plan(ChannelState::WaitConfigReqRsp, LinkType::BrEdr)
                .unwrap()
                .kind,
            PlanKind::OneStepFromPark
        );
        assert_eq!(
            fuzz_plan(ChannelState::WaitDisconnect, LinkType::Le)
                .unwrap()
                .kind,
            PlanKind::OneStepFromPark
        );
        assert!(!fuzz_plan(ChannelState::WaitConfig, LinkType::Le)
            .unwrap()
            .parks_closed());
    }
}
