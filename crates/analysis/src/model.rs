//! Exhaustive exploration of the protocol model — no packets on the air.
//!
//! The state space is tiny (19 states × 26 commands × 2 link types), so the
//! model checker can afford to be exact: a breadth-first search over the
//! *resting* states of [`StateMachine`], where one edge is "park a machine
//! in state `r`, feed it one input, record every state the machine visits
//! while handling it and the state it comes to rest in".  Stepping goes
//! through [`StateMachine::advance`] itself — the same code the simulated
//! devices and the coverage replay execute — so the exploration certifies
//! the implementation, not a re-derived copy of its semantics.
//!
//! Because edges are explored in breadth-first order and inputs in numeric
//! command order, the first witness recorded for a state is a *minimal*
//! command sequence (and the lexicographically least among the minimal
//! ones), which makes witnesses stable across runs and usable as the state
//! guide's driving sequences.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use btcore::LinkType;
use l2cap::code::CommandCode;
use l2cap::state::{ChannelState, StateMachine};
use serde::{Deserialize, Serialize};
use serde_json::{JsonStreamWriter, StreamSerialize};

/// One input fed to the machine: a received signalling command plus the
/// upper layer's accept/refuse decision for connection-establishing
/// requests (`accept` is ignored by every other command).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Input {
    /// The signalling command the target receives.
    pub code: CommandCode,
    /// Whether the upper layer accepts a connection/creation request.
    pub accept: bool,
}

impl Input {
    /// An accepted command (the common case; minimal witnesses never need a
    /// refusal, since a refused connect only revisits states the accepting
    /// path reaches anyway).
    pub fn accepted(code: CommandCode) -> Input {
        Input { code, accept: true }
    }
}

impl StreamSerialize for Input {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("code", &self.code)
            .field("accept", &self.accept)
            .end_object();
    }
}

/// A replayable command sequence proving a `(state, link)` pair reachable:
/// feeding `inputs` into a fresh [`StateMachine::for_link`] machine visits
/// `state`.  [`Witness::replay`] re-executes exactly that check.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Witness {
    /// The state this witness reaches.
    pub state: ChannelState,
    /// The transport the witness drives.
    pub link: LinkType,
    /// The minimal input sequence; empty for the initial `CLOSED` state.
    pub inputs: Vec<Input>,
}

impl Witness {
    /// Replays the witness through a fresh production machine and returns
    /// the machine, so callers can inspect both the visited set and the
    /// resting state.
    pub fn replay_machine(&self) -> StateMachine {
        let mut machine = StateMachine::for_link(self.link);
        for input in &self.inputs {
            machine.advance(input.code, input.accept);
        }
        machine
    }

    /// Returns `true` if replaying the witness through
    /// [`StateMachine::advance`] visits [`Witness::state`] — the
    /// reachability certificate.
    pub fn replay(&self) -> bool {
        self.replay_machine().visited().contains(&self.state)
    }

    /// The state the machine rests in after the full witness.
    pub fn resting_state(&self) -> ChannelState {
        self.replay_machine().state()
    }

    /// The command codes of the witness, in order.
    pub fn codes(&self) -> Vec<CommandCode> {
        self.inputs.iter().map(|i| i.code).collect()
    }
}

impl StreamSerialize for Witness {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("state", &self.state)
            .field("link", &self.link)
            .field("inputs", &self.inputs)
            .end_object();
    }
}

/// The connection-establishing requests whose `accept = false` path exists
/// on the given link (the refusable connects of
/// `StateMachine::on_command`).
fn refusable_connects(link: LinkType) -> &'static [CommandCode] {
    match link {
        LinkType::BrEdr => &[
            CommandCode::ConnectionRequest,
            CommandCode::CreateChannelRequest,
        ],
        LinkType::Le => &[
            CommandCode::LeCreditBasedConnectionRequest,
            CommandCode::CreditBasedConnectionRequest,
        ],
    }
}

/// Every input the exploration feeds the machine, in deterministic order:
/// all 26 commands accepted (numeric order), then the link's refusable
/// connects refused.
pub fn all_inputs(link: LinkType) -> Vec<Input> {
    let mut inputs: Vec<Input> = CommandCode::ALL
        .iter()
        .copied()
        .map(Input::accepted)
        .collect();
    inputs.extend(refusable_connects(link).iter().map(|&code| Input {
        code,
        accept: false,
    }));
    inputs
}

/// One explored edge: parking a machine in `from` and feeding it `input`
/// visits `visited` (in order, excluding `from` itself) and rests in `rest`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// The resting state the input was fed in.
    pub from: ChannelState,
    /// The input fed.
    pub input: Input,
    /// States newly visited while handling the input, in visit order.
    pub visited: Vec<ChannelState>,
    /// The state the machine comes to rest in.
    pub rest: ChannelState,
}

/// Parks a production machine in `state` and feeds it one input.
pub fn step(link: LinkType, eager: bool, state: ChannelState, input: Input) -> Edge {
    let mut machine = StateMachine::at(state, link).with_eager(eager);
    machine.advance(input.code, input.accept);
    Edge {
        from: state,
        input,
        visited: machine.visited()[1..].to_vec(),
        rest: machine.state(),
    }
}

/// The result of exhaustively exploring one machine variant: the true
/// reachable set with a minimal witness per state, the set of resting
/// states, and every explored edge.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// The transport explored.
    pub link: LinkType,
    /// Whether the machine initiates its own Configuration Request.
    pub eager: bool,
    /// Minimal witness per reachable state (visited at least once over any
    /// input word), in state order.
    pub witnesses: BTreeMap<ChannelState, Witness>,
    /// States the machine can come to *rest* in (a strict subset of the
    /// reachable set: pass-through states are visited but never rested in).
    pub resting: BTreeSet<ChannelState>,
    /// Every edge explored from a resting state.
    pub edges: Vec<Edge>,
}

impl Exploration {
    /// Breadth-first exploration of one machine variant from `CLOSED`.
    pub fn run(link: LinkType, eager: bool) -> Exploration {
        let inputs = all_inputs(link);
        let mut witnesses = BTreeMap::new();
        witnesses.insert(
            ChannelState::Closed,
            Witness {
                state: ChannelState::Closed,
                link,
                inputs: Vec::new(),
            },
        );
        let mut resting = BTreeSet::new();
        resting.insert(ChannelState::Closed);
        let mut words: BTreeMap<ChannelState, Vec<Input>> = BTreeMap::new();
        words.insert(ChannelState::Closed, Vec::new());
        let mut queue = VecDeque::new();
        queue.push_back(ChannelState::Closed);
        let mut edges = Vec::new();

        while let Some(from) = queue.pop_front() {
            let word = words.get(&from).cloned().unwrap_or_default();
            for &input in &inputs {
                let edge = step(link, eager, from, input);
                for &visited in &edge.visited {
                    witnesses.entry(visited).or_insert_with(|| {
                        let mut inputs = word.clone();
                        inputs.push(input);
                        Witness {
                            state: visited,
                            link,
                            inputs,
                        }
                    });
                }
                if resting.insert(edge.rest) {
                    let mut inputs = word.clone();
                    inputs.push(input);
                    words.insert(edge.rest, inputs);
                    queue.push_back(edge.rest);
                }
                edges.push(edge);
            }
        }

        Exploration {
            link,
            eager,
            witnesses,
            resting,
            edges,
        }
    }

    /// The reachable set, in `ChannelState::ALL` order.
    pub fn reachable(&self) -> Vec<ChannelState> {
        ChannelState::ALL
            .iter()
            .copied()
            .filter(|s| self.witnesses.contains_key(s))
            .collect()
    }
}

/// The certified model of one transport: the deployed machine variant
/// (eager configuration on BR/EDR, plain on LE) that witnesses and guide
/// plans are derived from, plus — on BR/EDR — the non-eager variant, whose
/// resting states keep the `WAIT_SEND_CONFIG` rows live.
#[derive(Debug, Clone)]
pub struct LinkModel {
    /// The transport modelled.
    pub link: LinkType,
    /// The deployed variant (eager on BR/EDR).
    pub deployed: Exploration,
    /// The non-eager variant ([`StateMachine::without_eager_config`]);
    /// `None` on LE, where eager configuration does not exist.
    pub non_eager: Option<Exploration>,
}

impl LinkModel {
    /// Explores the given transport.
    pub fn compute(link: LinkType) -> LinkModel {
        let deployed = Exploration::run(link, link == LinkType::BrEdr);
        let non_eager = match link {
            LinkType::BrEdr => Some(Exploration::run(link, false)),
            LinkType::Le => None,
        };
        LinkModel {
            link,
            deployed,
            non_eager,
        }
    }

    /// Minimal witness for `state` on this transport, if reachable (from
    /// the deployed variant).
    pub fn witness(&self, state: ChannelState) -> Option<&Witness> {
        self.deployed.witnesses.get(&state)
    }

    /// States the machine can rest in, in *either* variant.
    pub fn resting_union(&self) -> BTreeSet<ChannelState> {
        let mut resting = self.deployed.resting.clone();
        if let Some(non_eager) = &self.non_eager {
            resting.extend(non_eager.resting.iter().copied());
        }
        resting
    }
}

/// The two-transport model, computed once per process.
pub fn link_model(link: LinkType) -> &'static LinkModel {
    use std::sync::OnceLock;
    static BREDR: OnceLock<LinkModel> = OnceLock::new();
    static LE: OnceLock<LinkModel> = OnceLock::new();
    match link {
        LinkType::BrEdr => BREDR.get_or_init(|| LinkModel::compute(LinkType::BrEdr)),
        LinkType::Le => LE.get_or_init(|| LinkModel::compute(LinkType::Le)),
    }
}

/// Minimal witness for `(state, link)`, if the state is reachable by an
/// initiator — the public entry point the fuzzer-side consumers use.
pub fn witness(state: ChannelState, link: LinkType) -> Option<&'static Witness> {
    link_model(link).witness(state)
}

/// Every computed witness for the given transport, in state order.
pub fn witnesses(link: LinkType) -> &'static BTreeMap<ChannelState, Witness> {
    &link_model(link).deployed.witnesses
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bredr_reachable_set_matches_the_paper() {
        let model = link_model(LinkType::BrEdr);
        let reachable = model.deployed.reachable();
        assert_eq!(reachable.len(), 13);
        assert_eq!(
            reachable,
            ChannelState::REACHABLE_FROM_INITIATOR
                .iter()
                .copied()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn le_reachable_set_has_five_states() {
        let model = link_model(LinkType::Le);
        assert_eq!(model.deployed.reachable().len(), 5);
    }

    #[test]
    fn every_witness_replays() {
        for link in [LinkType::BrEdr, LinkType::Le] {
            for w in witnesses(link).values() {
                assert!(w.replay(), "{} witness on {:?} must replay", w.state, link);
            }
        }
    }

    #[test]
    fn witnesses_are_minimal_and_deterministic() {
        // OPEN needs the full three-step configuration handshake on BR/EDR
        // and a single connect on LE; the BFS tie-break picks the
        // lexicographically least sequence.
        let open = witness(ChannelState::Open, LinkType::BrEdr).unwrap();
        assert_eq!(
            open.codes(),
            vec![
                CommandCode::ConnectionRequest,
                CommandCode::ConfigureRequest,
                CommandCode::ConfigureResponse,
            ]
        );
        let open_le = witness(ChannelState::Open, LinkType::Le).unwrap();
        assert_eq!(
            open_le.codes(),
            vec![CommandCode::LeCreditBasedConnectionRequest]
        );
    }

    #[test]
    fn non_eager_variant_rests_in_wait_send_config() {
        let model = link_model(LinkType::BrEdr);
        let non_eager = model.non_eager.as_ref().unwrap();
        assert!(non_eager.resting.contains(&ChannelState::WaitSendConfig));
        assert!(!model
            .deployed
            .resting
            .contains(&ChannelState::WaitSendConfig));
    }

    #[test]
    fn responder_states_stay_unreachable() {
        for s in [
            ChannelState::WaitConnectRsp,
            ChannelState::WaitCreateRsp,
            ChannelState::WaitMoveRsp,
            ChannelState::WaitIndFinalRsp,
            ChannelState::WaitFinalRsp,
            ChannelState::WaitControlInd,
        ] {
            assert!(witness(s, LinkType::BrEdr).is_none());
            assert!(witness(s, LinkType::Le).is_none());
        }
    }
}
