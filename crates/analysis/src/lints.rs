//! Source-level invariant lints: the two invariants most likely to rot
//! silently.
//!
//! - **Panic lint** (gating): no `.unwrap()` / `.expect(` in non-test code
//!   of the hot-path crates (`btcore`, `l2cap`, `hci`, `core`).  A site
//!   that is genuinely infallible is pinned with an
//!   `// analyzer: allow(panic) — <why>` comment within the five lines
//!   above it; the justification lives next to the code it defends.
//! - **Parity lint** (gating): every manual
//!   [`StreamSerialize`](serde_json::StreamSerialize) impl that writes
//!   object fields must keep exact, ordered field parity with its struct
//!   definition — the streaming path and the derived serde path must
//!   produce the same document forever.
//! - **Index lint** (advisory): counts non-literal indexing expressions in
//!   the hot-path crates.  Reported in the JSON output as a trend metric;
//!   never fails the analyzer.
//!
//! The lints are line-based scanners, not parsers: precise enough for this
//! codebase's formatting (rustfmt-clean, tests in a trailing
//! `#[cfg(test)]` module) and cheap enough to gate CI on.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};
use serde_json::{JsonStreamWriter, StreamSerialize};

/// The crates whose non-test code must not panic (they sit on the
/// per-packet path of every campaign).
pub const HOT_PATH_CRATES: [&str; 4] = ["btcore", "l2cap", "hci", "core"];

/// How many lines above a panicking operation an
/// `analyzer: allow(panic)` marker is honored.
const ALLOW_LOOKBACK: usize = 5;

/// One lint finding (gating).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintFinding {
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which lint fired (`panic` or `stream-parity`).
    pub lint: String,
    /// What is wrong.
    pub message: String,
}

impl StreamSerialize for LintFinding {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("file", &self.file)
            .field("line", &self.line)
            .field("lint", &self.lint)
            .field("message", &self.message)
            .end_object();
    }
}

/// The result of the full lint pass.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Gating findings (panic + parity); any of these fails the analyzer.
    pub findings: Vec<LintFinding>,
    /// Advisory count of non-literal indexing sites in hot-path crates.
    pub index_sites: usize,
    /// Number of panic sites pinned with an allow marker.
    pub allowed_panics: usize,
    /// Number of manual `StreamSerialize` impls whose field lists were
    /// verified against their struct definitions.
    pub parity_checked: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
}

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

fn relative_to(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

/// `true` for lines the scanners skip entirely: comments and attributes.
fn is_comment_or_attr(trimmed: &str) -> bool {
    trimmed.starts_with("//") || trimmed.starts_with("#[") || trimmed.starts_with("#![")
}

fn has_allow_marker(lines: &[&str], index: usize, marker: &str) -> bool {
    let start = index.saturating_sub(ALLOW_LOOKBACK);
    lines[start..=index].iter().any(|l| l.contains(marker))
}

/// Scans one file for panicking operations outside the test module.
fn panic_lint(root: &Path, path: &Path, source: &str, report: &mut LintReport) {
    let lines: Vec<&str> = source.lines().collect();
    let mut in_tests = false;
    for (i, raw) in lines.iter().enumerate() {
        if raw.contains("#[cfg(test)]") {
            in_tests = true;
        }
        if in_tests {
            continue;
        }
        let trimmed = raw.trim_start();
        if is_comment_or_attr(trimmed) {
            continue;
        }
        let panicking = raw.contains(".unwrap()") || raw.contains(".expect(");
        if !panicking {
            continue;
        }
        if has_allow_marker(&lines, i, "analyzer: allow(panic") {
            report.allowed_panics += 1;
            continue;
        }
        report.findings.push(LintFinding {
            file: relative_to(root, path),
            line: i + 1,
            lint: "panic".into(),
            message: "unwrap/expect in non-test hot-path code (pin with \
                      `analyzer: allow(panic) — <why>` if infallible)"
                .into(),
        });
    }
}

/// `true` if `index_expr` (the text between `[` and `]`) is a plain
/// numeric literal or a full-range slice — indexing that cannot panic on
/// malformed input.
fn is_literal_index(index_expr: &str) -> bool {
    let e = index_expr.trim();
    !e.is_empty() && e.chars().all(|c| c.is_ascii_digit() || c == '_') || e == ".."
}

/// Counts non-literal indexing sites (advisory).
fn index_lint(source: &str, report: &mut LintReport) {
    let mut in_tests = false;
    for raw in source.lines() {
        if raw.contains("#[cfg(test)]") {
            in_tests = true;
        }
        if in_tests {
            continue;
        }
        let trimmed = raw.trim_start();
        if is_comment_or_attr(trimmed) {
            continue;
        }
        let bytes = raw.as_bytes();
        for (i, &b) in bytes.iter().enumerate() {
            if b != b'[' || i == 0 {
                continue;
            }
            let prev = bytes[i - 1] as char;
            if !(prev.is_ascii_alphanumeric() || prev == '_' || prev == ')' || prev == ']') {
                continue;
            }
            let Some(close) = raw[i + 1..].find(']') else {
                continue;
            };
            let inner = &raw[i + 1..i + 1 + close];
            if !is_literal_index(inner) {
                report.index_sites += 1;
            }
        }
    }
}

/// An ordered field list extracted from a struct definition or a
/// `StreamSerialize` impl.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FieldList {
    line: usize,
    fields: Vec<String>,
}

/// Extracts `name -> ordered field idents` for every braced struct in the
/// file, honoring `#[serde(skip)]` (field excluded) and
/// `#[serde(rename = "...")]` (renamed).
fn struct_fields(source: &str) -> Vec<(String, FieldList)> {
    let mut out = Vec::new();
    let mut lines = source.lines().enumerate().peekable();
    while let Some((i, line)) = lines.next() {
        let trimmed = line.trim_start();
        let Some(rest) = trimmed
            .strip_prefix("pub struct ")
            .or_else(|| trimmed.strip_prefix("struct "))
        else {
            continue;
        };
        let Some(name) = rest.split(['<', ' ', '{', '(']).next() else {
            continue;
        };
        if !rest.contains('{') {
            continue; // tuple/unit struct
        }
        let mut fields = Vec::new();
        let mut skip_next = false;
        let mut rename_next: Option<String> = None;
        for (_, body) in lines.by_ref() {
            let t = body.trim();
            if t == "}" {
                break;
            }
            if t.starts_with("#[serde") {
                if t.contains("skip") {
                    skip_next = true;
                }
                if let Some(r) = t.split("rename = \"").nth(1) {
                    rename_next = r.split('"').next().map(str::to_owned);
                }
                continue;
            }
            if t.starts_with("//") || t.starts_with("#[") {
                continue;
            }
            let decl = t.strip_prefix("pub ").unwrap_or(t);
            let Some((ident, _ty)) = decl.split_once(':') else {
                continue;
            };
            let ident = ident.trim();
            if ident.contains(|c: char| !(c.is_ascii_alphanumeric() || c == '_')) {
                continue;
            }
            if skip_next {
                skip_next = false;
                rename_next = None;
                continue;
            }
            fields.push(rename_next.take().unwrap_or_else(|| ident.to_owned()));
        }
        out.push((
            name.to_owned(),
            FieldList {
                line: i + 1,
                fields,
            },
        ));
    }
    out
}

/// Extracts `type name -> ordered .field("...") keys` for every manual
/// `StreamSerialize` impl in the file (impls that stream no object fields
/// are scalar encodings and are skipped).
fn stream_impl_fields(source: &str) -> Vec<(String, FieldList)> {
    let mut out = Vec::new();
    let lines: Vec<&str> = source.lines().collect();
    let mut i = 0;
    while i < lines.len() {
        let trimmed = lines[i].trim_start();
        let is_impl = trimmed.starts_with("impl StreamSerialize for ")
            || trimmed.starts_with("impl serde_json::StreamSerialize for ");
        if !is_impl {
            i += 1;
            continue;
        }
        // An impl that deliberately diverges from the struct shape (computed
        // fields, inlined sub-objects) opts out with a justification comment.
        if has_allow_marker(&lines, i, "analyzer: allow(parity)") {
            i += 1;
            continue;
        }
        let name = trimmed
            .rsplit(" for ")
            .next()
            .unwrap_or("")
            .split(['<', ' ', '{'])
            .next()
            .unwrap_or("")
            .to_owned();
        let impl_line = i + 1;
        let mut depth = 0usize;
        let mut opened = false;
        let mut fields = Vec::new();
        while i < lines.len() {
            let line = lines[i];
            for key in extract_keys(line) {
                fields.push(key);
            }
            depth += line.matches('{').count();
            depth = depth.saturating_sub(line.matches('}').count());
            if depth > 0 {
                opened = true;
            }
            if opened && depth == 0 {
                break;
            }
            i += 1;
        }
        if !fields.is_empty() {
            out.push((
                name,
                FieldList {
                    line: impl_line,
                    fields,
                },
            ));
        }
        i += 1;
    }
    out
}

/// The string arguments of `.field("...")` and `.key("...")` calls on one
/// line, in document order.
fn extract_keys(line: &str) -> Vec<String> {
    let bytes = line.as_bytes();
    let mut keys = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let rest = &bytes[i..];
        let Some(pattern) = [b".field(\"".as_slice(), b".key(\"".as_slice()]
            .into_iter()
            .find(|p| rest.starts_with(p))
        else {
            i += 1;
            continue;
        };
        let tail = &rest[pattern.len()..];
        if let Some(end) = tail.iter().position(|&b| b == b'"') {
            keys.push(String::from_utf8_lossy(&tail[..end]).into_owned());
            i += pattern.len() + end + 1;
        } else {
            i += pattern.len();
        }
    }
    keys
}

/// Checks field parity between manual `StreamSerialize` impls and their
/// struct definitions, crate-locally.
fn parity_lint(root: &Path, crate_dir: &Path, report: &mut LintReport) -> io::Result<()> {
    let src = crate_dir.join("src");
    if !src.is_dir() {
        return Ok(());
    }
    let mut files = Vec::new();
    rust_files(&src, &mut files)?;
    let mut structs: Vec<(String, FieldList)> = Vec::new();
    let mut impls: Vec<(PathBuf, String, FieldList)> = Vec::new();
    for path in &files {
        let source = fs::read_to_string(path)?;
        structs.extend(struct_fields(&source));
        for (name, list) in stream_impl_fields(&source) {
            impls.push((path.clone(), name, list));
        }
    }
    for (path, name, impl_fields) in impls {
        let Some((_, struct_def)) = structs.iter().find(|(n, _)| *n == name) else {
            continue; // enum or out-of-crate type; nothing to compare
        };
        report.parity_checked += 1;
        if impl_fields.fields != struct_def.fields {
            report.findings.push(LintFinding {
                file: relative_to(root, &path),
                line: impl_fields.line,
                lint: "stream-parity".into(),
                message: format!(
                    "StreamSerialize impl for {name} streams fields {:?} but the struct \
                     declares {:?} — the streaming and derived documents have diverged",
                    impl_fields.fields, struct_def.fields
                ),
            });
        }
    }
    Ok(())
}

/// Runs every lint over the repository rooted at `root`.
pub fn run_lints(root: &Path) -> io::Result<LintReport> {
    let mut report = LintReport::default();
    for krate in HOT_PATH_CRATES {
        let src = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        rust_files(&src, &mut files)?;
        for path in &files {
            let source = fs::read_to_string(path)?;
            report.files_scanned += 1;
            panic_lint(root, path, &source, &mut report);
            index_lint(&source, &mut report);
        }
    }
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        parity_lint(root, &crate_dir, &mut report)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_lint_flags_unmarked_sites_and_honors_markers() {
        let source = "fn f() {\n\
                      let a = x.unwrap();\n\
                      // analyzer: allow(panic) — guarded above\n\
                      let b = y.expect(\"ok\");\n\
                      }\n\
                      #[cfg(test)]\n\
                      mod tests { fn g() { z.unwrap(); } }\n";
        let mut report = LintReport::default();
        panic_lint(Path::new("/r"), Path::new("/r/a.rs"), source, &mut report);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].line, 2);
        assert_eq!(report.allowed_panics, 1);
    }

    #[test]
    fn index_lint_counts_only_non_literal_indexing() {
        let source = "fn f() {\n\
                      let a = xs[0];\n\
                      let b = xs[i];\n\
                      let c = xs[i + 1];\n\
                      let d = &xs[..];\n\
                      let e: [u8; 4] = [0; 4];\n\
                      }\n";
        let mut report = LintReport::default();
        index_lint(source, &mut report);
        assert_eq!(report.index_sites, 2);
    }

    #[test]
    fn parity_mismatch_is_detected() {
        let source = "pub struct P {\n\
                      pub a: u8,\n\
                      pub b: u8,\n\
                      }\n\
                      impl StreamSerialize for P {\n\
                      fn stream(&self, w: &mut JsonStreamWriter) {\n\
                      w.begin_object().field(\"a\", &self.a).end_object();\n\
                      }\n\
                      }\n";
        let structs = struct_fields(source);
        assert_eq!(structs[0].1.fields, vec!["a", "b"]);
        let impls = stream_impl_fields(source);
        assert_eq!(impls[0].1.fields, vec!["a"]);
    }

    #[test]
    fn serde_skip_and_rename_are_honored() {
        let source = "pub struct Q {\n\
                      #[serde(skip)]\n\
                      pub hidden: u8,\n\
                      #[serde(rename = \"visible\")]\n\
                      pub shown: u8,\n\
                      }\n";
        let structs = struct_fields(source);
        assert_eq!(structs[0].1.fields, vec!["visible"]);
    }

    #[test]
    fn repo_lints_run_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("analysis crate lives at crates/analysis");
        let report = run_lints(root).expect("lint scan");
        assert!(report.findings.is_empty(), "{:#?}", report.findings);
        assert!(report.files_scanned > 0);
        assert!(report.parity_checked > 0);
    }
}
