//! Model certification: the invariants `l2fuzz-analyze` gates CI on.
//!
//! Four families of checks run against the explored model:
//!
//! 1. **Mask parity** — the computed reachable sets must equal the claimed
//!    `REACHABLE_FROM_INITIATOR` / `REACHABLE_FROM_INITIATOR_LE` masks in
//!    both directions (no unprovable claim, no undocumented reachability).
//! 2. **Witness replay** — every computed witness must replay through
//!    [`StateMachine::advance`](l2cap::state::StateMachine::advance) and
//!    visit its state.
//! 3. **Plan validity** — every reachable state must have a guide plan
//!    whose prelude replays to its parking state and whose target is either
//!    visited by the prelude or one job-valid command from the park.
//! 4. **Table liveness** — dead transition rows (handling rows of states
//!    the machine can never rest in) and BR/EDR↔LE accept/reject
//!    asymmetries must match [`Allowlist::default`] *exactly*: a flagged
//!    row without an allowlist entry is a violation, and so is a stale
//!    allowlist entry that no longer corresponds to a flagged row.

use btcore::LinkType;
use l2cap::code::CommandCode;
use l2cap::state::{spec_transition, Action, ChannelState};
use serde::{Deserialize, Serialize};
use serde_json::{JsonStreamWriter, StreamSerialize};

use crate::model::{link_model, Witness};
use crate::plan::{fuzz_plans, link_name, validate_plan, FuzzPlan};

/// A violated invariant; any of these fails the analyzer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// The check family that fired.
    pub check: String,
    /// Human-readable description of the violated invariant.
    pub detail: String,
}

impl StreamSerialize for Violation {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("check", &self.check)
            .field("detail", &self.detail)
            .end_object();
    }
}

/// A transition-table row whose source state the machine can never rest
/// in, so the row can never execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DeadRow {
    /// The transport whose table arm carries the row.
    pub link: LinkType,
    /// The row's source state.
    pub state: ChannelState,
    /// The row's command.
    pub code: CommandCode,
}

impl StreamSerialize for DeadRow {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("link", &self.link)
            .field("state", &self.state)
            .field("code", &self.code)
            .end_object();
    }
}

/// How a table arm treats a command, coarsened to the classes the
/// asymmetry check compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ActionClass {
    /// The command is served (a response or self-initiated request).
    Accept,
    /// The command is silently consumed.
    Ignore,
    /// The command draws a Command Reject.
    Reject,
}

impl ActionClass {
    fn of(action: Action) -> ActionClass {
        match action {
            Action::Respond(_) | Action::Initiate(_) => ActionClass::Accept,
            Action::Ignore => ActionClass::Ignore,
            Action::Reject(_) => ActionClass::Reject,
        }
    }
}

/// A command both transports consider valid, served differently by the
/// two table arms in a state both transports can rest in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Asymmetry {
    /// The state both transports rest in.
    pub state: ChannelState,
    /// The command treated differently.
    pub code: CommandCode,
    /// How the BR/EDR arm treats it.
    pub bredr: ActionClass,
    /// How the LE arm treats it.
    pub le: ActionClass,
}

impl StreamSerialize for Asymmetry {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("state", &self.state)
            .field("code", &self.code)
            .field("bredr", &format!("{:?}", self.bredr))
            .field("le", &format!("{:?}", self.le))
            .end_object();
    }
}

/// The pinned-intentional findings: dead rows and asymmetries the repo
/// keeps deliberately, each justified by a comment at the flagged site in
/// `crates/l2cap/src/state.rs`.  The analyzer requires the flagged set and
/// this list to match exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allowlist {
    /// Dead rows pinned intentional.
    pub dead_rows: Vec<DeadRow>,
    /// Cross-arm asymmetries pinned intentional.
    pub asymmetries: Vec<(ChannelState, CommandCode)>,
}

impl Allowlist {
    /// An allowlist that pins nothing — every dead row and asymmetry in
    /// the model becomes a violation.  Useful to enumerate the full set.
    pub fn empty() -> Self {
        Allowlist {
            dead_rows: Vec::new(),
            asymmetries: Vec::new(),
        }
    }
}

impl Default for Allowlist {
    fn default() -> Self {
        use ChannelState as S;
        use CommandCode as C;
        Allowlist {
            // The paper's Table II rows for states an initiator only passes
            // through; kept verbatim for defensive completeness (see the
            // "Dead rows, pinned intentional" comment in state.rs).
            dead_rows: vec![
                DeadRow {
                    link: LinkType::BrEdr,
                    state: S::WaitConnect,
                    code: C::ConnectionRequest,
                },
                DeadRow {
                    link: LinkType::BrEdr,
                    state: S::WaitCreate,
                    code: C::CreateChannelRequest,
                },
                DeadRow {
                    link: LinkType::BrEdr,
                    state: S::WaitDisconnect,
                    code: C::DisconnectionRequest,
                },
                DeadRow {
                    link: LinkType::BrEdr,
                    state: S::WaitMove,
                    code: C::MoveChannelRequest,
                },
                DeadRow {
                    link: LinkType::BrEdr,
                    state: S::WaitConfirmRsp,
                    code: C::MoveChannelConfirmationResponse,
                },
                DeadRow {
                    link: LinkType::Le,
                    state: S::WaitConnect,
                    code: C::LeCreditBasedConnectionRequest,
                },
                DeadRow {
                    link: LinkType::Le,
                    state: S::WaitConnect,
                    code: C::CreditBasedConnectionRequest,
                },
                DeadRow {
                    link: LinkType::Le,
                    state: S::WaitDisconnect,
                    code: C::DisconnectionRequest,
                },
            ],
            // The enhanced credit-based family is served only on LE (see
            // the "Cross-arm asymmetries, pinned intentional" note on
            // `spec_transition_le`).
            asymmetries: vec![
                (S::Closed, C::CreditBasedConnectionRequest),
                (S::Open, C::FlowControlCreditInd),
                (S::Open, C::CreditBasedReconfigureRequest),
                (S::Open, C::CreditBasedReconfigureResponse),
            ],
        }
    }
}

/// Returns `true` if the command's transition is the same stay-in-place
/// form in every state (the echo/information/reject noise rows, and the
/// wrong-transport rejections) — such rows carry no per-state intent and
/// are excluded from dead-row analysis.
fn state_independent(code: CommandCode, link: LinkType) -> bool {
    let reference = spec_transition(ChannelState::ALL[0], code, link);
    ChannelState::ALL.iter().all(|&s| {
        let t = spec_transition(s, code, link);
        t.next == s && t.passes_through.is_empty() && t.action == reference.action
    })
}

/// Returns `true` if the row does something state-specific: serves the
/// command, moves the machine, or passes through intermediate states.
fn is_intent_row(state: ChannelState, code: CommandCode, link: LinkType) -> bool {
    let t = spec_transition(state, code, link);
    matches!(t.action, Action::Respond(_) | Action::Initiate(_))
        || t.next != state
        || !t.passes_through.is_empty()
}

/// Computes every dead row of one table arm: intent rows whose source
/// state is not restable in *any* machine variant of that transport
/// (eager and non-eager on BR/EDR).
pub fn dead_rows(link: LinkType) -> Vec<DeadRow> {
    let restable = link_model(link).resting_union();
    let mut rows = Vec::new();
    for &state in &ChannelState::ALL {
        if restable.contains(&state) {
            continue;
        }
        for &code in &CommandCode::ALL {
            if state_independent(code, link) {
                continue;
            }
            if is_intent_row(state, code, link) {
                rows.push(DeadRow { link, state, code });
            }
        }
    }
    rows
}

/// Computes every cross-arm asymmetry: commands valid on both transports
/// that the two arms serve with different action classes, in states both
/// transports can rest in.
pub fn asymmetries() -> Vec<Asymmetry> {
    let bredr_restable = link_model(LinkType::BrEdr).resting_union();
    let le_restable = link_model(LinkType::Le).resting_union();
    let mut found = Vec::new();
    for &state in &ChannelState::ALL {
        if !bredr_restable.contains(&state) || !le_restable.contains(&state) {
            continue;
        }
        for &code in &CommandCode::ALL {
            if !code.valid_on(LinkType::BrEdr) || !code.valid_on(LinkType::Le) {
                continue;
            }
            let bredr = ActionClass::of(spec_transition(state, code, LinkType::BrEdr).action);
            let le = ActionClass::of(spec_transition(state, code, LinkType::Le).action);
            if bredr != le {
                found.push(Asymmetry {
                    state,
                    code,
                    bredr,
                    le,
                });
            }
        }
    }
    found
}

/// The full model-certification result.
#[derive(Debug, Clone)]
pub struct ModelCheck {
    /// Reachable states per transport, with their minimal witnesses.
    pub witnesses: Vec<Witness>,
    /// Guide plans per transport.
    pub plans: Vec<FuzzPlan>,
    /// Every dead row found (all expected to be allowlisted).
    pub dead_rows: Vec<DeadRow>,
    /// Every asymmetry found (all expected to be allowlisted).
    pub asymmetries: Vec<Asymmetry>,
    /// Violated invariants; empty means the model certifies clean.
    pub violations: Vec<Violation>,
}

impl StreamSerialize for ModelCheck {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object();
        w.key("witnesses").begin_array();
        for witness in &self.witnesses {
            witness.stream(w);
        }
        w.end_array();
        w.key("plans").begin_array();
        for plan in &self.plans {
            plan.stream(w);
        }
        w.end_array();
        w.key("dead_rows").begin_array();
        for row in &self.dead_rows {
            row.stream(w);
        }
        w.end_array();
        w.key("asymmetries").begin_array();
        for asym in &self.asymmetries {
            asym.stream(w);
        }
        w.end_array();
        w.key("violations").begin_array();
        for v in &self.violations {
            v.stream(w);
        }
        w.end_array();
        w.end_object();
    }
}

fn claimed_mask(link: LinkType) -> &'static [ChannelState] {
    match link {
        LinkType::BrEdr => &ChannelState::REACHABLE_FROM_INITIATOR,
        LinkType::Le => &ChannelState::REACHABLE_FROM_INITIATOR_LE,
    }
}

/// Runs every model-certification check against the given allowlist.
pub fn check_model(allowlist: &Allowlist) -> ModelCheck {
    let mut violations = Vec::new();
    let mut witnesses = Vec::new();
    let mut plans = Vec::new();

    for link in [LinkType::BrEdr, LinkType::Le] {
        let model = link_model(link);
        let computed = model.deployed.reachable();
        let claimed = claimed_mask(link);

        // 1. Mask parity, both directions.
        for &state in claimed {
            if !computed.contains(&state) {
                violations.push(Violation {
                    check: "mask-parity".into(),
                    detail: format!(
                        "{} mask claims {state} reachable but the model cannot prove it",
                        link_name(link)
                    ),
                });
            }
        }
        for &state in &computed {
            if !claimed.contains(&state) {
                violations.push(Violation {
                    check: "mask-parity".into(),
                    detail: format!(
                        "model reaches {state} on {} but the mask does not claim it",
                        link_name(link)
                    ),
                });
            }
        }

        // 2. Witness replay.
        for witness in model.deployed.witnesses.values() {
            if !witness.replay() {
                violations.push(Violation {
                    check: "witness-replay".into(),
                    detail: format!(
                        "{} witness for {} does not replay through StateMachine",
                        link_name(link),
                        witness.state
                    ),
                });
            }
            witnesses.push(witness.clone());
        }

        // 3. Plan validity.
        for &state in claimed {
            match fuzz_plans(link).get(&state) {
                None => violations.push(Violation {
                    check: "plan-validity".into(),
                    detail: format!(
                        "no guide plan for reachable state {state} on {}",
                        link_name(link)
                    ),
                }),
                Some(plan) => {
                    for problem in validate_plan(plan) {
                        violations.push(Violation {
                            check: "plan-validity".into(),
                            detail: problem,
                        });
                    }
                    plans.push(plan.clone());
                }
            }
        }
    }

    // 4. Table liveness vs. the allowlist, both directions.
    let mut all_dead = dead_rows(LinkType::BrEdr);
    all_dead.extend(dead_rows(LinkType::Le));
    for row in &all_dead {
        if !allowlist.dead_rows.contains(row) {
            violations.push(Violation {
                check: "dead-row".into(),
                detail: format!(
                    "dead transition row ({}, {}, {:?}) is not pinned in the allowlist",
                    link_name(row.link),
                    row.state,
                    row.code
                ),
            });
        }
    }
    for pinned in &allowlist.dead_rows {
        if !all_dead.contains(pinned) {
            violations.push(Violation {
                check: "dead-row".into(),
                detail: format!(
                    "stale allowlist entry: ({}, {}, {:?}) is no longer a dead row",
                    link_name(pinned.link),
                    pinned.state,
                    pinned.code
                ),
            });
        }
    }

    let found_asymmetries = asymmetries();
    for asym in &found_asymmetries {
        if !allowlist.asymmetries.contains(&(asym.state, asym.code)) {
            violations.push(Violation {
                check: "asymmetry".into(),
                detail: format!(
                    "cross-arm asymmetry at ({}, {:?}) — BR/EDR {:?} vs LE {:?} — is not \
                     pinned in the allowlist",
                    asym.state, asym.code, asym.bredr, asym.le
                ),
            });
        }
    }
    for &(state, code) in &allowlist.asymmetries {
        if !found_asymmetries
            .iter()
            .any(|a| a.state == state && a.code == code)
        {
            violations.push(Violation {
                check: "asymmetry".into(),
                detail: format!(
                    "stale allowlist entry: ({state}, {code:?}) is no longer asymmetric"
                ),
            });
        }
    }

    ModelCheck {
        witnesses,
        plans,
        dead_rows: all_dead,
        asymmetries: found_asymmetries,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_certifies_clean_with_the_default_allowlist() {
        let check = check_model(&Allowlist::default());
        assert!(
            check.violations.is_empty(),
            "unexpected violations: {:#?}",
            check.violations
        );
        // 13 BR/EDR + 5 LE witnesses and plans.
        assert_eq!(check.witnesses.len(), 18);
        assert_eq!(check.plans.len(), 18);
    }

    #[test]
    fn dead_rows_are_exactly_the_pinned_eight() {
        let mut all = dead_rows(LinkType::BrEdr);
        all.extend(dead_rows(LinkType::Le));
        assert_eq!(all.len(), 8, "dead rows: {all:#?}");
        let pinned = Allowlist::default().dead_rows;
        for row in &all {
            assert!(pinned.contains(row), "unpinned dead row {row:?}");
        }
    }

    #[test]
    fn asymmetries_are_exactly_the_enhanced_credit_family() {
        let found = asymmetries();
        assert_eq!(found.len(), 4, "asymmetries: {found:#?}");
        for asym in &found {
            assert_eq!(asym.bredr, ActionClass::Reject, "{asym:?}");
            assert_ne!(asym.le, ActionClass::Reject, "{asym:?}");
        }
    }

    #[test]
    fn an_empty_allowlist_fails_the_check() {
        let check = check_model(&Allowlist {
            dead_rows: Vec::new(),
            asymmetries: Vec::new(),
        });
        assert_eq!(check.violations.len(), 12);
    }

    #[test]
    fn stale_allowlist_entries_are_violations() {
        let mut allowlist = Allowlist::default();
        allowlist.dead_rows.push(DeadRow {
            link: LinkType::BrEdr,
            state: ChannelState::Open,
            code: CommandCode::ConfigureRequest,
        });
        let check = check_model(&allowlist);
        assert_eq!(check.violations.len(), 1);
        assert!(check.violations[0].detail.contains("stale"));
    }
}
