//! Bluetooth 5.2 L2CAP protocol substrate.
//!
//! This crate implements the protocol knowledge the paper's fuzzer and its
//! simulated targets share:
//!
//! * [`code`] — the 26 signalling command codes of Bluetooth 5.2 (§II-A).
//! * [`packet`] — the L2CAP basic header and signalling (C-frame) framing of
//!   Fig. 3, including encode/decode to raw bytes.
//! * [`command`] — typed payloads for every signalling command, plus a
//!   loss-less [`command::Command`] enum that survives malformed inputs.
//! * [`options`] — configuration options (MTU, QoS, retransmission mode, …)
//!   carried by Configure Request/Response.
//! * [`consts`] — result, status, reject-reason and information-type codes.
//! * [`fields`] — the paper's field classification (Fig. 6): fixed,
//!   dependent, mutable-core and mutable-application fields for every
//!   command, with byte-accurate layouts.
//! * [`ranges`] — Table IV: the abnormal PSM ranges and the CIDP range used
//!   by core-field mutation.
//! * [`state`] — the 19-state channel state machine of Fig. 2, with the
//!   event/action tables the acceptor follows (Table II).
//! * [`jobs`] — the paper's clustering of states into seven jobs and the
//!   valid-command map (Tables I and III).
//!
//! # Quick example
//!
//! ```
//! use l2cap::command::{Command, ConnectionRequest};
//! use l2cap::packet::SignalingPacket;
//! use btcore::{Cid, Identifier, Psm};
//!
//! let cmd = Command::ConnectionRequest(ConnectionRequest {
//!     psm: Psm::SDP,
//!     scid: Cid(0x0040),
//! });
//! let pkt = SignalingPacket::new(Identifier(1), cmd);
//! let bytes = pkt.to_bytes();
//! let back = SignalingPacket::parse(&bytes).unwrap();
//! assert_eq!(pkt, back);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod code;
pub mod command;
pub mod consts;
pub mod fields;
pub mod jobs;
pub mod json;
pub mod options;
pub mod packet;
pub mod ranges;
pub mod state;

pub use code::CommandCode;
pub use command::Command;
pub use fields::{FieldClass, FieldName, FieldSpec};
pub use jobs::Job;
pub use packet::{L2capFrame, SignalingPacket, DEFAULT_SIGNALING_MTU};
pub use state::{ChannelState, StateEvent, StateMachine};
