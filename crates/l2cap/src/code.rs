//! Signalling command codes.
//!
//! Bluetooth 5.2 defines 26 L2CAP signalling commands (§II-A of the paper).
//! [`CommandCode`] enumerates all of them with their on-air code values and
//! records which are requests vs responses, and which existed back in the
//! Bluetooth 2.1 era (the specification revision the baseline fuzzers were
//! written against — relevant to the state-coverage comparison in §IV-D).

use std::fmt;

use serde::{Deserialize, Serialize};

/// An L2CAP signalling command code (the `CODE` field of a C-frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum CommandCode {
    /// `0x01` Command Reject.
    CommandReject = 0x01,
    /// `0x02` Connection Request.
    ConnectionRequest = 0x02,
    /// `0x03` Connection Response.
    ConnectionResponse = 0x03,
    /// `0x04` Configuration Request.
    ConfigureRequest = 0x04,
    /// `0x05` Configuration Response.
    ConfigureResponse = 0x05,
    /// `0x06` Disconnection Request.
    DisconnectionRequest = 0x06,
    /// `0x07` Disconnection Response.
    DisconnectionResponse = 0x07,
    /// `0x08` Echo Request (the L2CAP "ping").
    EchoRequest = 0x08,
    /// `0x09` Echo Response.
    EchoResponse = 0x09,
    /// `0x0A` Information Request.
    InformationRequest = 0x0A,
    /// `0x0B` Information Response.
    InformationResponse = 0x0B,
    /// `0x0C` Create Channel Request (AMP).
    CreateChannelRequest = 0x0C,
    /// `0x0D` Create Channel Response (AMP).
    CreateChannelResponse = 0x0D,
    /// `0x0E` Move Channel Request (AMP).
    MoveChannelRequest = 0x0E,
    /// `0x0F` Move Channel Response (AMP).
    MoveChannelResponse = 0x0F,
    /// `0x10` Move Channel Confirmation Request (AMP).
    MoveChannelConfirmationRequest = 0x10,
    /// `0x11` Move Channel Confirmation Response (AMP).
    MoveChannelConfirmationResponse = 0x11,
    /// `0x12` Connection Parameter Update Request (LE).
    ConnectionParameterUpdateRequest = 0x12,
    /// `0x13` Connection Parameter Update Response (LE).
    ConnectionParameterUpdateResponse = 0x13,
    /// `0x14` LE Credit Based Connection Request.
    LeCreditBasedConnectionRequest = 0x14,
    /// `0x15` LE Credit Based Connection Response.
    LeCreditBasedConnectionResponse = 0x15,
    /// `0x16` Flow Control Credit Indication.
    FlowControlCreditInd = 0x16,
    /// `0x17` Credit Based Connection Request (enhanced, BR/EDR or LE).
    CreditBasedConnectionRequest = 0x17,
    /// `0x18` Credit Based Connection Response.
    CreditBasedConnectionResponse = 0x18,
    /// `0x19` Credit Based Reconfigure Request.
    CreditBasedReconfigureRequest = 0x19,
    /// `0x1A` Credit Based Reconfigure Response.
    CreditBasedReconfigureResponse = 0x1A,
}

impl CommandCode {
    /// All 26 Bluetooth 5.2 signalling command codes, in numeric order.
    pub const ALL: [CommandCode; 26] = [
        CommandCode::CommandReject,
        CommandCode::ConnectionRequest,
        CommandCode::ConnectionResponse,
        CommandCode::ConfigureRequest,
        CommandCode::ConfigureResponse,
        CommandCode::DisconnectionRequest,
        CommandCode::DisconnectionResponse,
        CommandCode::EchoRequest,
        CommandCode::EchoResponse,
        CommandCode::InformationRequest,
        CommandCode::InformationResponse,
        CommandCode::CreateChannelRequest,
        CommandCode::CreateChannelResponse,
        CommandCode::MoveChannelRequest,
        CommandCode::MoveChannelResponse,
        CommandCode::MoveChannelConfirmationRequest,
        CommandCode::MoveChannelConfirmationResponse,
        CommandCode::ConnectionParameterUpdateRequest,
        CommandCode::ConnectionParameterUpdateResponse,
        CommandCode::LeCreditBasedConnectionRequest,
        CommandCode::LeCreditBasedConnectionResponse,
        CommandCode::FlowControlCreditInd,
        CommandCode::CreditBasedConnectionRequest,
        CommandCode::CreditBasedConnectionResponse,
        CommandCode::CreditBasedReconfigureRequest,
        CommandCode::CreditBasedReconfigureResponse,
    ];

    /// Command codes that already existed in Bluetooth 2.1 + EDR (2007), the
    /// specification the legacy baseline fuzzers target (§IV-D).
    pub const BT_2_1: [CommandCode; 11] = [
        CommandCode::CommandReject,
        CommandCode::ConnectionRequest,
        CommandCode::ConnectionResponse,
        CommandCode::ConfigureRequest,
        CommandCode::ConfigureResponse,
        CommandCode::DisconnectionRequest,
        CommandCode::DisconnectionResponse,
        CommandCode::EchoRequest,
        CommandCode::EchoResponse,
        CommandCode::InformationRequest,
        CommandCode::InformationResponse,
    ];

    /// Converts a raw code byte into a [`CommandCode`], if defined.
    ///
    /// This sits on the per-packet classification hot path (every sniffed
    /// record and every endpoint dispatch goes through it), so it is a single
    /// indexed load into a 256-entry constant table rather than a scan over
    /// the 26 variants; `tests` assert the table agrees with the scan for
    /// every possible byte.
    pub fn from_u8(v: u8) -> Option<CommandCode> {
        const LUT: [Option<CommandCode>; 256] = {
            let mut table = [None; 256];
            let mut i = 0;
            while i < CommandCode::ALL.len() {
                let code = CommandCode::ALL[i];
                table[code as u8 as usize] = Some(code);
                i += 1;
            }
            table
        };
        LUT[usize::from(v)]
    }

    /// Returns the on-air code value.
    pub const fn value(&self) -> u8 {
        *self as u8
    }

    /// Returns `true` for request-type commands (commands a peer is expected
    /// to answer), `false` for responses and indications.
    pub const fn is_request(&self) -> bool {
        matches!(
            self,
            CommandCode::ConnectionRequest
                | CommandCode::ConfigureRequest
                | CommandCode::DisconnectionRequest
                | CommandCode::EchoRequest
                | CommandCode::InformationRequest
                | CommandCode::CreateChannelRequest
                | CommandCode::MoveChannelRequest
                | CommandCode::MoveChannelConfirmationRequest
                | CommandCode::ConnectionParameterUpdateRequest
                | CommandCode::LeCreditBasedConnectionRequest
                | CommandCode::CreditBasedConnectionRequest
                | CommandCode::CreditBasedReconfigureRequest
        )
    }

    /// Returns `true` for response-type commands.
    pub const fn is_response(&self) -> bool {
        matches!(
            self,
            CommandCode::CommandReject
                | CommandCode::ConnectionResponse
                | CommandCode::ConfigureResponse
                | CommandCode::DisconnectionResponse
                | CommandCode::EchoResponse
                | CommandCode::InformationResponse
                | CommandCode::CreateChannelResponse
                | CommandCode::MoveChannelResponse
                | CommandCode::MoveChannelConfirmationResponse
                | CommandCode::ConnectionParameterUpdateResponse
                | CommandCode::LeCreditBasedConnectionResponse
                | CommandCode::CreditBasedConnectionResponse
                | CommandCode::CreditBasedReconfigureResponse
        )
    }

    /// For a request, returns the response code a conforming peer answers
    /// with; `None` for responses and indications.
    pub const fn expected_response(&self) -> Option<CommandCode> {
        match self {
            CommandCode::ConnectionRequest => Some(CommandCode::ConnectionResponse),
            CommandCode::ConfigureRequest => Some(CommandCode::ConfigureResponse),
            CommandCode::DisconnectionRequest => Some(CommandCode::DisconnectionResponse),
            CommandCode::EchoRequest => Some(CommandCode::EchoResponse),
            CommandCode::InformationRequest => Some(CommandCode::InformationResponse),
            CommandCode::CreateChannelRequest => Some(CommandCode::CreateChannelResponse),
            CommandCode::MoveChannelRequest => Some(CommandCode::MoveChannelResponse),
            CommandCode::MoveChannelConfirmationRequest => {
                Some(CommandCode::MoveChannelConfirmationResponse)
            }
            CommandCode::ConnectionParameterUpdateRequest => {
                Some(CommandCode::ConnectionParameterUpdateResponse)
            }
            CommandCode::LeCreditBasedConnectionRequest => {
                Some(CommandCode::LeCreditBasedConnectionResponse)
            }
            CommandCode::CreditBasedConnectionRequest => {
                Some(CommandCode::CreditBasedConnectionResponse)
            }
            CommandCode::CreditBasedReconfigureRequest => {
                Some(CommandCode::CreditBasedReconfigureResponse)
            }
            _ => None,
        }
    }

    /// Returns `true` if the command is only meaningful on LE links; the
    /// BR/EDR acceptor rejects these with "command not understood".
    pub const fn is_le_only(&self) -> bool {
        matches!(
            self,
            CommandCode::ConnectionParameterUpdateRequest
                | CommandCode::ConnectionParameterUpdateResponse
                | CommandCode::LeCreditBasedConnectionRequest
                | CommandCode::LeCreditBasedConnectionResponse
        )
    }

    /// Returns `true` if the command is only meaningful on classic BR/EDR
    /// (ACL-U) links; the LE acceptor rejects these with "command not
    /// understood", symmetrically to [`CommandCode::is_le_only`].
    ///
    /// These are connection establishment/configuration, echo, information
    /// and the AMP create/move family (`0x02–0x05`, `0x08–0x11`).  Command
    /// Reject, disconnection, the flow-control credit indication and the
    /// enhanced credit-based family (`0x16–0x1A`) are valid on both links.
    pub const fn is_classic_only(&self) -> bool {
        matches!(
            self,
            CommandCode::ConnectionRequest
                | CommandCode::ConnectionResponse
                | CommandCode::ConfigureRequest
                | CommandCode::ConfigureResponse
                | CommandCode::EchoRequest
                | CommandCode::EchoResponse
                | CommandCode::InformationRequest
                | CommandCode::InformationResponse
                | CommandCode::CreateChannelRequest
                | CommandCode::CreateChannelResponse
                | CommandCode::MoveChannelRequest
                | CommandCode::MoveChannelResponse
                | CommandCode::MoveChannelConfirmationRequest
                | CommandCode::MoveChannelConfirmationResponse
        )
    }

    /// Returns `true` if a spec-conformant acceptor on the given link type
    /// processes this command at all (rather than rejecting it as "command
    /// not understood" because it belongs to the other transport).
    pub const fn valid_on(&self, link: btcore::LinkType) -> bool {
        match link {
            btcore::LinkType::BrEdr => !self.is_le_only(),
            btcore::LinkType::Le => !self.is_classic_only(),
        }
    }

    /// Short mnemonic used in traces and reports (e.g. `Connect Req`).
    pub const fn mnemonic(&self) -> &'static str {
        match self {
            CommandCode::CommandReject => "Command Reject",
            CommandCode::ConnectionRequest => "Connect Req",
            CommandCode::ConnectionResponse => "Connect Rsp",
            CommandCode::ConfigureRequest => "Config Req",
            CommandCode::ConfigureResponse => "Config Rsp",
            CommandCode::DisconnectionRequest => "Disconnect Req",
            CommandCode::DisconnectionResponse => "Disconnect Rsp",
            CommandCode::EchoRequest => "Echo Req",
            CommandCode::EchoResponse => "Echo Rsp",
            CommandCode::InformationRequest => "Info Req",
            CommandCode::InformationResponse => "Info Rsp",
            CommandCode::CreateChannelRequest => "Create Channel Req",
            CommandCode::CreateChannelResponse => "Create Channel Rsp",
            CommandCode::MoveChannelRequest => "Move Channel Req",
            CommandCode::MoveChannelResponse => "Move Channel Rsp",
            CommandCode::MoveChannelConfirmationRequest => "Move Channel Confirm Req",
            CommandCode::MoveChannelConfirmationResponse => "Move Channel Confirm Rsp",
            CommandCode::ConnectionParameterUpdateRequest => "Conn Param Update Req",
            CommandCode::ConnectionParameterUpdateResponse => "Conn Param Update Rsp",
            CommandCode::LeCreditBasedConnectionRequest => "LE Credit Based Connect Req",
            CommandCode::LeCreditBasedConnectionResponse => "LE Credit Based Connect Rsp",
            CommandCode::FlowControlCreditInd => "Flow Control Credit Ind",
            CommandCode::CreditBasedConnectionRequest => "Credit Based Connect Req",
            CommandCode::CreditBasedConnectionResponse => "Credit Based Connect Rsp",
            CommandCode::CreditBasedReconfigureRequest => "Credit Based Reconfigure Req",
            CommandCode::CreditBasedReconfigureResponse => "Credit Based Reconfigure Rsp",
        }
    }
}

impl fmt::Display for CommandCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (0x{:02X})", self.mnemonic(), self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_26_commands_in_bt_5_2() {
        assert_eq!(CommandCode::ALL.len(), 26);
        // All values are distinct and contiguous 0x01..=0x1A.
        let values: Vec<u8> = CommandCode::ALL.iter().map(|c| c.value()).collect();
        assert_eq!(values, (0x01..=0x1A).collect::<Vec<u8>>());
    }

    #[test]
    fn bt_2_1_subset_is_contained_in_5_2() {
        assert_eq!(CommandCode::BT_2_1.len(), 11);
        for c in CommandCode::BT_2_1 {
            assert!(CommandCode::ALL.contains(&c));
            assert!(c.value() <= 0x0B);
        }
    }

    #[test]
    fn from_u8_roundtrip() {
        for c in CommandCode::ALL {
            assert_eq!(CommandCode::from_u8(c.value()), Some(c));
        }
        assert_eq!(CommandCode::from_u8(0x00), None);
        assert_eq!(CommandCode::from_u8(0x1B), None);
        assert_eq!(CommandCode::from_u8(0xFF), None);
    }

    #[test]
    fn every_command_is_request_xor_response_except_indication() {
        for c in CommandCode::ALL {
            if c == CommandCode::FlowControlCreditInd {
                assert!(!c.is_request() && !c.is_response());
            } else {
                assert!(
                    c.is_request() ^ c.is_response(),
                    "{c} must be exactly one of req/rsp"
                );
            }
        }
    }

    #[test]
    fn every_request_has_a_response() {
        for c in CommandCode::ALL.iter().filter(|c| c.is_request()) {
            let rsp = c.expected_response().expect("request must have response");
            assert!(rsp.is_response());
            // Response code is request code + 1 for all BT 5.2 commands except
            // the credit-based reconfigure pair, where it also holds.
            assert_eq!(rsp.value(), c.value() + 1);
        }
    }

    #[test]
    fn responses_have_no_expected_response() {
        for c in CommandCode::ALL.iter().filter(|c| c.is_response()) {
            assert_eq!(c.expected_response(), None);
        }
    }

    #[test]
    fn le_only_commands() {
        assert!(CommandCode::LeCreditBasedConnectionRequest.is_le_only());
        assert!(CommandCode::ConnectionParameterUpdateRequest.is_le_only());
        assert!(!CommandCode::ConnectionRequest.is_le_only());
        assert!(!CommandCode::CreditBasedConnectionRequest.is_le_only());
    }

    #[test]
    fn from_u8_lookup_table_matches_a_linear_scan_for_every_byte() {
        for v in 0..=u8::MAX {
            let scanned = CommandCode::ALL.iter().copied().find(|c| *c as u8 == v);
            assert_eq!(
                CommandCode::from_u8(v),
                scanned,
                "lookup table diverges from linear scan at 0x{v:02X}"
            );
        }
    }

    #[test]
    fn link_validity_partitions_the_code_space() {
        use btcore::LinkType;
        for c in CommandCode::ALL {
            // No command is both LE-only and classic-only.
            assert!(!(c.is_le_only() && c.is_classic_only()), "{c} is both");
            assert_eq!(c.valid_on(LinkType::BrEdr), !c.is_le_only());
            assert_eq!(c.valid_on(LinkType::Le), !c.is_classic_only());
        }
        // The partition sizes: 4 LE-only, 14 classic-only, 8 on both links.
        let le_only = CommandCode::ALL.iter().filter(|c| c.is_le_only()).count();
        let classic = CommandCode::ALL
            .iter()
            .filter(|c| c.is_classic_only())
            .count();
        assert_eq!(le_only, 4);
        assert_eq!(classic, 14);
        assert_eq!(26 - le_only - classic, 8);
        // Spot checks for the shared family.
        for c in [
            CommandCode::CommandReject,
            CommandCode::DisconnectionRequest,
            CommandCode::FlowControlCreditInd,
            CommandCode::CreditBasedConnectionRequest,
            CommandCode::CreditBasedReconfigureResponse,
        ] {
            assert!(c.valid_on(LinkType::BrEdr) && c.valid_on(LinkType::Le));
        }
    }

    #[test]
    fn display_contains_mnemonic_and_code() {
        let s = CommandCode::ConnectionRequest.to_string();
        assert!(s.contains("Connect Req"));
        assert!(s.contains("0x02"));
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<&str> = CommandCode::ALL.iter().map(|c| c.mnemonic()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 26);
    }
}
