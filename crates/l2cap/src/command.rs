//! Typed signalling command payloads.
//!
//! Every one of the 26 Bluetooth 5.2 signalling commands has a typed struct
//! here; [`Command`] wraps them in one enum.  Decoding is *loss-tolerant*:
//! undefined codes or truncated payloads decode to [`Command::Raw`] instead of
//! failing, because a fuzzer (and a fuzzed target) must be able to represent
//! arbitrary byte blobs.  Trailing bytes beyond a command's defined data
//! fields — exactly what L2Fuzz's garbage-appending mutation produces — are
//! tolerated on decode, mirroring how lenient real stacks parse such packets.

use btcore::{ByteReader, ByteWriter, Cid, Psm};
use serde::{Deserialize, Serialize};

use crate::code::CommandCode;
use crate::consts::{ConfigureResult, ConnectionResult, MoveResult, RejectReason};
use crate::options::ConfigOption;

/// Command Reject (`0x01`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommandReject {
    /// Reject reason.
    pub reason: RejectReason,
    /// Optional reason data (actual MTU for MTU-exceeded, the two CIDs for
    /// invalid-CID).
    pub data: Vec<u8>,
}

/// Connection Request (`0x02`): opens a channel to a service PSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionRequest {
    /// Target service port.
    pub psm: Psm,
    /// Source channel ID chosen by the initiator.
    pub scid: Cid,
}

/// Connection Response (`0x03`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionResponse {
    /// Destination channel ID allocated by the responder.
    pub dcid: Cid,
    /// Echo of the initiator's source channel ID.
    pub scid: Cid,
    /// Result code.
    pub result: ConnectionResult,
    /// Status (only meaningful when result is pending).
    pub status: u16,
}

/// Configuration Request (`0x04`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigureRequest {
    /// Destination channel ID (the peer's channel endpoint).
    pub dcid: Cid,
    /// Continuation flags.
    pub flags: u16,
    /// Requested configuration options.
    pub options: Vec<ConfigOption>,
}

/// Configuration Response (`0x05`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigureResponse {
    /// Source channel ID (the channel the response concerns).
    pub scid: Cid,
    /// Continuation flags.
    pub flags: u16,
    /// Result code.
    pub result: ConfigureResult,
    /// Agreed / counter-proposed options.
    pub options: Vec<ConfigOption>,
}

/// Disconnection Request (`0x06`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisconnectionRequest {
    /// Destination channel ID.
    pub dcid: Cid,
    /// Source channel ID.
    pub scid: Cid,
}

/// Disconnection Response (`0x07`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DisconnectionResponse {
    /// Destination channel ID.
    pub dcid: Cid,
    /// Source channel ID.
    pub scid: Cid,
}

/// Echo Request (`0x08`) — the L2CAP ping used by the detection phase.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EchoRequest {
    /// Optional echo payload.
    pub data: Vec<u8>,
}

/// Echo Response (`0x09`).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct EchoResponse {
    /// Echoed payload.
    pub data: Vec<u8>,
}

/// Information Request (`0x0A`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InformationRequest {
    /// Requested information type.
    pub info_type: u16,
}

/// Information Response (`0x0B`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InformationResponse {
    /// Information type being answered.
    pub info_type: u16,
    /// Result (0 = success, 1 = not supported).
    pub result: u16,
    /// Type-specific data.
    pub data: Vec<u8>,
}

/// Create Channel Request (`0x0C`) — AMP channel creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CreateChannelRequest {
    /// Target service port.
    pub psm: Psm,
    /// Source channel ID.
    pub scid: Cid,
    /// Controller ID of the AMP controller to use (0 = BR/EDR).
    pub controller_id: u8,
}

/// Create Channel Response (`0x0D`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CreateChannelResponse {
    /// Destination channel ID.
    pub dcid: Cid,
    /// Source channel ID.
    pub scid: Cid,
    /// Result code (shares the connection-result code space).
    pub result: ConnectionResult,
    /// Status.
    pub status: u16,
}

/// Move Channel Request (`0x0E`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoveChannelRequest {
    /// Initiator channel ID of the channel to move.
    pub icid: Cid,
    /// Destination controller ID.
    pub dest_controller_id: u8,
}

/// Move Channel Response (`0x0F`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoveChannelResponse {
    /// Initiator channel ID.
    pub icid: Cid,
    /// Result code.
    pub result: MoveResult,
}

/// Move Channel Confirmation Request (`0x10`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoveChannelConfirmationRequest {
    /// Initiator channel ID.
    pub icid: Cid,
    /// Confirmation result (0 = success, 1 = failure).
    pub result: u16,
}

/// Move Channel Confirmation Response (`0x11`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MoveChannelConfirmationResponse {
    /// Initiator channel ID.
    pub icid: Cid,
}

/// Connection Parameter Update Request (`0x12`, LE only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionParameterUpdateRequest {
    /// Minimum connection interval.
    pub interval_min: u16,
    /// Maximum connection interval.
    pub interval_max: u16,
    /// Peripheral latency.
    pub latency: u16,
    /// Supervision timeout multiplier.
    pub timeout: u16,
}

/// Connection Parameter Update Response (`0x13`, LE only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionParameterUpdateResponse {
    /// Result (0 = accepted, 1 = rejected).
    pub result: u16,
}

/// LE Credit Based Connection Request (`0x14`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeCreditBasedConnectionRequest {
    /// Simplified PSM.
    pub spsm: u16,
    /// Source channel ID.
    pub scid: Cid,
    /// Maximum transmission unit.
    pub mtu: u16,
    /// Maximum PDU payload size.
    pub mps: u16,
    /// Initial credits.
    pub initial_credits: u16,
}

/// LE Credit Based Connection Response (`0x15`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeCreditBasedConnectionResponse {
    /// Destination channel ID.
    pub dcid: Cid,
    /// Maximum transmission unit.
    pub mtu: u16,
    /// Maximum PDU payload size.
    pub mps: u16,
    /// Initial credits.
    pub initial_credits: u16,
    /// Result code.
    pub result: u16,
}

/// Flow Control Credit Indication (`0x16`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowControlCreditInd {
    /// Channel receiving additional credits.
    pub cid: Cid,
    /// Number of credits granted.
    pub credits: u16,
}

/// Credit Based Connection Request (`0x17`) — enhanced, up to five channels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CreditBasedConnectionRequest {
    /// Simplified PSM.
    pub spsm: u16,
    /// Maximum transmission unit.
    pub mtu: u16,
    /// Maximum PDU payload size.
    pub mps: u16,
    /// Initial credits.
    pub initial_credits: u16,
    /// Source channel IDs (one per requested channel).
    pub scids: Vec<Cid>,
}

/// Credit Based Connection Response (`0x18`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CreditBasedConnectionResponse {
    /// Maximum transmission unit.
    pub mtu: u16,
    /// Maximum PDU payload size.
    pub mps: u16,
    /// Initial credits.
    pub initial_credits: u16,
    /// Result code.
    pub result: u16,
    /// Destination channel IDs (one per accepted channel).
    pub dcids: Vec<Cid>,
}

/// Credit Based Reconfigure Request (`0x19`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CreditBasedReconfigureRequest {
    /// New maximum transmission unit.
    pub mtu: u16,
    /// New maximum PDU payload size.
    pub mps: u16,
    /// Channels being reconfigured.
    pub dcids: Vec<Cid>,
}

/// Credit Based Reconfigure Response (`0x1A`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CreditBasedReconfigureResponse {
    /// Result code.
    pub result: u16,
}

/// Any L2CAP signalling command, or an opaque blob when the payload does not
/// decode as the structure its code implies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Command {
    CommandReject(CommandReject),
    ConnectionRequest(ConnectionRequest),
    ConnectionResponse(ConnectionResponse),
    ConfigureRequest(ConfigureRequest),
    ConfigureResponse(ConfigureResponse),
    DisconnectionRequest(DisconnectionRequest),
    DisconnectionResponse(DisconnectionResponse),
    EchoRequest(EchoRequest),
    EchoResponse(EchoResponse),
    InformationRequest(InformationRequest),
    InformationResponse(InformationResponse),
    CreateChannelRequest(CreateChannelRequest),
    CreateChannelResponse(CreateChannelResponse),
    MoveChannelRequest(MoveChannelRequest),
    MoveChannelResponse(MoveChannelResponse),
    MoveChannelConfirmationRequest(MoveChannelConfirmationRequest),
    MoveChannelConfirmationResponse(MoveChannelConfirmationResponse),
    ConnectionParameterUpdateRequest(ConnectionParameterUpdateRequest),
    ConnectionParameterUpdateResponse(ConnectionParameterUpdateResponse),
    LeCreditBasedConnectionRequest(LeCreditBasedConnectionRequest),
    LeCreditBasedConnectionResponse(LeCreditBasedConnectionResponse),
    FlowControlCreditInd(FlowControlCreditInd),
    CreditBasedConnectionRequest(CreditBasedConnectionRequest),
    CreditBasedConnectionResponse(CreditBasedConnectionResponse),
    CreditBasedReconfigureRequest(CreditBasedReconfigureRequest),
    CreditBasedReconfigureResponse(CreditBasedReconfigureResponse),
    /// An undefined code or a payload that does not parse as its code's
    /// structure.
    Raw {
        /// Raw command code byte.
        code: u8,
        /// Raw data-field bytes.
        data: Vec<u8>,
    },
}

impl Command {
    /// Returns the command code, if the code byte is a defined Bluetooth 5.2
    /// code (this is still `Some` for `Raw` commands whose code byte happens
    /// to be defined).
    pub fn code(&self) -> Option<CommandCode> {
        Some(match self {
            Command::CommandReject(_) => CommandCode::CommandReject,
            Command::ConnectionRequest(_) => CommandCode::ConnectionRequest,
            Command::ConnectionResponse(_) => CommandCode::ConnectionResponse,
            Command::ConfigureRequest(_) => CommandCode::ConfigureRequest,
            Command::ConfigureResponse(_) => CommandCode::ConfigureResponse,
            Command::DisconnectionRequest(_) => CommandCode::DisconnectionRequest,
            Command::DisconnectionResponse(_) => CommandCode::DisconnectionResponse,
            Command::EchoRequest(_) => CommandCode::EchoRequest,
            Command::EchoResponse(_) => CommandCode::EchoResponse,
            Command::InformationRequest(_) => CommandCode::InformationRequest,
            Command::InformationResponse(_) => CommandCode::InformationResponse,
            Command::CreateChannelRequest(_) => CommandCode::CreateChannelRequest,
            Command::CreateChannelResponse(_) => CommandCode::CreateChannelResponse,
            Command::MoveChannelRequest(_) => CommandCode::MoveChannelRequest,
            Command::MoveChannelResponse(_) => CommandCode::MoveChannelResponse,
            Command::MoveChannelConfirmationRequest(_) => {
                CommandCode::MoveChannelConfirmationRequest
            }
            Command::MoveChannelConfirmationResponse(_) => {
                CommandCode::MoveChannelConfirmationResponse
            }
            Command::ConnectionParameterUpdateRequest(_) => {
                CommandCode::ConnectionParameterUpdateRequest
            }
            Command::ConnectionParameterUpdateResponse(_) => {
                CommandCode::ConnectionParameterUpdateResponse
            }
            Command::LeCreditBasedConnectionRequest(_) => {
                CommandCode::LeCreditBasedConnectionRequest
            }
            Command::LeCreditBasedConnectionResponse(_) => {
                CommandCode::LeCreditBasedConnectionResponse
            }
            Command::FlowControlCreditInd(_) => CommandCode::FlowControlCreditInd,
            Command::CreditBasedConnectionRequest(_) => CommandCode::CreditBasedConnectionRequest,
            Command::CreditBasedConnectionResponse(_) => CommandCode::CreditBasedConnectionResponse,
            Command::CreditBasedReconfigureRequest(_) => CommandCode::CreditBasedReconfigureRequest,
            Command::CreditBasedReconfigureResponse(_) => {
                CommandCode::CreditBasedReconfigureResponse
            }
            Command::Raw { code, .. } => return CommandCode::from_u8(*code),
        })
    }

    /// Returns the raw code byte that would appear on the air.
    pub fn code_byte(&self) -> u8 {
        match self {
            Command::Raw { code, .. } => *code,
            // analyzer: allow(panic) — every non-raw variant maps to a
            // defined CommandCode by construction of `code()`.
            other => other
                .code()
                .expect("non-raw commands always have a code")
                .value(),
        }
    }

    /// Encodes the command's data fields (everything after the 4-byte
    /// code/identifier/length prefix).
    pub fn encode_data(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_data_into(&mut out);
        out
    }

    /// Appends the command's data fields to `out` (which is *not* cleared) —
    /// the allocation-free encoding path shared by [`Command::encode_data`]
    /// and the arena-backed frame builders.
    pub fn encode_data_into(&self, out: &mut Vec<u8>) {
        let mut w = ByteWriter::wrap(std::mem::take(out));
        match self {
            Command::CommandReject(c) => {
                w.write_u16(c.reason.value());
                w.write_bytes(&c.data);
            }
            Command::ConnectionRequest(c) => {
                w.write_u16(c.psm.value());
                w.write_u16(c.scid.value());
            }
            Command::ConnectionResponse(c) => {
                w.write_u16(c.dcid.value());
                w.write_u16(c.scid.value());
                w.write_u16(c.result.value());
                w.write_u16(c.status);
            }
            Command::ConfigureRequest(c) => {
                w.write_u16(c.dcid.value());
                w.write_u16(c.flags);
                for opt in &c.options {
                    opt.encode(&mut w);
                }
            }
            Command::ConfigureResponse(c) => {
                w.write_u16(c.scid.value());
                w.write_u16(c.flags);
                w.write_u16(c.result.value());
                for opt in &c.options {
                    opt.encode(&mut w);
                }
            }
            Command::DisconnectionRequest(c) => {
                w.write_u16(c.dcid.value());
                w.write_u16(c.scid.value());
            }
            Command::DisconnectionResponse(c) => {
                w.write_u16(c.dcid.value());
                w.write_u16(c.scid.value());
            }
            Command::EchoRequest(c) => w.write_bytes(&c.data),
            Command::EchoResponse(c) => w.write_bytes(&c.data),
            Command::InformationRequest(c) => w.write_u16(c.info_type),
            Command::InformationResponse(c) => {
                w.write_u16(c.info_type);
                w.write_u16(c.result);
                w.write_bytes(&c.data);
            }
            Command::CreateChannelRequest(c) => {
                w.write_u16(c.psm.value());
                w.write_u16(c.scid.value());
                w.write_u8(c.controller_id);
            }
            Command::CreateChannelResponse(c) => {
                w.write_u16(c.dcid.value());
                w.write_u16(c.scid.value());
                w.write_u16(c.result.value());
                w.write_u16(c.status);
            }
            Command::MoveChannelRequest(c) => {
                w.write_u16(c.icid.value());
                w.write_u8(c.dest_controller_id);
            }
            Command::MoveChannelResponse(c) => {
                w.write_u16(c.icid.value());
                w.write_u16(c.result.value());
            }
            Command::MoveChannelConfirmationRequest(c) => {
                w.write_u16(c.icid.value());
                w.write_u16(c.result);
            }
            Command::MoveChannelConfirmationResponse(c) => {
                w.write_u16(c.icid.value());
            }
            Command::ConnectionParameterUpdateRequest(c) => {
                w.write_u16(c.interval_min);
                w.write_u16(c.interval_max);
                w.write_u16(c.latency);
                w.write_u16(c.timeout);
            }
            Command::ConnectionParameterUpdateResponse(c) => w.write_u16(c.result),
            Command::LeCreditBasedConnectionRequest(c) => {
                w.write_u16(c.spsm);
                w.write_u16(c.scid.value());
                w.write_u16(c.mtu);
                w.write_u16(c.mps);
                w.write_u16(c.initial_credits);
            }
            Command::LeCreditBasedConnectionResponse(c) => {
                w.write_u16(c.dcid.value());
                w.write_u16(c.mtu);
                w.write_u16(c.mps);
                w.write_u16(c.initial_credits);
                w.write_u16(c.result);
            }
            Command::FlowControlCreditInd(c) => {
                w.write_u16(c.cid.value());
                w.write_u16(c.credits);
            }
            Command::CreditBasedConnectionRequest(c) => {
                w.write_u16(c.spsm);
                w.write_u16(c.mtu);
                w.write_u16(c.mps);
                w.write_u16(c.initial_credits);
                for scid in &c.scids {
                    w.write_u16(scid.value());
                }
            }
            Command::CreditBasedConnectionResponse(c) => {
                w.write_u16(c.mtu);
                w.write_u16(c.mps);
                w.write_u16(c.initial_credits);
                w.write_u16(c.result);
                for dcid in &c.dcids {
                    w.write_u16(dcid.value());
                }
            }
            Command::CreditBasedReconfigureRequest(c) => {
                w.write_u16(c.mtu);
                w.write_u16(c.mps);
                for dcid in &c.dcids {
                    w.write_u16(dcid.value());
                }
            }
            Command::CreditBasedReconfigureResponse(c) => w.write_u16(c.result),
            Command::Raw { data, .. } => w.write_bytes(data),
        }
        *out = w.into_bytes();
    }

    /// Decodes a command from its code byte and data fields.
    ///
    /// Never fails: unknown codes, truncated payloads, or undefined enum
    /// values fall back to [`Command::Raw`].  Trailing bytes beyond the
    /// structured fields (garbage appended by a fuzzer) are tolerated and
    /// dropped, as permissive real-world stacks do.
    pub fn decode(code: u8, data: &[u8]) -> Command {
        match Self::try_decode(code, data) {
            Some(cmd) => cmd,
            None => Command::Raw {
                code,
                data: data.to_vec(),
            },
        }
    }

    /// Like [`Command::decode`], but returns `None` where `decode` would fall
    /// back to [`Command::Raw`] — avoiding the raw-data copy when the caller
    /// only needs to distinguish structured from unstructured payloads.
    pub fn decode_opt(code: u8, data: &[u8]) -> Option<Command> {
        Self::try_decode(code, data)
    }

    /// Returns `true` exactly when [`Command::decode`] would produce a typed
    /// (non-[`Command::Raw`]) command — i.e. the payload parses as `code`'s
    /// structure — without allocating anything.  This is the classification
    /// hot path of the trace analysis: `tests/codec_properties.rs` asserts
    /// its equivalence with `decode` across generated inputs.
    pub fn structurally_valid(code: u8, data: &[u8]) -> bool {
        fn u16_at(data: &[u8], off: usize) -> Option<u16> {
            Some(u16::from_le_bytes([*data.get(off)?, *data.get(off + 1)?]))
        }
        let Some(code) = CommandCode::from_u8(code) else {
            return false;
        };
        match code {
            CommandCode::CommandReject => {
                u16_at(data, 0).and_then(RejectReason::from_u16).is_some()
            }
            CommandCode::ConnectionRequest
            | CommandCode::DisconnectionRequest
            | CommandCode::DisconnectionResponse => data.len() >= 4,
            CommandCode::ConnectionResponse | CommandCode::CreateChannelResponse => {
                data.len() >= 8
                    && u16_at(data, 4)
                        .and_then(ConnectionResult::from_u16)
                        .is_some()
            }
            CommandCode::ConfigureRequest => {
                data.len() >= 4 && ConfigOption::all_structurally_valid(&data[4..])
            }
            CommandCode::ConfigureResponse => {
                data.len() >= 6
                    && u16_at(data, 4)
                        .and_then(ConfigureResult::from_u16)
                        .is_some()
                    && ConfigOption::all_structurally_valid(&data[6..])
            }
            CommandCode::EchoRequest | CommandCode::EchoResponse => true,
            CommandCode::InformationRequest => data.len() >= 2,
            CommandCode::InformationResponse => data.len() >= 4,
            CommandCode::CreateChannelRequest => data.len() >= 5,
            CommandCode::MoveChannelRequest => data.len() >= 3,
            CommandCode::MoveChannelResponse => {
                data.len() >= 4 && u16_at(data, 2).and_then(MoveResult::from_u16).is_some()
            }
            CommandCode::MoveChannelConfirmationRequest => data.len() >= 4,
            CommandCode::MoveChannelConfirmationResponse => data.len() >= 2,
            CommandCode::ConnectionParameterUpdateRequest => data.len() >= 8,
            CommandCode::ConnectionParameterUpdateResponse => data.len() >= 2,
            CommandCode::LeCreditBasedConnectionRequest
            | CommandCode::LeCreditBasedConnectionResponse => data.len() >= 10,
            CommandCode::FlowControlCreditInd => data.len() >= 4,
            CommandCode::CreditBasedConnectionRequest
            | CommandCode::CreditBasedConnectionResponse => data.len() >= 8,
            CommandCode::CreditBasedReconfigureRequest => data.len() >= 4,
            CommandCode::CreditBasedReconfigureResponse => data.len() >= 2,
        }
    }

    fn try_decode(code: u8, data: &[u8]) -> Option<Command> {
        let code = CommandCode::from_u8(code)?;
        let mut r = ByteReader::new(data);
        let cmd = match code {
            CommandCode::CommandReject => Command::CommandReject(CommandReject {
                reason: RejectReason::from_u16(r.read_u16().ok()?)?,
                data: r.read_rest().to_vec(),
            }),
            CommandCode::ConnectionRequest => Command::ConnectionRequest(ConnectionRequest {
                psm: Psm(r.read_u16().ok()?),
                scid: Cid(r.read_u16().ok()?),
            }),
            CommandCode::ConnectionResponse => Command::ConnectionResponse(ConnectionResponse {
                dcid: Cid(r.read_u16().ok()?),
                scid: Cid(r.read_u16().ok()?),
                result: ConnectionResult::from_u16(r.read_u16().ok()?)?,
                status: r.read_u16().ok()?,
            }),
            CommandCode::ConfigureRequest => {
                let dcid = Cid(r.read_u16().ok()?);
                let flags = r.read_u16().ok()?;
                let options = ConfigOption::decode_all(&mut r).ok()?;
                Command::ConfigureRequest(ConfigureRequest {
                    dcid,
                    flags,
                    options,
                })
            }
            CommandCode::ConfigureResponse => {
                let scid = Cid(r.read_u16().ok()?);
                let flags = r.read_u16().ok()?;
                let result = ConfigureResult::from_u16(r.read_u16().ok()?)?;
                let options = ConfigOption::decode_all(&mut r).ok()?;
                Command::ConfigureResponse(ConfigureResponse {
                    scid,
                    flags,
                    result,
                    options,
                })
            }
            CommandCode::DisconnectionRequest => {
                Command::DisconnectionRequest(DisconnectionRequest {
                    dcid: Cid(r.read_u16().ok()?),
                    scid: Cid(r.read_u16().ok()?),
                })
            }
            CommandCode::DisconnectionResponse => {
                Command::DisconnectionResponse(DisconnectionResponse {
                    dcid: Cid(r.read_u16().ok()?),
                    scid: Cid(r.read_u16().ok()?),
                })
            }
            CommandCode::EchoRequest => Command::EchoRequest(EchoRequest {
                data: r.read_rest().to_vec(),
            }),
            CommandCode::EchoResponse => Command::EchoResponse(EchoResponse {
                data: r.read_rest().to_vec(),
            }),
            CommandCode::InformationRequest => Command::InformationRequest(InformationRequest {
                info_type: r.read_u16().ok()?,
            }),
            CommandCode::InformationResponse => Command::InformationResponse(InformationResponse {
                info_type: r.read_u16().ok()?,
                result: r.read_u16().ok()?,
                data: r.read_rest().to_vec(),
            }),
            CommandCode::CreateChannelRequest => {
                Command::CreateChannelRequest(CreateChannelRequest {
                    psm: Psm(r.read_u16().ok()?),
                    scid: Cid(r.read_u16().ok()?),
                    controller_id: r.read_u8().ok()?,
                })
            }
            CommandCode::CreateChannelResponse => {
                Command::CreateChannelResponse(CreateChannelResponse {
                    dcid: Cid(r.read_u16().ok()?),
                    scid: Cid(r.read_u16().ok()?),
                    result: ConnectionResult::from_u16(r.read_u16().ok()?)?,
                    status: r.read_u16().ok()?,
                })
            }
            CommandCode::MoveChannelRequest => Command::MoveChannelRequest(MoveChannelRequest {
                icid: Cid(r.read_u16().ok()?),
                dest_controller_id: r.read_u8().ok()?,
            }),
            CommandCode::MoveChannelResponse => Command::MoveChannelResponse(MoveChannelResponse {
                icid: Cid(r.read_u16().ok()?),
                result: MoveResult::from_u16(r.read_u16().ok()?)?,
            }),
            CommandCode::MoveChannelConfirmationRequest => {
                Command::MoveChannelConfirmationRequest(MoveChannelConfirmationRequest {
                    icid: Cid(r.read_u16().ok()?),
                    result: r.read_u16().ok()?,
                })
            }
            CommandCode::MoveChannelConfirmationResponse => {
                Command::MoveChannelConfirmationResponse(MoveChannelConfirmationResponse {
                    icid: Cid(r.read_u16().ok()?),
                })
            }
            CommandCode::ConnectionParameterUpdateRequest => {
                Command::ConnectionParameterUpdateRequest(ConnectionParameterUpdateRequest {
                    interval_min: r.read_u16().ok()?,
                    interval_max: r.read_u16().ok()?,
                    latency: r.read_u16().ok()?,
                    timeout: r.read_u16().ok()?,
                })
            }
            CommandCode::ConnectionParameterUpdateResponse => {
                Command::ConnectionParameterUpdateResponse(ConnectionParameterUpdateResponse {
                    result: r.read_u16().ok()?,
                })
            }
            CommandCode::LeCreditBasedConnectionRequest => {
                Command::LeCreditBasedConnectionRequest(LeCreditBasedConnectionRequest {
                    spsm: r.read_u16().ok()?,
                    scid: Cid(r.read_u16().ok()?),
                    mtu: r.read_u16().ok()?,
                    mps: r.read_u16().ok()?,
                    initial_credits: r.read_u16().ok()?,
                })
            }
            CommandCode::LeCreditBasedConnectionResponse => {
                Command::LeCreditBasedConnectionResponse(LeCreditBasedConnectionResponse {
                    dcid: Cid(r.read_u16().ok()?),
                    mtu: r.read_u16().ok()?,
                    mps: r.read_u16().ok()?,
                    initial_credits: r.read_u16().ok()?,
                    result: r.read_u16().ok()?,
                })
            }
            CommandCode::FlowControlCreditInd => {
                Command::FlowControlCreditInd(FlowControlCreditInd {
                    cid: Cid(r.read_u16().ok()?),
                    credits: r.read_u16().ok()?,
                })
            }
            CommandCode::CreditBasedConnectionRequest => {
                let spsm = r.read_u16().ok()?;
                let mtu = r.read_u16().ok()?;
                let mps = r.read_u16().ok()?;
                let initial_credits = r.read_u16().ok()?;
                let mut scids = Vec::new();
                while r.remaining() >= 2 {
                    scids.push(Cid(r.read_u16().ok()?));
                }
                Command::CreditBasedConnectionRequest(CreditBasedConnectionRequest {
                    spsm,
                    mtu,
                    mps,
                    initial_credits,
                    scids,
                })
            }
            CommandCode::CreditBasedConnectionResponse => {
                let mtu = r.read_u16().ok()?;
                let mps = r.read_u16().ok()?;
                let initial_credits = r.read_u16().ok()?;
                let result = r.read_u16().ok()?;
                let mut dcids = Vec::new();
                while r.remaining() >= 2 {
                    dcids.push(Cid(r.read_u16().ok()?));
                }
                Command::CreditBasedConnectionResponse(CreditBasedConnectionResponse {
                    mtu,
                    mps,
                    initial_credits,
                    result,
                    dcids,
                })
            }
            CommandCode::CreditBasedReconfigureRequest => {
                let mtu = r.read_u16().ok()?;
                let mps = r.read_u16().ok()?;
                let mut dcids = Vec::new();
                while r.remaining() >= 2 {
                    dcids.push(Cid(r.read_u16().ok()?));
                }
                Command::CreditBasedReconfigureRequest(CreditBasedReconfigureRequest {
                    mtu,
                    mps,
                    dcids,
                })
            }
            CommandCode::CreditBasedReconfigureResponse => {
                Command::CreditBasedReconfigureResponse(CreditBasedReconfigureResponse {
                    result: r.read_u16().ok()?,
                })
            }
        };
        Some(cmd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_commands() -> Vec<Command> {
        vec![
            Command::CommandReject(CommandReject {
                reason: RejectReason::InvalidCidInRequest,
                data: vec![0x40, 0x00, 0x41, 0x00],
            }),
            Command::ConnectionRequest(ConnectionRequest {
                psm: Psm::SDP,
                scid: Cid(0x0040),
            }),
            Command::ConnectionResponse(ConnectionResponse {
                dcid: Cid(0x0041),
                scid: Cid(0x0040),
                result: ConnectionResult::Success,
                status: 0,
            }),
            Command::ConfigureRequest(ConfigureRequest {
                dcid: Cid(0x0040),
                flags: 0,
                options: vec![ConfigOption::Mtu(672)],
            }),
            Command::ConfigureResponse(ConfigureResponse {
                scid: Cid(0x0040),
                flags: 0,
                result: ConfigureResult::Success,
                options: vec![],
            }),
            Command::DisconnectionRequest(DisconnectionRequest {
                dcid: Cid(0x0041),
                scid: Cid(0x0040),
            }),
            Command::DisconnectionResponse(DisconnectionResponse {
                dcid: Cid(0x0041),
                scid: Cid(0x0040),
            }),
            Command::EchoRequest(EchoRequest {
                data: vec![1, 2, 3],
            }),
            Command::EchoResponse(EchoResponse { data: vec![] }),
            Command::InformationRequest(InformationRequest { info_type: 2 }),
            Command::InformationResponse(InformationResponse {
                info_type: 2,
                result: 0,
                data: vec![0xF8, 0x02, 0x00, 0x00],
            }),
            Command::CreateChannelRequest(CreateChannelRequest {
                psm: Psm::SDP,
                scid: Cid(0x0042),
                controller_id: 1,
            }),
            Command::CreateChannelResponse(CreateChannelResponse {
                dcid: Cid(0x0043),
                scid: Cid(0x0042),
                result: ConnectionResult::Success,
                status: 0,
            }),
            Command::MoveChannelRequest(MoveChannelRequest {
                icid: Cid(0x0040),
                dest_controller_id: 1,
            }),
            Command::MoveChannelResponse(MoveChannelResponse {
                icid: Cid(0x0040),
                result: MoveResult::Success,
            }),
            Command::MoveChannelConfirmationRequest(MoveChannelConfirmationRequest {
                icid: Cid(0x0040),
                result: 0,
            }),
            Command::MoveChannelConfirmationResponse(MoveChannelConfirmationResponse {
                icid: Cid(0x0040),
            }),
            Command::ConnectionParameterUpdateRequest(ConnectionParameterUpdateRequest {
                interval_min: 6,
                interval_max: 12,
                latency: 0,
                timeout: 200,
            }),
            Command::ConnectionParameterUpdateResponse(ConnectionParameterUpdateResponse {
                result: 0,
            }),
            Command::LeCreditBasedConnectionRequest(LeCreditBasedConnectionRequest {
                spsm: 0x0080,
                scid: Cid(0x0040),
                mtu: 512,
                mps: 64,
                initial_credits: 10,
            }),
            Command::LeCreditBasedConnectionResponse(LeCreditBasedConnectionResponse {
                dcid: Cid(0x0041),
                mtu: 512,
                mps: 64,
                initial_credits: 10,
                result: 0,
            }),
            Command::FlowControlCreditInd(FlowControlCreditInd {
                cid: Cid(0x0040),
                credits: 5,
            }),
            Command::CreditBasedConnectionRequest(CreditBasedConnectionRequest {
                spsm: 0x0080,
                mtu: 512,
                mps: 64,
                initial_credits: 10,
                scids: vec![Cid(0x0040), Cid(0x0041)],
            }),
            Command::CreditBasedConnectionResponse(CreditBasedConnectionResponse {
                mtu: 512,
                mps: 64,
                initial_credits: 10,
                result: 0,
                dcids: vec![Cid(0x0050), Cid(0x0051)],
            }),
            Command::CreditBasedReconfigureRequest(CreditBasedReconfigureRequest {
                mtu: 1024,
                mps: 128,
                dcids: vec![Cid(0x0050)],
            }),
            Command::CreditBasedReconfigureResponse(CreditBasedReconfigureResponse { result: 0 }),
        ]
    }

    #[test]
    fn every_command_roundtrips() {
        let samples = sample_commands();
        assert_eq!(samples.len(), 26, "one sample per Bluetooth 5.2 command");
        for cmd in samples {
            let data = cmd.encode_data();
            let back = Command::decode(cmd.code_byte(), &data);
            assert_eq!(back, cmd, "roundtrip failed for {cmd:?}");
        }
    }

    #[test]
    fn connection_request_wire_format() {
        let cmd = Command::ConnectionRequest(ConnectionRequest {
            psm: Psm::SDP,
            scid: Cid(0x0040),
        });
        assert_eq!(cmd.encode_data(), vec![0x01, 0x00, 0x40, 0x00]);
        assert_eq!(cmd.code_byte(), 0x02);
    }

    #[test]
    fn unknown_code_decodes_to_raw() {
        let cmd = Command::decode(0x7F, &[1, 2, 3]);
        assert_eq!(
            cmd,
            Command::Raw {
                code: 0x7F,
                data: vec![1, 2, 3]
            }
        );
        assert_eq!(cmd.code(), None);
        assert_eq!(cmd.code_byte(), 0x7F);
    }

    #[test]
    fn truncated_payload_decodes_to_raw() {
        // Connection request needs 4 bytes of data.
        let cmd = Command::decode(0x02, &[0x01]);
        assert!(matches!(cmd, Command::Raw { code: 0x02, .. }));
    }

    #[test]
    fn undefined_result_code_decodes_to_raw() {
        // Connection response with result = 0x00FF (undefined).
        let data = [0x41, 0x00, 0x40, 0x00, 0xFF, 0x00, 0x00, 0x00];
        let cmd = Command::decode(0x03, &data);
        assert!(matches!(cmd, Command::Raw { .. }));
    }

    #[test]
    fn garbage_tail_is_tolerated_on_fixed_size_commands() {
        // A connection request with 4 garbage bytes appended still decodes;
        // this mirrors how L2Fuzz's garbage-appending packets are parsed.
        let mut data = vec![0x01, 0x00, 0x40, 0x00];
        data.extend_from_slice(&[0xD2, 0x3A, 0x91, 0x0E]);
        let cmd = Command::decode(0x02, &data);
        assert_eq!(
            cmd,
            Command::ConnectionRequest(ConnectionRequest {
                psm: Psm::SDP,
                scid: Cid(0x0040)
            })
        );
    }

    #[test]
    fn config_request_with_options_roundtrips() {
        let cmd = Command::ConfigureRequest(ConfigureRequest {
            dcid: Cid(0x0040),
            flags: 0x0001,
            options: vec![
                ConfigOption::Mtu(0x2000),
                ConfigOption::FlushTimeout(0xFFFF),
            ],
        });
        let data = cmd.encode_data();
        assert_eq!(Command::decode(0x04, &data), cmd);
    }

    #[test]
    fn credit_based_request_parses_multiple_scids() {
        let cmd = Command::CreditBasedConnectionRequest(CreditBasedConnectionRequest {
            spsm: 0x0080,
            mtu: 256,
            mps: 64,
            initial_credits: 1,
            scids: vec![
                Cid(0x0040),
                Cid(0x0041),
                Cid(0x0042),
                Cid(0x0043),
                Cid(0x0044),
            ],
        });
        let data = cmd.encode_data();
        match Command::decode(0x17, &data) {
            Command::CreditBasedConnectionRequest(c) => assert_eq!(c.scids.len(), 5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn code_matches_code_byte_for_all_samples() {
        for cmd in sample_commands() {
            assert_eq!(cmd.code().unwrap().value(), cmd.code_byte());
        }
    }
}
