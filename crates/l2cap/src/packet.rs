//! L2CAP framing (Fig. 3 of the paper).
//!
//! A transmitted L2CAP packet consists of the basic header — `PAYLOAD LEN`
//! and `HEADER CID` — followed by the payload; on the signalling channel
//! (CID `0x0001`) the payload is a C-frame carrying `CODE`, `ID`,
//! `DATA LEN` and the command's data fields.
//!
//! Both [`L2capFrame`] and [`SignalingPacket`] keep the *declared* length
//! fields separate from the bytes actually carried.  This matters for a
//! fuzzer: the paper's mutation example (Fig. 7) appends garbage to the tail
//! of a Configure Request without touching the dependent length fields, so a
//! malformed packet routinely declares less data than it carries.  The codec
//! must be able to represent, emit and re-parse such packets byte-exactly.

use btcore::{ByteReader, Cid, CodecError, FrameArena, FrameBuf, Identifier};
use serde::{Deserialize, Serialize};

use crate::command::Command;

/// Default signalling MTU (bytes) used by the simulated stacks and by the
/// garbage-length bound of core-field mutation.
pub const DEFAULT_SIGNALING_MTU: u16 = 672;

/// Minimum signalling MTU every implementation must support on ACL-U links.
pub const MIN_SIGNALING_MTU: u16 = 48;

/// Maximum size of an L2CAP payload (the `PAYLOAD LEN` field is 16 bits).
pub const MAX_PAYLOAD_LEN: usize = 65_535;

/// An L2CAP basic-header frame: declared payload length, channel ID and the
/// payload bytes actually present.
///
/// The payload is a [`FrameBuf`]: cloning a frame (for a tap record, a queue
/// outcome or a response fan-out) shares the payload bytes instead of copying
/// them, and [`L2capFrame::parse_buf`] yields a payload that is a zero-copy
/// view into the parsed buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct L2capFrame {
    /// The `PAYLOAD LEN` field as transmitted (may disagree with
    /// `payload.len()` in malformed packets).
    pub declared_payload_len: u16,
    /// The `HEADER CID` field — `0x0001` for signalling traffic.
    pub cid: Cid,
    /// Payload bytes actually carried.
    pub payload: FrameBuf,
}

impl L2capFrame {
    /// Builds a well-formed frame whose declared length matches the payload.
    pub fn new(cid: Cid, payload: impl Into<FrameBuf>) -> Self {
        let payload = payload.into();
        L2capFrame {
            declared_payload_len: payload.len() as u16,
            cid,
            payload,
        }
    }

    /// Returns `true` if the declared payload length matches the bytes
    /// actually carried.
    pub fn is_length_consistent(&self) -> bool {
        usize::from(self.declared_payload_len) == self.payload.len()
    }

    /// Serializes the frame: declared length, CID, then the payload bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + self.payload.len());
        self.encode_into(&mut out);
        out
    }

    /// Serializes the frame into `out` (cleared first).  Lets transmit hot
    /// paths reuse one scratch buffer instead of allocating per frame.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(4 + self.payload.len());
        out.extend_from_slice(&self.declared_payload_len.to_le_bytes());
        out.extend_from_slice(&self.cid.value().to_le_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// Parses a frame from raw bytes.  The payload is everything after the
    /// 4-byte basic header, regardless of the declared length.
    ///
    /// The payload bytes are copied; when the input already lives in a
    /// [`FrameBuf`], prefer [`L2capFrame::parse_buf`], which borrows them.
    ///
    /// # Errors
    /// Returns [`CodecError::UnexpectedEnd`] if fewer than four header bytes
    /// are present.
    pub fn parse(bytes: &[u8]) -> Result<L2capFrame, CodecError> {
        let mut r = ByteReader::new(bytes);
        let declared_payload_len = r.read_u16()?;
        let cid = Cid(r.read_u16()?);
        let payload = FrameBuf::copy_from_slice(r.read_rest());
        Ok(L2capFrame {
            declared_payload_len,
            cid,
            payload,
        })
    }

    /// Zero-copy variant of [`L2capFrame::parse`]: the returned frame's
    /// payload is a shared view into `bytes` — no payload byte is copied.
    /// The two parse paths are byte-for-byte equivalent on every input.
    ///
    /// # Errors
    /// Returns [`CodecError::UnexpectedEnd`] if fewer than four header bytes
    /// are present.
    pub fn parse_buf(bytes: &FrameBuf) -> Result<L2capFrame, CodecError> {
        let mut r = ByteReader::new(bytes);
        let declared_payload_len = r.read_u16()?;
        let cid = Cid(r.read_u16()?);
        Ok(L2capFrame {
            declared_payload_len,
            cid,
            payload: bytes.slice(4..),
        })
    }

    /// Total number of bytes this frame occupies on the air.
    pub fn wire_len(&self) -> usize {
        4 + self.payload.len()
    }
}

/// A signalling C-frame payload: command code, identifier, declared data
/// length and the data-field bytes actually carried.
///
/// Like [`L2capFrame::payload`], the data field is a [`FrameBuf`], so cloning
/// a packet — e.g. into a queue outcome — shares the bytes instead of copying
/// them, and [`SignalingPacket::parse_buf`] borrows them from the parsed
/// frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SignalingPacket {
    /// The packet identifier matching responses to requests.
    pub identifier: Identifier,
    /// Raw command code byte.
    pub code: u8,
    /// The `DATA LEN` field as transmitted (may disagree with `data.len()`).
    pub declared_data_len: u16,
    /// Data-field bytes actually carried (including any appended garbage).
    pub data: FrameBuf,
}

impl SignalingPacket {
    /// Builds a well-formed signalling packet for `command`.
    pub fn new(identifier: Identifier, command: Command) -> Self {
        let data = command.encode_data();
        SignalingPacket {
            identifier,
            code: command.code_byte(),
            declared_data_len: data.len() as u16,
            data: data.into(),
        }
    }

    /// Builds a packet from raw parts, declaring exactly `data.len()`.
    pub fn from_raw(identifier: Identifier, code: u8, data: impl Into<FrameBuf>) -> Self {
        let data = data.into();
        SignalingPacket {
            identifier,
            code,
            declared_data_len: data.len() as u16,
            data,
        }
    }

    /// Decodes the typed command carried by this packet (never fails; see
    /// [`Command::decode`]).
    pub fn command(&self) -> Command {
        Command::decode(self.code, &self.data)
    }

    /// Returns `true` if the declared data length matches the data actually
    /// carried.
    pub fn is_length_consistent(&self) -> bool {
        usize::from(self.declared_data_len) == self.data.len()
    }

    /// Estimates the number of garbage bytes appended to this packet: bytes
    /// beyond the command's defined fixed-size fields, or bytes beyond the
    /// declared data length, whichever detects more.  This mirrors how a
    /// receiving stack (and the trace analysis) recognises L2Fuzz's
    /// garbage-appending mutation, including on commands such as Configure
    /// Request whose last field is variable-length.
    pub fn garbage_len(&self) -> usize {
        let structural = crate::code::CommandCode::from_u8(self.code)
            .map(|code| crate::fields::garbage_len(code, &self.data))
            .unwrap_or(0);
        let beyond_declared = self
            .data
            .len()
            .saturating_sub(usize::from(self.declared_data_len));
        structural.max(beyond_declared)
    }

    /// Serializes the C-frame: code, identifier, declared length, data bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Serializes the C-frame into `out` (cleared first); the single
    /// serialization path every other encoder of this packet goes through.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.clear();
        out.reserve(4 + self.data.len());
        out.push(self.code);
        out.push(self.identifier.value());
        out.extend_from_slice(&self.declared_data_len.to_le_bytes());
        out.extend_from_slice(&self.data);
    }

    /// Parses a C-frame from raw bytes; the data field is everything after
    /// the 4-byte command header, regardless of the declared length.
    ///
    /// The data bytes are copied; when the input already lives in a
    /// [`FrameBuf`], prefer [`SignalingPacket::parse_buf`], which borrows
    /// them.
    ///
    /// # Errors
    /// Returns [`CodecError::UnexpectedEnd`] if fewer than four header bytes
    /// are present.
    pub fn parse(bytes: &[u8]) -> Result<SignalingPacket, CodecError> {
        let mut r = ByteReader::new(bytes);
        let code = r.read_u8()?;
        let identifier = Identifier(r.read_u8()?);
        let declared_data_len = r.read_u16()?;
        let data = FrameBuf::copy_from_slice(r.read_rest());
        Ok(SignalingPacket {
            identifier,
            code,
            declared_data_len,
            data,
        })
    }

    /// Zero-copy variant of [`SignalingPacket::parse`]: the returned packet's
    /// data field is a shared view into `bytes` — no data byte is copied.
    /// The two parse paths are byte-for-byte equivalent on every input.
    ///
    /// # Errors
    /// Returns [`CodecError::UnexpectedEnd`] if fewer than four header bytes
    /// are present.
    pub fn parse_buf(bytes: &FrameBuf) -> Result<SignalingPacket, CodecError> {
        let mut r = ByteReader::new(bytes);
        let code = r.read_u8()?;
        let identifier = Identifier(r.read_u8()?);
        let declared_data_len = r.read_u16()?;
        Ok(SignalingPacket {
            identifier,
            code,
            declared_data_len,
            data: bytes.slice(4..),
        })
    }

    /// Wraps this signalling packet in an L2CAP frame on the signalling
    /// channel, with consistent length fields.
    pub fn into_frame(self) -> L2capFrame {
        self.to_frame()
    }

    /// When this packet's data is a slice four bytes into a buffer whose
    /// preceding bytes are exactly the C-frame header the current field
    /// values encode to, returns that whole buffer: re-framing is then a
    /// zero-copy widening of the data view.  This holds for every packet
    /// produced by [`SignalingPacket::parse_buf`] / [`parse_signaling`] and
    /// for mutator output, unless a field was modified afterwards (the header
    /// comparison catches that and the caller falls back to encoding).
    fn cached_wire(&self) -> Option<FrameBuf> {
        let whole = self.data.widen_front(4)?;
        let header = &whole[..4];
        (header[0] == self.code
            && header[1] == self.identifier.value()
            && header[2..4] == self.declared_data_len.to_le_bytes())
        .then_some(whole)
    }

    /// Borrowing variant of [`SignalingPacket::into_frame`]: builds the frame
    /// without consuming (or cloning) the packet — and without copying any
    /// byte when the packet still carries its wire form (see
    /// [`SignalingPacket::parse_buf`]).
    pub fn to_frame(&self) -> L2capFrame {
        match self.cached_wire() {
            Some(wire) => L2capFrame::new(Cid::SIGNALING, wire),
            None => L2capFrame::new(Cid::SIGNALING, self.to_bytes()),
        }
    }

    /// Arena-backed variant of [`SignalingPacket::to_frame`]: the frame's
    /// payload is encoded into a buffer checked out of `arena`, which returns
    /// to the arena's pool when the frame (and every tap record sharing its
    /// payload) is dropped.  This is the transmit hot path — steady state, it
    /// performs no backing-store allocation (and none at all when the packet
    /// still carries its wire form).
    pub fn to_frame_in(&self, arena: &FrameArena) -> L2capFrame {
        if let Some(wire) = self.cached_wire() {
            return L2capFrame::new(Cid::SIGNALING, wire);
        }
        let mut buf = arena.checkout();
        self.encode_into(&mut buf);
        L2capFrame::new(Cid::SIGNALING, buf.freeze())
    }

    /// Total number of bytes the C-frame occupies within the L2CAP payload.
    pub fn wire_len(&self) -> usize {
        4 + self.data.len()
    }
}

/// Convenience: builds the full signalling frame for a command in one call.
pub fn signaling_frame(identifier: Identifier, command: Command) -> L2capFrame {
    SignalingPacket::new(identifier, command).into_frame()
}

/// Arena-backed variant of [`signaling_frame`]: encodes the whole C-frame —
/// code, identifier, data length, data fields — directly into one buffer
/// checked out of `arena`, skipping the intermediate [`SignalingPacket`] and
/// its owned data vector.  Steady state this allocates only the frame's
/// shared handle.  Produces bit-identical frames to [`signaling_frame`].
pub fn signaling_frame_in(
    arena: &FrameArena,
    identifier: Identifier,
    command: &Command,
) -> L2capFrame {
    let mut buf = arena.checkout();
    buf.push(command.code_byte());
    buf.push(identifier.value());
    buf.extend_from_slice(&[0, 0]); // DATA LEN, patched once the length is known.
    command.encode_data_into(&mut buf);
    let data_len = (buf.len() - 4) as u16;
    buf[2..4].copy_from_slice(&data_len.to_le_bytes());
    L2capFrame::new(Cid::SIGNALING, buf.freeze())
}

/// Parses the signalling packet out of an L2CAP frame, if the frame is on the
/// signalling channel.  The returned packet's data field borrows the frame's
/// payload buffer — no bytes are copied.
///
/// # Errors
/// Returns a [`CodecError`] if the frame is not on CID `0x0001` or its
/// payload is shorter than a C-frame header.
pub fn parse_signaling(frame: &L2capFrame) -> Result<SignalingPacket, CodecError> {
    if !frame.cid.is_signaling() {
        return Err(CodecError::InvalidValue {
            field: "header_cid".to_owned(),
            value: u64::from(frame.cid.value()),
        });
    }
    SignalingPacket::parse_buf(&frame.payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::{ConfigureRequest, ConnectionRequest};
    use crate::options::ConfigOption;
    use btcore::codec::hex_dump;
    use btcore::Psm;

    #[test]
    fn frame_roundtrip() {
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        let bytes = frame.to_bytes();
        let back = L2capFrame::parse(&bytes).unwrap();
        assert_eq!(frame, back);
        assert!(back.is_length_consistent());
        assert_eq!(back.wire_len(), bytes.len());
    }

    #[test]
    fn signaling_packet_roundtrip() {
        let cmd = Command::ConnectionRequest(ConnectionRequest {
            psm: Psm::SDP,
            scid: Cid(0x0040),
        });
        let pkt = SignalingPacket::new(Identifier(1), cmd.clone());
        let back = SignalingPacket::parse(&pkt.to_bytes()).unwrap();
        assert_eq!(pkt, back);
        assert_eq!(back.command(), cmd);
        assert!(back.is_length_consistent());
    }

    #[test]
    fn paper_fig7_original_packet_bytes() {
        // The well-formed Config Req of Fig. 7:
        // 0C 00 | 01 00 | 04 | 06 | 08 00 | 40 00 | 00 20 | 01 02 00 04
        let pkt = SignalingPacket {
            identifier: Identifier(0x06),
            code: 0x04,
            declared_data_len: 0x0008,
            data: vec![0x40, 0x00, 0x00, 0x20, 0x01, 0x02, 0x00, 0x04].into(),
        };
        let frame = L2capFrame::new(Cid::SIGNALING, pkt.to_bytes());
        assert_eq!(
            hex_dump(&frame.to_bytes()),
            "0C 00 01 00 04 06 08 00 40 00 00 20 01 02 00 04"
        );
    }

    #[test]
    fn malformed_packet_with_stale_lengths_roundtrips() {
        // The mutated Config Req of Fig. 7 keeps PAYLOAD LEN / DATA LEN at
        // their original values while the data grew by 4 garbage bytes.
        let pkt = SignalingPacket {
            identifier: Identifier(0x06),
            code: 0x04,
            declared_data_len: 0x0008,
            data: vec![
                0x8F, 0x7B, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xD2, 0x3A, 0x91, 0x0E,
            ]
            .into(),
        };
        assert!(!pkt.is_length_consistent());
        let frame = L2capFrame {
            declared_payload_len: 0x000C,
            cid: Cid::SIGNALING,
            payload: pkt.to_bytes().into(),
        };
        assert!(!frame.is_length_consistent());
        let wire = frame.to_bytes();
        assert_eq!(
            hex_dump(&wire),
            "0C 00 01 00 04 06 08 00 8F 7B 00 00 00 00 00 00 D2 3A 91 0E"
        );
        let back = L2capFrame::parse(&wire).unwrap();
        assert_eq!(back, frame);
        let sig = parse_signaling(&back).unwrap();
        assert_eq!(sig, pkt);
    }

    #[test]
    fn parse_signaling_rejects_non_signaling_cid() {
        let frame = L2capFrame::new(Cid(0x0040), vec![0x02, 0x01, 0x04, 0x00]);
        assert!(parse_signaling(&frame).is_err());
    }

    #[test]
    fn parse_requires_minimum_header() {
        assert!(L2capFrame::parse(&[0x01, 0x02, 0x03]).is_err());
        assert!(SignalingPacket::parse(&[0x01]).is_err());
        assert!(L2capFrame::parse(&[0x00, 0x00, 0x01, 0x00]).is_ok());
    }

    #[test]
    fn signaling_frame_helper_produces_consistent_lengths() {
        let cmd = Command::ConfigureRequest(ConfigureRequest {
            dcid: Cid(0x0040),
            flags: 0,
            options: vec![ConfigOption::Mtu(672)],
        });
        let frame = signaling_frame(Identifier(3), cmd.clone());
        assert!(frame.is_length_consistent());
        assert!(frame.cid.is_signaling());
        let sig = parse_signaling(&frame).unwrap();
        assert!(sig.is_length_consistent());
        assert_eq!(sig.command(), cmd);
        assert_eq!(sig.identifier, Identifier(3));
    }

    #[test]
    fn garbage_len_detects_both_kinds_of_tails() {
        // Fixed-size command with 4 extra bytes.
        let mut pkt = SignalingPacket::from_raw(Identifier(1), 0x02, vec![0x01, 0x00, 0x40, 0x00]);
        assert_eq!(pkt.garbage_len(), 0);
        let mut grown = pkt.data.to_vec();
        grown.extend_from_slice(&[1, 2, 3, 4]);
        pkt.data = grown.into();
        assert_eq!(pkt.garbage_len(), 4);

        // Variable-tail command (Config Req) with stale declared length, as
        // in the paper's Fig. 7 mutation.
        let pkt = SignalingPacket {
            identifier: Identifier(6),
            code: 0x04,
            declared_data_len: 8,
            data: vec![0x8F, 0x7B, 0, 0, 0, 0, 0, 0, 0xD2, 0x3A, 0x91, 0x0E].into(),
        };
        assert_eq!(pkt.garbage_len(), 4);

        // Well-formed Config Req with real options has no garbage.
        let cmd = Command::ConfigureRequest(ConfigureRequest {
            dcid: Cid(0x40),
            flags: 0,
            options: vec![ConfigOption::Mtu(672)],
        });
        assert_eq!(SignalingPacket::new(Identifier(2), cmd).garbage_len(), 0);
    }

    #[test]
    fn parse_buf_is_zero_copy_and_equivalent_to_parse() {
        let pkt = SignalingPacket {
            identifier: Identifier(0x06),
            code: 0x04,
            declared_data_len: 0x0008,
            data: vec![
                0x8F, 0x7B, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xD2, 0x3A, 0x91, 0x0E,
            ]
            .into(),
        };
        let wire = btcore::FrameBuf::from_vec(pkt.to_frame().to_bytes());
        let owned = L2capFrame::parse(&wire).unwrap();
        let shared = L2capFrame::parse_buf(&wire).unwrap();
        assert_eq!(owned, shared);
        assert!(shared.payload.shares_storage_with(&wire));
        // The signalling layer borrows from the frame payload in turn.
        let sig = parse_signaling(&shared).unwrap();
        assert_eq!(sig, pkt);
        assert!(sig.data.shares_storage_with(&wire));
    }

    #[test]
    fn to_frame_in_reuses_arena_buffers() {
        let arena = btcore::FrameArena::new();
        let pkt = SignalingPacket::new(
            Identifier(1),
            Command::ConnectionRequest(ConnectionRequest {
                psm: Psm::SDP,
                scid: Cid(0x0040),
            }),
        );
        let frame = pkt.to_frame_in(&arena);
        assert_eq!(frame, pkt.to_frame());
        drop(frame);
        assert_eq!(arena.pooled(), 1);
        // The recycled buffer backs the next frame.
        let again = pkt.to_frame_in(&arena);
        assert_eq!(arena.pooled(), 0);
        assert_eq!(again, pkt.to_frame());
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn constants_are_sane() {
        assert!(MIN_SIGNALING_MTU < DEFAULT_SIGNALING_MTU);
        assert_eq!(MAX_PAYLOAD_LEN, 0xFFFF);
    }
}
