//! Configuration options carried by Configure Request / Response.
//!
//! These are the `OPT` / `QoS` / `MTU` values the paper classifies as
//! *mutable application* fields (Fig. 6): L2Fuzz leaves them at their default
//! values, but the protocol substrate still needs to encode and decode them
//! so that normal state-transition packets and the simulated target's own
//! configuration requests are spec-conformant.

use btcore::{ByteReader, ByteWriter, CodecError};
use serde::{Deserialize, Serialize};

/// Default signalling MTU advertised in configuration requests (bytes).
pub const DEFAULT_MTU: u16 = 672;

/// A single configuration option TLV.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfigOption {
    /// Maximum Transmission Unit (type `0x01`).
    Mtu(
        /// MTU in bytes.
        u16,
    ),
    /// Flush timeout (type `0x02`).
    FlushTimeout(
        /// Timeout in milliseconds (0xFFFF = infinite).
        u16,
    ),
    /// Quality of Service (type `0x03`).
    QoS(QoSFlowSpec),
    /// Retransmission and flow control (type `0x04`).
    RetransmissionAndFlowControl(RetransmissionConfig),
    /// Frame check sequence option (type `0x05`).
    Fcs(
        /// 0 = no FCS, 1 = 16-bit FCS.
        u8,
    ),
    /// Extended flow specification (type `0x06`); body kept opaque.
    ExtendedFlowSpec(
        /// Raw option body.
        Vec<u8>,
    ),
    /// Extended window size (type `0x07`).
    ExtendedWindowSize(
        /// Window size.
        u16,
    ),
    /// Any option type this implementation does not model structurally.
    Unknown {
        /// Raw option type byte.
        option_type: u8,
        /// Raw option body.
        body: Vec<u8>,
    },
}

/// Quality of Service flow specification (option type `0x03`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QoSFlowSpec {
    /// Flags (reserved, normally zero).
    pub flags: u8,
    /// Service type: 0 = no traffic, 1 = best effort (default), 2 = guaranteed.
    pub service_type: u8,
    /// Token rate in octets per second.
    pub token_rate: u32,
    /// Token bucket size in octets.
    pub token_bucket_size: u32,
    /// Peak bandwidth in octets per second.
    pub peak_bandwidth: u32,
    /// Latency in microseconds.
    pub latency: u32,
    /// Delay variation in microseconds.
    pub delay_variation: u32,
}

impl Default for QoSFlowSpec {
    fn default() -> Self {
        QoSFlowSpec {
            flags: 0,
            service_type: 1,
            token_rate: 0,
            token_bucket_size: 0,
            peak_bandwidth: 0,
            latency: 0xFFFF_FFFF,
            delay_variation: 0xFFFF_FFFF,
        }
    }
}

/// Retransmission and flow control option (option type `0x04`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RetransmissionConfig {
    /// Mode: 0 = basic, 1 = retransmission, 2 = flow control, 3 = enhanced
    /// retransmission, 4 = streaming.
    pub mode: u8,
    /// Transmit window size.
    pub tx_window: u8,
    /// Maximum transmit attempts.
    pub max_transmit: u8,
    /// Retransmission timeout in milliseconds.
    pub retransmission_timeout: u16,
    /// Monitor timeout in milliseconds.
    pub monitor_timeout: u16,
    /// Maximum PDU payload size.
    pub mps: u16,
}

impl ConfigOption {
    /// Returns the option's type byte.
    pub fn option_type(&self) -> u8 {
        match self {
            ConfigOption::Mtu(_) => 0x01,
            ConfigOption::FlushTimeout(_) => 0x02,
            ConfigOption::QoS(_) => 0x03,
            ConfigOption::RetransmissionAndFlowControl(_) => 0x04,
            ConfigOption::Fcs(_) => 0x05,
            ConfigOption::ExtendedFlowSpec(_) => 0x06,
            ConfigOption::ExtendedWindowSize(_) => 0x07,
            ConfigOption::Unknown { option_type, .. } => *option_type,
        }
    }

    /// Encodes the option as a type/length/value triple.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.write_u8(self.option_type());
        match self {
            ConfigOption::Mtu(mtu) => {
                w.write_u8(2);
                w.write_u16(*mtu);
            }
            ConfigOption::FlushTimeout(t) => {
                w.write_u8(2);
                w.write_u16(*t);
            }
            ConfigOption::QoS(q) => {
                w.write_u8(22);
                w.write_u8(q.flags);
                w.write_u8(q.service_type);
                w.write_u32(q.token_rate);
                w.write_u32(q.token_bucket_size);
                w.write_u32(q.peak_bandwidth);
                w.write_u32(q.latency);
                w.write_u32(q.delay_variation);
            }
            ConfigOption::RetransmissionAndFlowControl(r) => {
                w.write_u8(9);
                w.write_u8(r.mode);
                w.write_u8(r.tx_window);
                w.write_u8(r.max_transmit);
                w.write_u16(r.retransmission_timeout);
                w.write_u16(r.monitor_timeout);
                w.write_u16(r.mps);
            }
            ConfigOption::Fcs(f) => {
                w.write_u8(1);
                w.write_u8(*f);
            }
            ConfigOption::ExtendedFlowSpec(body) => {
                w.write_u8(body.len() as u8);
                w.write_bytes(body);
            }
            ConfigOption::ExtendedWindowSize(ws) => {
                w.write_u8(2);
                w.write_u16(*ws);
            }
            ConfigOption::Unknown { body, .. } => {
                w.write_u8(body.len() as u8);
                w.write_bytes(body);
            }
        }
    }

    /// Decodes a single option from the reader.
    ///
    /// # Errors
    /// Returns a [`CodecError`] if the option is truncated.
    pub fn decode(r: &mut ByteReader<'_>) -> Result<ConfigOption, CodecError> {
        let option_type = r.read_u8()?;
        let len = r.read_u8()? as usize;
        let body = r.read_bytes(len)?;
        let mut br = ByteReader::new(body);
        let opt = match (option_type & 0x7F, len) {
            (0x01, 2) => ConfigOption::Mtu(br.read_u16()?),
            (0x02, 2) => ConfigOption::FlushTimeout(br.read_u16()?),
            (0x03, 22) => ConfigOption::QoS(QoSFlowSpec {
                flags: br.read_u8()?,
                service_type: br.read_u8()?,
                token_rate: br.read_u32()?,
                token_bucket_size: br.read_u32()?,
                peak_bandwidth: br.read_u32()?,
                latency: br.read_u32()?,
                delay_variation: br.read_u32()?,
            }),
            (0x04, 9) => ConfigOption::RetransmissionAndFlowControl(RetransmissionConfig {
                mode: br.read_u8()?,
                tx_window: br.read_u8()?,
                max_transmit: br.read_u8()?,
                retransmission_timeout: br.read_u16()?,
                monitor_timeout: br.read_u16()?,
                mps: br.read_u16()?,
            }),
            (0x05, 1) => ConfigOption::Fcs(br.read_u8()?),
            (0x06, _) => ConfigOption::ExtendedFlowSpec(body.to_vec()),
            (0x07, 2) => ConfigOption::ExtendedWindowSize(br.read_u16()?),
            _ => ConfigOption::Unknown {
                option_type,
                body: body.to_vec(),
            },
        };
        Ok(opt)
    }

    /// Decodes a sequence of options until the reader is exhausted.
    ///
    /// # Errors
    /// Returns a [`CodecError`] if any option is truncated.
    pub fn decode_all(r: &mut ByteReader<'_>) -> Result<Vec<ConfigOption>, CodecError> {
        let mut opts = Vec::new();
        while !r.is_empty() {
            opts.push(ConfigOption::decode(r)?);
        }
        Ok(opts)
    }

    /// Returns `true` exactly when [`ConfigOption::decode_all`] would succeed
    /// on `bytes` — option decoding only ever fails on truncation, so a
    /// type/length walk suffices and nothing is allocated.
    pub fn all_structurally_valid(bytes: &[u8]) -> bool {
        let mut pos = 0usize;
        while pos < bytes.len() {
            // One type byte, one length byte, `len` body bytes.
            let Some(len) = bytes.get(pos + 1) else {
                return false;
            };
            pos += 2 + usize::from(*len);
            if pos > bytes.len() {
                return false;
            }
        }
        true
    }

    /// Scans an encoded option sequence for the first retransmission-and-
    /// flow-control option (type `0x04`, length 9) and returns its parsed
    /// body.  Tolerates malformed tails: the walk stops at the first
    /// truncated TLV, keeping whatever was found before it.  This is the
    /// allocation-free probe the endpoint's vulnerability evaluation and the
    /// sniffer use to spot ERTM/streaming-mode configuration attempts without
    /// decoding the whole option list.
    pub fn scan_rfc_option(bytes: &[u8]) -> Option<RetransmissionConfig> {
        let mut pos = 0usize;
        while pos + 2 <= bytes.len() {
            let option_type = bytes[pos] & 0x7F;
            let len = usize::from(bytes[pos + 1]);
            let body_end = pos + 2 + len;
            if body_end > bytes.len() {
                return None;
            }
            if option_type == 0x04 && len == 9 {
                let b = &bytes[pos + 2..body_end];
                return Some(RetransmissionConfig {
                    mode: b[0],
                    tx_window: b[1],
                    max_transmit: b[2],
                    retransmission_timeout: u16::from_le_bytes([b[3], b[4]]),
                    monitor_timeout: u16::from_le_bytes([b[5], b[6]]),
                    mps: u16::from_le_bytes([b[7], b[8]]),
                });
            }
            pos = body_end;
        }
        None
    }

    /// Encodes a sequence of options into raw bytes.
    pub fn encode_all(options: &[ConfigOption]) -> Vec<u8> {
        let mut w = ByteWriter::new();
        for opt in options {
            opt.encode(&mut w);
        }
        w.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(opt: ConfigOption) {
        let bytes = ConfigOption::encode_all(std::slice::from_ref(&opt));
        let mut r = ByteReader::new(&bytes);
        let back = ConfigOption::decode(&mut r).unwrap();
        assert_eq!(opt, back);
        assert!(r.is_empty());
    }

    #[test]
    fn mtu_option_roundtrip_and_wire_format() {
        let bytes = ConfigOption::encode_all(&[ConfigOption::Mtu(0x2000)]);
        // Matches the paper's Fig. 7 example option bytes: 01 02 00 20.
        assert_eq!(bytes, vec![0x01, 0x02, 0x00, 0x20]);
        roundtrip(ConfigOption::Mtu(672));
    }

    #[test]
    fn all_structured_options_roundtrip() {
        roundtrip(ConfigOption::FlushTimeout(0xFFFF));
        roundtrip(ConfigOption::QoS(QoSFlowSpec::default()));
        roundtrip(ConfigOption::RetransmissionAndFlowControl(
            RetransmissionConfig {
                mode: 3,
                tx_window: 8,
                max_transmit: 3,
                retransmission_timeout: 2000,
                monitor_timeout: 12000,
                mps: 1010,
            },
        ));
        roundtrip(ConfigOption::Fcs(1));
        roundtrip(ConfigOption::ExtendedWindowSize(64));
        roundtrip(ConfigOption::ExtendedFlowSpec(vec![1, 2, 3, 4]));
        roundtrip(ConfigOption::Unknown {
            option_type: 0x55,
            body: vec![0xAA, 0xBB],
        });
    }

    #[test]
    fn decode_all_handles_multiple_options() {
        let opts = vec![
            ConfigOption::Mtu(672),
            ConfigOption::FlushTimeout(0xFFFF),
            ConfigOption::Fcs(0),
        ];
        let bytes = ConfigOption::encode_all(&opts);
        let mut r = ByteReader::new(&bytes);
        let back = ConfigOption::decode_all(&mut r).unwrap();
        assert_eq!(back, opts);
    }

    #[test]
    fn truncated_option_is_an_error_not_a_panic() {
        // MTU option claims 2 body bytes but provides none.
        let bytes = [0x01, 0x02];
        let mut r = ByteReader::new(&bytes);
        assert!(ConfigOption::decode(&mut r).is_err());
    }

    #[test]
    fn wrong_length_falls_back_to_unknown() {
        // MTU option with a 3-byte body is not structurally valid; keep it raw.
        let bytes = [0x01, 0x03, 0x01, 0x02, 0x03];
        let mut r = ByteReader::new(&bytes);
        match ConfigOption::decode(&mut r).unwrap() {
            ConfigOption::Unknown { option_type, body } => {
                assert_eq!(option_type, 0x01);
                assert_eq!(body, vec![1, 2, 3]);
            }
            other => panic!("expected Unknown, got {other:?}"),
        }
    }

    #[test]
    fn scan_rfc_option_finds_the_option_among_others_and_tolerates_garbage() {
        let rfc = RetransmissionConfig {
            mode: 3,
            tx_window: 0,
            max_transmit: 1,
            retransmission_timeout: 2000,
            monitor_timeout: 12000,
            mps: 0,
        };
        let mut bytes = ConfigOption::encode_all(&[
            ConfigOption::Mtu(672),
            ConfigOption::RetransmissionAndFlowControl(rfc),
            ConfigOption::Fcs(1),
        ]);
        assert_eq!(ConfigOption::scan_rfc_option(&bytes), Some(rfc));
        // A truncated garbage tail after the option does not hide it.
        bytes.extend_from_slice(&[0xD2, 0x3A, 0x91]);
        assert_eq!(ConfigOption::scan_rfc_option(&bytes), Some(rfc));
        // No RFC option present.
        let bytes = ConfigOption::encode_all(&[ConfigOption::Mtu(672)]);
        assert_eq!(ConfigOption::scan_rfc_option(&bytes), None);
        assert_eq!(ConfigOption::scan_rfc_option(&[]), None);
    }

    #[test]
    fn qos_default_is_best_effort() {
        let q = QoSFlowSpec::default();
        assert_eq!(q.service_type, 1);
        assert_eq!(q.latency, 0xFFFF_FFFF);
    }
}
