//! Result, status, reject-reason and information-type codes used in
//! signalling command payloads.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Reason codes carried by a Command Reject packet.
///
/// The paper's mutation design is built around avoiding exactly these
/// rejections: mutating fixed/dependent fields provokes *command not
/// understood*, an out-of-range CIDP provokes *invalid CID in request*, and a
/// garbage tail longer than the signalling MTU provokes *signaling MTU
/// exceeded* (§III-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u16)]
pub enum RejectReason {
    /// `0x0000` Command not understood.
    CommandNotUnderstood = 0x0000,
    /// `0x0001` Signaling MTU exceeded.
    SignalingMtuExceeded = 0x0001,
    /// `0x0002` Invalid CID in request.
    InvalidCidInRequest = 0x0002,
}

impl RejectReason {
    /// Converts a raw reason value, if defined.
    pub fn from_u16(v: u16) -> Option<RejectReason> {
        match v {
            0x0000 => Some(RejectReason::CommandNotUnderstood),
            0x0001 => Some(RejectReason::SignalingMtuExceeded),
            0x0002 => Some(RejectReason::InvalidCidInRequest),
            _ => None,
        }
    }

    /// Returns the on-air value.
    pub const fn value(&self) -> u16 {
        *self as u16
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RejectReason::CommandNotUnderstood => "command not understood",
            RejectReason::SignalingMtuExceeded => "signaling MTU exceeded",
            RejectReason::InvalidCidInRequest => "invalid CID in request",
        };
        f.write_str(s)
    }
}

/// Result codes for Connection Response and Create Channel Response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u16)]
pub enum ConnectionResult {
    /// `0x0000` Connection successful.
    Success = 0x0000,
    /// `0x0001` Connection pending.
    Pending = 0x0001,
    /// `0x0002` Connection refused – PSM not supported.
    RefusedPsmNotSupported = 0x0002,
    /// `0x0003` Connection refused – security block.
    RefusedSecurityBlock = 0x0003,
    /// `0x0004` Connection refused – no resources available.
    RefusedNoResources = 0x0004,
    /// `0x0006` Connection refused – invalid Source CID.
    RefusedInvalidScid = 0x0006,
    /// `0x0007` Connection refused – Source CID already allocated.
    RefusedScidInUse = 0x0007,
}

impl ConnectionResult {
    /// Converts a raw result value, if defined.
    pub fn from_u16(v: u16) -> Option<ConnectionResult> {
        match v {
            0x0000 => Some(ConnectionResult::Success),
            0x0001 => Some(ConnectionResult::Pending),
            0x0002 => Some(ConnectionResult::RefusedPsmNotSupported),
            0x0003 => Some(ConnectionResult::RefusedSecurityBlock),
            0x0004 => Some(ConnectionResult::RefusedNoResources),
            0x0006 => Some(ConnectionResult::RefusedInvalidScid),
            0x0007 => Some(ConnectionResult::RefusedScidInUse),
            _ => None,
        }
    }

    /// Returns the on-air value.
    pub const fn value(&self) -> u16 {
        *self as u16
    }

    /// Returns `true` if the result denies the connection.
    pub const fn is_refusal(&self) -> bool {
        !matches!(self, ConnectionResult::Success | ConnectionResult::Pending)
    }
}

impl fmt::Display for ConnectionResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConnectionResult::Success => "success",
            ConnectionResult::Pending => "pending",
            ConnectionResult::RefusedPsmNotSupported => "refused: PSM not supported",
            ConnectionResult::RefusedSecurityBlock => "refused: security block",
            ConnectionResult::RefusedNoResources => "refused: no resources",
            ConnectionResult::RefusedInvalidScid => "refused: invalid source CID",
            ConnectionResult::RefusedScidInUse => "refused: source CID already allocated",
        };
        f.write_str(s)
    }
}

/// Result codes for Configuration Response.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u16)]
pub enum ConfigureResult {
    /// `0x0000` Success.
    Success = 0x0000,
    /// `0x0001` Failure – unacceptable parameters.
    UnacceptableParameters = 0x0001,
    /// `0x0002` Failure – rejected (no reason provided).
    Rejected = 0x0002,
    /// `0x0003` Failure – unknown options.
    UnknownOptions = 0x0003,
    /// `0x0004` Pending.
    Pending = 0x0004,
    /// `0x0005` Failure – flow spec rejected.
    FlowSpecRejected = 0x0005,
}

impl ConfigureResult {
    /// Converts a raw result value, if defined.
    pub fn from_u16(v: u16) -> Option<ConfigureResult> {
        match v {
            0x0000 => Some(ConfigureResult::Success),
            0x0001 => Some(ConfigureResult::UnacceptableParameters),
            0x0002 => Some(ConfigureResult::Rejected),
            0x0003 => Some(ConfigureResult::UnknownOptions),
            0x0004 => Some(ConfigureResult::Pending),
            0x0005 => Some(ConfigureResult::FlowSpecRejected),
            _ => None,
        }
    }

    /// Returns the on-air value.
    pub const fn value(&self) -> u16 {
        *self as u16
    }

    /// Returns `true` if the configuration was not accepted.
    pub const fn is_failure(&self) -> bool {
        !matches!(self, ConfigureResult::Success | ConfigureResult::Pending)
    }
}

impl fmt::Display for ConfigureResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConfigureResult::Success => "success",
            ConfigureResult::UnacceptableParameters => "failure: unacceptable parameters",
            ConfigureResult::Rejected => "failure: rejected",
            ConfigureResult::UnknownOptions => "failure: unknown options",
            ConfigureResult::Pending => "pending",
            ConfigureResult::FlowSpecRejected => "failure: flow spec rejected",
        };
        f.write_str(s)
    }
}

/// Result codes for Move Channel Response / Confirmation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u16)]
pub enum MoveResult {
    /// `0x0000` Move success / confirmed.
    Success = 0x0000,
    /// `0x0001` Move pending.
    Pending = 0x0001,
    /// `0x0002` Move refused – controller ID not supported.
    RefusedControllerNotSupported = 0x0002,
    /// `0x0003` Move refused – new controller ID is same as old.
    RefusedSameController = 0x0003,
    /// `0x0004` Move refused – configuration not supported.
    RefusedConfigNotSupported = 0x0004,
    /// `0x0005` Move refused – collision.
    RefusedCollision = 0x0005,
    /// `0x0006` Move refused – not allowed.
    RefusedNotAllowed = 0x0006,
}

impl MoveResult {
    /// Converts a raw result value, if defined.
    pub fn from_u16(v: u16) -> Option<MoveResult> {
        match v {
            0x0000 => Some(MoveResult::Success),
            0x0001 => Some(MoveResult::Pending),
            0x0002 => Some(MoveResult::RefusedControllerNotSupported),
            0x0003 => Some(MoveResult::RefusedSameController),
            0x0004 => Some(MoveResult::RefusedConfigNotSupported),
            0x0005 => Some(MoveResult::RefusedCollision),
            0x0006 => Some(MoveResult::RefusedNotAllowed),
            _ => None,
        }
    }

    /// Returns the on-air value.
    pub const fn value(&self) -> u16 {
        *self as u16
    }

    /// Returns `true` if the move was refused.
    pub const fn is_refusal(&self) -> bool {
        !matches!(self, MoveResult::Success | MoveResult::Pending)
    }
}

impl fmt::Display for MoveResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MoveResult::Success => "success",
            MoveResult::Pending => "pending",
            MoveResult::RefusedControllerNotSupported => "refused: controller ID not supported",
            MoveResult::RefusedSameController => "refused: same controller",
            MoveResult::RefusedConfigNotSupported => "refused: configuration not supported",
            MoveResult::RefusedCollision => "refused: collision",
            MoveResult::RefusedNotAllowed => "refused: not allowed",
        };
        f.write_str(s)
    }
}

/// Connection status codes carried alongside a `Pending` connection result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u16)]
pub enum ConnectionStatus {
    /// `0x0000` No further information available.
    NoInfo = 0x0000,
    /// `0x0001` Authentication pending.
    AuthenticationPending = 0x0001,
    /// `0x0002` Authorization pending.
    AuthorizationPending = 0x0002,
}

impl ConnectionStatus {
    /// Converts a raw status value, if defined.
    pub fn from_u16(v: u16) -> Option<ConnectionStatus> {
        match v {
            0x0000 => Some(ConnectionStatus::NoInfo),
            0x0001 => Some(ConnectionStatus::AuthenticationPending),
            0x0002 => Some(ConnectionStatus::AuthorizationPending),
            _ => None,
        }
    }

    /// Returns the on-air value.
    pub const fn value(&self) -> u16 {
        *self as u16
    }
}

/// Information request/response types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u16)]
pub enum InfoType {
    /// `0x0001` Connectionless MTU.
    ConnectionlessMtu = 0x0001,
    /// `0x0002` Extended features supported.
    ExtendedFeatures = 0x0002,
    /// `0x0003` Fixed channels supported.
    FixedChannels = 0x0003,
}

impl InfoType {
    /// Converts a raw information type, if defined.
    pub fn from_u16(v: u16) -> Option<InfoType> {
        match v {
            0x0001 => Some(InfoType::ConnectionlessMtu),
            0x0002 => Some(InfoType::ExtendedFeatures),
            0x0003 => Some(InfoType::FixedChannels),
            _ => None,
        }
    }

    /// Returns the on-air value.
    pub const fn value(&self) -> u16 {
        *self as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_reason_roundtrip_and_display() {
        for v in 0u16..=2 {
            let r = RejectReason::from_u16(v).unwrap();
            assert_eq!(r.value(), v);
        }
        assert_eq!(RejectReason::from_u16(3), None);
        assert_eq!(
            RejectReason::InvalidCidInRequest.to_string(),
            "invalid CID in request"
        );
        assert_eq!(
            RejectReason::SignalingMtuExceeded.to_string(),
            "signaling MTU exceeded"
        );
    }

    #[test]
    fn connection_result_refusals() {
        assert!(!ConnectionResult::Success.is_refusal());
        assert!(!ConnectionResult::Pending.is_refusal());
        assert!(ConnectionResult::RefusedPsmNotSupported.is_refusal());
        assert!(ConnectionResult::RefusedSecurityBlock.is_refusal());
        assert!(ConnectionResult::RefusedInvalidScid.is_refusal());
    }

    #[test]
    fn connection_result_roundtrip() {
        for v in [0x0000, 0x0001, 0x0002, 0x0003, 0x0004, 0x0006, 0x0007] {
            assert_eq!(ConnectionResult::from_u16(v).unwrap().value(), v);
        }
        assert_eq!(ConnectionResult::from_u16(0x0005), None);
        assert_eq!(ConnectionResult::from_u16(0x0008), None);
    }

    #[test]
    fn configure_result_roundtrip_and_failure() {
        for v in 0u16..=5 {
            let r = ConfigureResult::from_u16(v).unwrap();
            assert_eq!(r.value(), v);
        }
        assert!(ConfigureResult::UnacceptableParameters.is_failure());
        assert!(!ConfigureResult::Success.is_failure());
        assert!(!ConfigureResult::Pending.is_failure());
    }

    #[test]
    fn move_result_roundtrip() {
        for v in 0u16..=6 {
            assert_eq!(MoveResult::from_u16(v).unwrap().value(), v);
        }
        assert!(MoveResult::RefusedCollision.is_refusal());
        assert!(!MoveResult::Pending.is_refusal());
    }

    #[test]
    fn info_type_and_status_roundtrip() {
        for v in 1u16..=3 {
            assert_eq!(InfoType::from_u16(v).unwrap().value(), v);
        }
        assert_eq!(InfoType::from_u16(0), None);
        for v in 0u16..=2 {
            assert_eq!(ConnectionStatus::from_u16(v).unwrap().value(), v);
        }
        assert_eq!(ConnectionStatus::from_u16(3), None);
    }
}
