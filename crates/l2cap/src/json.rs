//! Streaming JSON serialization for the L2CAP report-path types, mirroring
//! the derived `serde::Serialize` encodings byte for byte.

use serde_json::{JsonStreamWriter, StreamSerialize};

use crate::code::CommandCode;
use crate::jobs::Job;
use crate::packet::L2capFrame;
use crate::state::ChannelState;

serde_json::stream_unit_enum!(CommandCode, Job, ChannelState);

impl StreamSerialize for L2capFrame {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("declared_payload_len", &self.declared_payload_len)
            .field("cid", &self.cid)
            .field("payload", &self.payload)
            .end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::Cid;
    use serde_json::to_string_streamed;

    #[test]
    fn frame_and_enums_stream_like_their_derived_encodings() {
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        assert_eq!(
            to_string_streamed(&frame),
            serde_json::to_string(&frame).unwrap()
        );
        for state in ChannelState::ALL {
            assert_eq!(
                to_string_streamed(&state),
                serde_json::to_string(&state).unwrap()
            );
        }
        for code in [
            CommandCode::ConnectionRequest,
            CommandCode::LeCreditBasedConnectionRequest,
            CommandCode::FlowControlCreditInd,
        ] {
            assert_eq!(
                to_string_streamed(&code),
                serde_json::to_string(&code).unwrap()
            );
        }
        assert_eq!(
            to_string_streamed(&Job::Configuration),
            serde_json::to_string(&Job::Configuration).unwrap()
        );
    }
}
