//! Streaming JSON serialization for the L2CAP report-path types, mirroring
//! the derived `serde::Serialize` encodings byte for byte — plus the
//! matching streaming deserializers for replay without a `Value` tree.

use serde_json::{Error, JsonStreamReader, JsonStreamWriter, StreamDeserialize, StreamSerialize};

use crate::code::CommandCode;
use crate::jobs::Job;
use crate::packet::L2capFrame;
use crate::state::ChannelState;

serde_json::stream_unit_enum!(CommandCode, Job, ChannelState);
serde_json::stream_unit_enum_de!(CommandCode, Job, ChannelState);

impl StreamSerialize for L2capFrame {
    fn stream(&self, w: &mut JsonStreamWriter) {
        w.begin_object()
            .field("declared_payload_len", &self.declared_payload_len)
            .field("cid", &self.cid)
            .field("payload", &self.payload)
            .end_object();
    }
}

impl StreamDeserialize for L2capFrame {
    fn stream_from(r: &mut JsonStreamReader<'_>) -> Result<Self, Error> {
        r.begin_object()?;
        let declared_payload_len = r.key("declared_payload_len")?.value()?;
        let cid = r.key("cid")?.value()?;
        let payload = r.key("payload")?.value()?;
        r.end_object()?;
        Ok(L2capFrame {
            declared_payload_len,
            cid,
            payload,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use btcore::Cid;
    use serde_json::to_string_streamed;

    #[test]
    fn frame_and_enums_stream_like_their_derived_encodings() {
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        assert_eq!(
            to_string_streamed(&frame),
            serde_json::to_string(&frame).unwrap()
        );
        for state in ChannelState::ALL {
            assert_eq!(
                to_string_streamed(&state),
                serde_json::to_string(&state).unwrap()
            );
        }
        for code in [
            CommandCode::ConnectionRequest,
            CommandCode::LeCreditBasedConnectionRequest,
            CommandCode::FlowControlCreditInd,
        ] {
            assert_eq!(
                to_string_streamed(&code),
                serde_json::to_string(&code).unwrap()
            );
        }
        assert_eq!(
            to_string_streamed(&Job::Configuration),
            serde_json::to_string(&Job::Configuration).unwrap()
        );
    }

    #[test]
    fn frame_and_enums_round_trip_through_the_streaming_reader() {
        let frame = L2capFrame::new(Cid::SIGNALING, vec![0x08, 0x01, 0x00, 0x00]);
        let json = to_string_streamed(&frame);
        let back: L2capFrame = serde_json::from_str_streamed(&json).unwrap();
        assert_eq!(back, frame);
        assert_eq!(to_string_streamed(&back), json);
        for state in ChannelState::ALL {
            let back: ChannelState =
                serde_json::from_str_streamed(&to_string_streamed(&state)).unwrap();
            assert_eq!(back, state);
        }
        let back: Job = serde_json::from_str_streamed("\"Configuration\"").unwrap();
        assert_eq!(back, Job::Configuration);
    }
}
