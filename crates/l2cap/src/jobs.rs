//! Job clustering of L2CAP states and the valid-command map
//! (paper Tables I and III).
//!
//! The paper clusters the 19 states into seven *jobs* — groups of states that
//! receive the same events, run the same kind of internal function and emit
//! the same actions — and maps the commands that are *valid* (not rejected)
//! in each job.  State guiding uses this map twice: to pick the command that
//! transitions the target into a desired state, and to pick which commands to
//! mutate once it is there.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::code::CommandCode;
use crate::state::ChannelState;

/// The seven jobs of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Job {
    /// `{CLOSED}`
    Closed,
    /// `{WAIT_CONNECT, WAIT_CONNECT_RSP}`
    Connection,
    /// `{WAIT_CREATE, WAIT_CREATE_RSP}`
    Creation,
    /// The eight configuration-related states.
    Configuration,
    /// `{WAIT_DISCONNECT}`
    Disconnection,
    /// The four move-related states.
    Move,
    /// `{OPEN}`
    Open,
}

impl Job {
    /// All seven jobs in the order Table I lists them.
    pub const ALL: [Job; 7] = [
        Job::Closed,
        Job::Connection,
        Job::Creation,
        Job::Configuration,
        Job::Disconnection,
        Job::Move,
        Job::Open,
    ];

    /// Returns the states belonging to this job (Table I).
    pub fn states(&self) -> &'static [ChannelState] {
        match self {
            Job::Closed => &[ChannelState::Closed],
            Job::Connection => &[ChannelState::WaitConnect, ChannelState::WaitConnectRsp],
            Job::Creation => &[ChannelState::WaitCreate, ChannelState::WaitCreateRsp],
            Job::Configuration => &[
                ChannelState::WaitConfig,
                ChannelState::WaitConfigRsp,
                ChannelState::WaitConfigReq,
                ChannelState::WaitConfigReqRsp,
                ChannelState::WaitSendConfig,
                ChannelState::WaitIndFinalRsp,
                ChannelState::WaitFinalRsp,
                ChannelState::WaitControlInd,
            ],
            Job::Disconnection => &[ChannelState::WaitDisconnect],
            Job::Move => &[
                ChannelState::WaitMove,
                ChannelState::WaitMoveRsp,
                ChannelState::WaitMoveConfirm,
                ChannelState::WaitConfirmRsp,
            ],
            Job::Open => &[ChannelState::Open],
        }
    }

    /// Returns the commands that are valid for this job (Table III).
    ///
    /// For the `Closed` and `Open` jobs every command is valid; for the other
    /// jobs only the request/response pair(s) belonging to the job are.
    pub fn valid_commands(&self) -> Vec<CommandCode> {
        match self {
            Job::Closed | Job::Open => CommandCode::ALL.to_vec(),
            Job::Connection => vec![
                CommandCode::ConnectionRequest,
                CommandCode::ConnectionResponse,
            ],
            Job::Creation => {
                vec![
                    CommandCode::CreateChannelRequest,
                    CommandCode::CreateChannelResponse,
                ]
            }
            Job::Configuration => {
                vec![
                    CommandCode::ConfigureRequest,
                    CommandCode::ConfigureResponse,
                ]
            }
            Job::Disconnection => {
                vec![
                    CommandCode::DisconnectionRequest,
                    CommandCode::DisconnectionResponse,
                ]
            }
            Job::Move => vec![
                CommandCode::MoveChannelRequest,
                CommandCode::MoveChannelResponse,
                CommandCode::MoveChannelConfirmationRequest,
                CommandCode::MoveChannelConfirmationResponse,
            ],
        }
    }

    /// The paper sets the valid-command boundaries "slightly more generously"
    /// (§III-C) because real devices deviate from the specification: the
    /// generous set adds the echo and information commands (valid everywhere
    /// in practice) and keeps response commands even in request states.
    pub fn generous_valid_commands(&self) -> Vec<CommandCode> {
        let mut cmds = self.valid_commands();
        for extra in [
            CommandCode::EchoRequest,
            CommandCode::EchoResponse,
            CommandCode::InformationRequest,
            CommandCode::InformationResponse,
        ] {
            if !cmds.contains(&extra) {
                cmds.push(extra);
            }
        }
        cmds
    }

    /// Returns the commands valid for this job on a link of the given type.
    ///
    /// The BR/EDR arm is exactly [`Job::valid_commands`] (Table III).  On an
    /// LE link the connection job maps to the credit-based connect pairs,
    /// the configuration job to the enhanced reconfigure pair plus the
    /// flow-control credit indication, and the creation/move jobs are empty
    /// (AMP does not exist on LE).
    pub fn valid_commands_on(&self, link: btcore::LinkType) -> Vec<CommandCode> {
        match link {
            btcore::LinkType::BrEdr => self.valid_commands(),
            btcore::LinkType::Le => match self {
                Job::Closed | Job::Open => CommandCode::ALL
                    .iter()
                    .copied()
                    .filter(|c| c.valid_on(btcore::LinkType::Le))
                    .collect(),
                Job::Connection => vec![
                    CommandCode::LeCreditBasedConnectionRequest,
                    CommandCode::LeCreditBasedConnectionResponse,
                    CommandCode::CreditBasedConnectionRequest,
                    CommandCode::CreditBasedConnectionResponse,
                ],
                Job::Creation | Job::Move => Vec::new(),
                Job::Configuration => vec![
                    CommandCode::FlowControlCreditInd,
                    CommandCode::CreditBasedReconfigureRequest,
                    CommandCode::CreditBasedReconfigureResponse,
                ],
                Job::Disconnection => vec![
                    CommandCode::DisconnectionRequest,
                    CommandCode::DisconnectionResponse,
                ],
            },
        }
    }

    /// Link-aware variant of [`Job::generous_valid_commands`]: on BR/EDR the
    /// generous extras are the echo/information commands; on LE they are the
    /// connection-parameter-update pair, which every LE stack processes in
    /// any state.
    pub fn generous_valid_commands_on(&self, link: btcore::LinkType) -> Vec<CommandCode> {
        match link {
            btcore::LinkType::BrEdr => self.generous_valid_commands(),
            btcore::LinkType::Le => {
                let mut cmds = self.valid_commands_on(link);
                for extra in [
                    CommandCode::ConnectionParameterUpdateRequest,
                    CommandCode::ConnectionParameterUpdateResponse,
                ] {
                    if !cmds.contains(&extra) {
                        cmds.push(extra);
                    }
                }
                cmds
            }
        }
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Job::Closed => "Closed",
            Job::Connection => "Connection",
            Job::Creation => "Creation",
            Job::Configuration => "Configuration",
            Job::Disconnection => "Disconnection",
            Job::Move => "Move",
            Job::Open => "Open",
        };
        f.write_str(s)
    }
}

/// Returns the job a state belongs to (Table I).
pub fn job_of(state: ChannelState) -> Job {
    for job in Job::ALL {
        if job.states().contains(&state) {
            return job;
        }
    }
    unreachable!("every state belongs to a job")
}

/// Returns the commands valid in a given state (the job-level map of
/// Table III applied to the state's job).
pub fn valid_commands_for_state(state: ChannelState) -> Vec<CommandCode> {
    job_of(state).valid_commands()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn jobs_partition_all_19_states() {
        let mut seen = BTreeSet::new();
        let mut total = 0usize;
        for job in Job::ALL {
            for s in job.states() {
                assert!(seen.insert(*s), "{s} appears in more than one job");
                total += 1;
            }
        }
        assert_eq!(total, 19);
        assert_eq!(seen.len(), 19);
    }

    #[test]
    fn table1_job_sizes() {
        assert_eq!(Job::Closed.states().len(), 1);
        assert_eq!(Job::Connection.states().len(), 2);
        assert_eq!(Job::Creation.states().len(), 2);
        assert_eq!(Job::Configuration.states().len(), 8);
        assert_eq!(Job::Disconnection.states().len(), 1);
        assert_eq!(Job::Move.states().len(), 4);
        assert_eq!(Job::Open.states().len(), 1);
    }

    #[test]
    fn job_of_matches_table1_examples() {
        assert_eq!(job_of(ChannelState::Closed), Job::Closed);
        assert_eq!(job_of(ChannelState::WaitConnect), Job::Connection);
        assert_eq!(job_of(ChannelState::WaitConnectRsp), Job::Connection);
        assert_eq!(job_of(ChannelState::WaitCreate), Job::Creation);
        assert_eq!(job_of(ChannelState::WaitConfigReqRsp), Job::Configuration);
        assert_eq!(job_of(ChannelState::WaitControlInd), Job::Configuration);
        assert_eq!(job_of(ChannelState::WaitDisconnect), Job::Disconnection);
        assert_eq!(job_of(ChannelState::WaitMoveConfirm), Job::Move);
        assert_eq!(job_of(ChannelState::Open), Job::Open);
    }

    #[test]
    fn table3_valid_commands() {
        assert_eq!(Job::Closed.valid_commands().len(), 26);
        assert_eq!(Job::Open.valid_commands().len(), 26);
        assert_eq!(
            Job::Connection.valid_commands(),
            vec![
                CommandCode::ConnectionRequest,
                CommandCode::ConnectionResponse
            ]
        );
        assert_eq!(
            Job::Creation.valid_commands(),
            vec![
                CommandCode::CreateChannelRequest,
                CommandCode::CreateChannelResponse
            ]
        );
        assert_eq!(
            Job::Configuration.valid_commands(),
            vec![
                CommandCode::ConfigureRequest,
                CommandCode::ConfigureResponse
            ]
        );
        assert_eq!(
            Job::Disconnection.valid_commands(),
            vec![
                CommandCode::DisconnectionRequest,
                CommandCode::DisconnectionResponse
            ]
        );
        assert_eq!(Job::Move.valid_commands().len(), 4);
    }

    #[test]
    fn generous_boundaries_superset_of_strict() {
        for job in Job::ALL {
            let strict: BTreeSet<_> = job.valid_commands().into_iter().collect();
            let generous: BTreeSet<_> = job.generous_valid_commands().into_iter().collect();
            assert!(
                generous.is_superset(&strict),
                "{job}: generous must contain strict"
            );
            assert!(generous.contains(&CommandCode::EchoRequest));
        }
        // For Closed/Open the generous set adds nothing (already all 26).
        assert_eq!(Job::Open.generous_valid_commands().len(), 26);
        assert_eq!(Job::Configuration.generous_valid_commands().len(), 6);
    }

    #[test]
    fn valid_commands_for_state_delegates_to_job() {
        assert_eq!(
            valid_commands_for_state(ChannelState::WaitConfigRsp),
            Job::Configuration.valid_commands()
        );
        assert_eq!(valid_commands_for_state(ChannelState::Open).len(), 26);
    }

    #[test]
    fn job_display_names_match_paper() {
        let names: Vec<String> = Job::ALL.iter().map(|j| j.to_string()).collect();
        assert_eq!(
            names,
            vec![
                "Closed",
                "Connection",
                "Creation",
                "Configuration",
                "Disconnection",
                "Move",
                "Open"
            ]
        );
    }
}
