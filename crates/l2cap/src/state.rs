//! The Bluetooth 5.2 L2CAP channel state machine (paper Fig. 2).
//!
//! L2CAP channels move through 19 states.  This module provides:
//!
//! * [`ChannelState`] — the 19 states.
//! * [`spec_transition`] — the acceptor-side event/action table (the paper's
//!   Table II generalised to every state): given the current state and a
//!   received signalling command, what a spec-conformant device responds
//!   with and which state it moves to.
//! * [`StateMachine`] — a per-channel instance that applies the table,
//!   implements the *eager configuration* behaviour real stacks exhibit
//!   (sending their own Configuration Request as soon as the channel becomes
//!   configurable), and records every state visited.  Both the simulated
//!   target stacks and the trace-based state-coverage analysis replay traffic
//!   through this one implementation, so there is a single source of truth
//!   for what "covering a state" means.
//!
//! # Reachability from an initiator
//!
//! A fuzzer acts as the connection initiator (master).  Six of the 19 states
//! can only be entered when the *target* initiates a request of its own
//! (`WAIT_CONNECT_RSP`, `WAIT_CREATE_RSP`, `WAIT_MOVE_RSP`) or during
//! lockstep/ERTM configuration internals (`WAIT_IND_FINAL_RSP`,
//! `WAIT_FINAL_RSP`, `WAIT_CONTROL_IND`); the remaining 13 are reachable,
//! which matches the paper's observation that L2Fuzz covers 13 of 19 states
//! (Fig. 10/11) while noting responder-only states as a limitation (§V).

use std::fmt;

use btcore::LinkType;
use serde::{Deserialize, Serialize};

use crate::code::CommandCode;
use crate::consts::RejectReason;

/// The 19 L2CAP channel states of Bluetooth 5.2 (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ChannelState {
    Closed,
    WaitConnect,
    WaitConnectRsp,
    WaitCreate,
    WaitCreateRsp,
    WaitConfig,
    WaitSendConfig,
    WaitConfigReqRsp,
    WaitConfigReq,
    WaitConfigRsp,
    WaitIndFinalRsp,
    WaitFinalRsp,
    WaitControlInd,
    Open,
    WaitDisconnect,
    WaitMove,
    WaitMoveRsp,
    WaitMoveConfirm,
    WaitConfirmRsp,
}

impl ChannelState {
    /// All 19 states.
    pub const ALL: [ChannelState; 19] = [
        ChannelState::Closed,
        ChannelState::WaitConnect,
        ChannelState::WaitConnectRsp,
        ChannelState::WaitCreate,
        ChannelState::WaitCreateRsp,
        ChannelState::WaitConfig,
        ChannelState::WaitSendConfig,
        ChannelState::WaitConfigReqRsp,
        ChannelState::WaitConfigReq,
        ChannelState::WaitConfigRsp,
        ChannelState::WaitIndFinalRsp,
        ChannelState::WaitFinalRsp,
        ChannelState::WaitControlInd,
        ChannelState::Open,
        ChannelState::WaitDisconnect,
        ChannelState::WaitMove,
        ChannelState::WaitMoveRsp,
        ChannelState::WaitMoveConfirm,
        ChannelState::WaitConfirmRsp,
    ];

    /// The five states an initiator-side fuzzer can drive a target's LE-U
    /// channel into: LE credit-based channels have no configuration
    /// handshake, so a successful connect passes straight through
    /// `WAIT_CONNECT` to `OPEN`, an enhanced reconfigure dips through
    /// `WAIT_CONFIG`, and disconnection passes `WAIT_DISCONNECT`.
    pub const REACHABLE_FROM_INITIATOR_LE: [ChannelState; 5] = [
        ChannelState::Closed,
        ChannelState::WaitConnect,
        ChannelState::WaitConfig,
        ChannelState::Open,
        ChannelState::WaitDisconnect,
    ];

    /// The 13 states an initiator-side fuzzer can drive a target into.
    pub const REACHABLE_FROM_INITIATOR: [ChannelState; 13] = [
        ChannelState::Closed,
        ChannelState::WaitConnect,
        ChannelState::WaitCreate,
        ChannelState::WaitConfig,
        ChannelState::WaitSendConfig,
        ChannelState::WaitConfigReqRsp,
        ChannelState::WaitConfigReq,
        ChannelState::WaitConfigRsp,
        ChannelState::Open,
        ChannelState::WaitDisconnect,
        ChannelState::WaitMove,
        ChannelState::WaitMoveConfirm,
        ChannelState::WaitConfirmRsp,
    ];

    /// Specification name of the state (e.g. `WAIT_CONFIG_REQ_RSP`).
    pub const fn spec_name(&self) -> &'static str {
        match self {
            ChannelState::Closed => "CLOSED",
            ChannelState::WaitConnect => "WAIT_CONNECT",
            ChannelState::WaitConnectRsp => "WAIT_CONNECT_RSP",
            ChannelState::WaitCreate => "WAIT_CREATE",
            ChannelState::WaitCreateRsp => "WAIT_CREATE_RSP",
            ChannelState::WaitConfig => "WAIT_CONFIG",
            ChannelState::WaitSendConfig => "WAIT_SEND_CONFIG",
            ChannelState::WaitConfigReqRsp => "WAIT_CONFIG_REQ_RSP",
            ChannelState::WaitConfigReq => "WAIT_CONFIG_REQ",
            ChannelState::WaitConfigRsp => "WAIT_CONFIG_RSP",
            ChannelState::WaitIndFinalRsp => "WAIT_IND_FINAL_RSP",
            ChannelState::WaitFinalRsp => "WAIT_FINAL_RSP",
            ChannelState::WaitControlInd => "WAIT_CONTROL_IND",
            ChannelState::Open => "OPEN",
            ChannelState::WaitDisconnect => "WAIT_DISCONNECT",
            ChannelState::WaitMove => "WAIT_MOVE",
            ChannelState::WaitMoveRsp => "WAIT_MOVE_RSP",
            ChannelState::WaitMoveConfirm => "WAIT_MOVE_CONFIRM",
            ChannelState::WaitConfirmRsp => "WAIT_CONFIRM_RSP",
        }
    }

    /// Returns `true` if an initiator-side fuzzer can drive a target channel
    /// into this state (see module docs).
    pub fn reachable_from_initiator(&self) -> bool {
        ChannelState::REACHABLE_FROM_INITIATOR.contains(self)
    }

    /// Returns `true` if an initiator can drive a target channel into this
    /// state on the given link type.
    pub fn reachable_from_initiator_on(&self, link: LinkType) -> bool {
        match link {
            LinkType::BrEdr => self.reachable_from_initiator(),
            LinkType::Le => ChannelState::REACHABLE_FROM_INITIATOR_LE.contains(self),
        }
    }

    /// Position of this state in [`ChannelState::ALL`] (0..19); used as the
    /// bit index of the visited-state mask.
    pub const fn index(&self) -> u32 {
        *self as u32
    }
}

impl fmt::Display for ChannelState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.spec_name())
    }
}

/// An event driving the channel state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateEvent {
    /// A signalling command addressed to this channel was received.
    Recv(CommandCode),
    /// The local upper layer refused an incoming connection or creation
    /// request (e.g. unsupported PSM).
    Refuse,
}

/// What the device does in reaction to an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Send the given response command.
    Respond(CommandCode),
    /// Send a Command Reject with the given reason.
    Reject(RejectReason),
    /// Send a self-initiated request (e.g. the device's own Configuration
    /// Request).
    Initiate(CommandCode),
    /// Silently ignore the event.
    Ignore,
}

/// One entry of the acceptor-side event/action table.
///
/// The pass-through lists are constant tables (`'static` slices), so looking
/// a transition up never allocates — the device endpoints and the coverage
/// replay consult this table per packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// What the device sends back.
    pub action: Action,
    /// Short-lived states passed through while handling the event, in order.
    pub passes_through: &'static [ChannelState],
    /// The state the channel ends up in.
    pub next: ChannelState,
}

impl Transition {
    fn stay(state: ChannelState, action: Action) -> Transition {
        Transition {
            action,
            passes_through: &[],
            next: state,
        }
    }

    fn reject(state: ChannelState, reason: RejectReason) -> Transition {
        Transition::stay(state, Action::Reject(reason))
    }
}

/// The acceptor-side event/action table: how a spec-conformant device in
/// `state` reacts to a received signalling command addressed to one of its
/// channels on a link of type `link` (the paper's Table II, generalised to
/// both transports).
///
/// The table is two-sided and symmetric about the link type: on a BR/EDR
/// link the connection-less commands (echo, information) are accepted in
/// every state and LE-only commands are rejected as "command not
/// understood"; on an LE link the classic-only commands are rejected the
/// same way and the credit-based channel flows take the place of the
/// connect/configure handshake.
pub fn spec_transition(state: ChannelState, code: CommandCode, link: LinkType) -> Transition {
    match link {
        LinkType::BrEdr => spec_transition_bredr(state, code),
        LinkType::Le => spec_transition_le(state, code),
    }
}

/// The BR/EDR (ACL-U) side of the table — exactly the paper's Table II.
fn spec_transition_bredr(state: ChannelState, code: CommandCode) -> Transition {
    use ChannelState as S;
    use CommandCode as C;

    // Link-level commands are state-independent.
    match code {
        C::EchoRequest => return Transition::stay(state, Action::Respond(C::EchoResponse)),
        C::InformationRequest => {
            return Transition::stay(state, Action::Respond(C::InformationResponse))
        }
        C::CommandReject | C::EchoResponse | C::InformationResponse => {
            return Transition::stay(state, Action::Ignore)
        }
        c if c.is_le_only() => {
            return Transition::reject(state, RejectReason::CommandNotUnderstood)
        }
        _ => {}
    }

    match (state, code) {
        // ----- CLOSED: only connection establishment is meaningful.
        (S::Closed, C::ConnectionRequest) => Transition {
            action: Action::Respond(C::ConnectionResponse),
            passes_through: &[S::WaitConnect, S::WaitConfig],
            next: S::WaitConfig,
        },
        (S::Closed, C::CreateChannelRequest) => Transition {
            action: Action::Respond(C::CreateChannelResponse),
            passes_through: &[S::WaitCreate, S::WaitConfig],
            next: S::WaitConfig,
        },
        (S::Closed, C::DisconnectionRequest) => {
            Transition::reject(S::Closed, RejectReason::InvalidCidInRequest)
        }
        (S::Closed, _) => Transition::reject(S::Closed, RejectReason::CommandNotUnderstood),

        // ----- WAIT_CONNECT / WAIT_CREATE: Table II — only the matching
        // request is valid; everything else is rejected.
        //
        // Dead rows, pinned intentional: an initiator-driven machine only
        // ever *passes through* WAIT_CONNECT / WAIT_CREATE (and, below,
        // WAIT_DISCONNECT / WAIT_MOVE / WAIT_CONFIRM_RSP) — it never rests
        // there, so these handling rows can never execute.  They are kept deliberately:
        // they are the paper's Table II rows verbatim, and defensive
        // completeness for responder-initiated flows a future acceptor-side
        // model would rest in.  The model checker certifies exactly this
        // set via `analysis::Allowlist::default()`; removing a row here
        // without updating the allowlist fails `l2fuzz-analyze`.
        (S::WaitConnect, C::ConnectionRequest) => Transition {
            action: Action::Respond(C::ConnectionResponse),
            passes_through: &[S::WaitConfig],
            next: S::WaitConfig,
        },
        (S::WaitConnect, _) => {
            Transition::reject(S::WaitConnect, RejectReason::CommandNotUnderstood)
        }
        (S::WaitCreate, C::CreateChannelRequest) => Transition {
            action: Action::Respond(C::CreateChannelResponse),
            passes_through: &[S::WaitConfig],
            next: S::WaitConfig,
        },
        (S::WaitCreate, _) => Transition::reject(S::WaitCreate, RejectReason::CommandNotUnderstood),

        // ----- Configuration job.
        (S::WaitConfig, C::ConfigureRequest) => Transition {
            action: Action::Respond(C::ConfigureResponse),
            passes_through: &[S::WaitSendConfig],
            next: S::WaitSendConfig,
        },
        (S::WaitConfig, C::DisconnectionRequest) => Transition {
            action: Action::Respond(C::DisconnectionResponse),
            passes_through: &[S::WaitDisconnect],
            next: S::Closed,
        },
        (S::WaitConfig, _) => Transition::reject(S::WaitConfig, RejectReason::CommandNotUnderstood),

        (S::WaitConfigReqRsp, C::ConfigureRequest) => Transition {
            action: Action::Respond(C::ConfigureResponse),
            passes_through: &[],
            next: S::WaitConfigRsp,
        },
        (S::WaitConfigReqRsp, C::ConfigureResponse) => Transition {
            action: Action::Ignore,
            passes_through: &[],
            next: S::WaitConfigReq,
        },
        (S::WaitConfigReqRsp, C::DisconnectionRequest) => Transition {
            action: Action::Respond(C::DisconnectionResponse),
            passes_through: &[S::WaitDisconnect],
            next: S::Closed,
        },
        (S::WaitConfigReqRsp, _) => {
            Transition::reject(S::WaitConfigReqRsp, RejectReason::CommandNotUnderstood)
        }

        (S::WaitConfigReq, C::ConfigureRequest) => Transition {
            action: Action::Respond(C::ConfigureResponse),
            passes_through: &[],
            next: S::Open,
        },
        (S::WaitConfigReq, C::DisconnectionRequest) => Transition {
            action: Action::Respond(C::DisconnectionResponse),
            passes_through: &[S::WaitDisconnect],
            next: S::Closed,
        },
        (S::WaitConfigReq, _) => {
            Transition::reject(S::WaitConfigReq, RejectReason::CommandNotUnderstood)
        }

        (S::WaitConfigRsp, C::ConfigureResponse) => Transition {
            action: Action::Ignore,
            passes_through: &[],
            next: S::Open,
        },
        (S::WaitConfigRsp, C::ConfigureRequest) => Transition {
            action: Action::Respond(C::ConfigureResponse),
            passes_through: &[],
            next: S::WaitConfigRsp,
        },
        (S::WaitConfigRsp, C::DisconnectionRequest) => Transition {
            action: Action::Respond(C::DisconnectionResponse),
            passes_through: &[S::WaitDisconnect],
            next: S::Closed,
        },
        (S::WaitConfigRsp, _) => {
            Transition::reject(S::WaitConfigRsp, RejectReason::CommandNotUnderstood)
        }

        (S::WaitSendConfig, C::ConfigureResponse) => Transition {
            action: Action::Ignore,
            passes_through: &[],
            next: S::Open,
        },
        (S::WaitSendConfig, C::DisconnectionRequest) => Transition {
            action: Action::Respond(C::DisconnectionResponse),
            passes_through: &[S::WaitDisconnect],
            next: S::Closed,
        },
        (S::WaitSendConfig, _) => {
            Transition::reject(S::WaitSendConfig, RejectReason::CommandNotUnderstood)
        }

        // ----- OPEN: reconfiguration, move and disconnection are valid.
        (S::Open, C::ConfigureRequest) => Transition {
            action: Action::Respond(C::ConfigureResponse),
            passes_through: &[S::WaitSendConfig],
            next: S::WaitConfigRsp,
        },
        (S::Open, C::MoveChannelRequest) => Transition {
            action: Action::Respond(C::MoveChannelResponse),
            passes_through: &[S::WaitMove],
            next: S::WaitMoveConfirm,
        },
        (S::Open, C::DisconnectionRequest) => Transition {
            action: Action::Respond(C::DisconnectionResponse),
            passes_through: &[S::WaitDisconnect],
            next: S::Closed,
        },
        (S::Open, _) => Transition::reject(S::Open, RejectReason::CommandNotUnderstood),

        // ----- Disconnection job.
        (S::WaitDisconnect, C::DisconnectionRequest) => Transition {
            action: Action::Respond(C::DisconnectionResponse),
            passes_through: &[],
            next: S::Closed,
        },
        (S::WaitDisconnect, _) => {
            Transition::reject(S::WaitDisconnect, RejectReason::CommandNotUnderstood)
        }

        // ----- Move job.
        (S::WaitMove, C::MoveChannelRequest) => Transition {
            action: Action::Respond(C::MoveChannelResponse),
            passes_through: &[],
            next: S::WaitMoveConfirm,
        },
        (S::WaitMove, _) => Transition::reject(S::WaitMove, RejectReason::CommandNotUnderstood),
        (S::WaitMoveConfirm, C::MoveChannelConfirmationRequest) => Transition {
            action: Action::Respond(C::MoveChannelConfirmationResponse),
            passes_through: &[S::WaitConfirmRsp],
            next: S::Open,
        },
        (S::WaitMoveConfirm, C::DisconnectionRequest) => Transition {
            action: Action::Respond(C::DisconnectionResponse),
            passes_through: &[S::WaitDisconnect],
            next: S::Closed,
        },
        (S::WaitMoveConfirm, _) => {
            Transition::reject(S::WaitMoveConfirm, RejectReason::CommandNotUnderstood)
        }
        (S::WaitConfirmRsp, C::MoveChannelConfirmationResponse) => Transition {
            action: Action::Ignore,
            passes_through: &[],
            next: S::Open,
        },
        (S::WaitConfirmRsp, _) => {
            Transition::reject(S::WaitConfirmRsp, RejectReason::CommandNotUnderstood)
        }

        // ----- Responder-initiated / lockstep states: nothing an initiator
        // sends is expected there; reject.
        (s, _) => Transition::reject(s, RejectReason::CommandNotUnderstood),
    }
}

/// The LE (LE-U) side of the table: credit-based channel flows.
///
/// LE credit-based channels have no configuration phase — a successful
/// connection request passes through `WAIT_CONNECT` straight to `OPEN`.  The
/// enhanced reconfigure (`0x19`) renegotiates MTU/MPS on an open channel,
/// dipping through `WAIT_CONFIG`; the flow-control credit indication
/// (`0x16`) is consumed silently on an open channel.
///
/// Cross-arm asymmetries, pinned intentional: the enhanced credit-based
/// family (`0x16`–`0x1A`) is nominally valid on both transports
/// ([`CommandCode::valid_on`]), but this model serves it only on LE — the
/// BR/EDR arm rejects it as "command not understood".  That mirrors the
/// deployed stacks the paper fuzzes (none of the Table V devices expose
/// enhanced credit-based channels over ACL-U) and keeps the BR/EDR packet
/// streams byte-identical to the PR 4 digests pinned in
/// `tests/le_scenarios.rs`.  The model checker flags the four resulting
/// accept/reject asymmetries and `analysis::Allowlist::default()` carries
/// them with this justification; growing a BR/EDR enhanced-credit arm means
/// removing those entries.
fn spec_transition_le(state: ChannelState, code: CommandCode) -> Transition {
    use ChannelState as S;
    use CommandCode as C;

    // Link-level commands are state-independent.
    match code {
        C::ConnectionParameterUpdateRequest => {
            return Transition::stay(state, Action::Respond(C::ConnectionParameterUpdateResponse))
        }
        C::CommandReject | C::ConnectionParameterUpdateResponse => {
            return Transition::stay(state, Action::Ignore)
        }
        c if c.is_classic_only() => {
            return Transition::reject(state, RejectReason::CommandNotUnderstood)
        }
        _ => {}
    }

    match (state, code) {
        // ----- CLOSED: only credit-based connection establishment.
        (S::Closed, C::LeCreditBasedConnectionRequest) => Transition {
            action: Action::Respond(C::LeCreditBasedConnectionResponse),
            passes_through: &[S::WaitConnect, S::Open],
            next: S::Open,
        },
        (S::Closed, C::CreditBasedConnectionRequest) => Transition {
            action: Action::Respond(C::CreditBasedConnectionResponse),
            passes_through: &[S::WaitConnect, S::Open],
            next: S::Open,
        },
        (S::Closed, C::DisconnectionRequest) => {
            Transition::reject(S::Closed, RejectReason::InvalidCidInRequest)
        }
        (S::Closed, _) => Transition::reject(S::Closed, RejectReason::CommandNotUnderstood),

        // ----- WAIT_CONNECT: only the matching request is valid.
        (S::WaitConnect, C::LeCreditBasedConnectionRequest) => Transition {
            action: Action::Respond(C::LeCreditBasedConnectionResponse),
            passes_through: &[S::Open],
            next: S::Open,
        },
        (S::WaitConnect, C::CreditBasedConnectionRequest) => Transition {
            action: Action::Respond(C::CreditBasedConnectionResponse),
            passes_through: &[S::Open],
            next: S::Open,
        },
        (S::WaitConnect, _) => {
            Transition::reject(S::WaitConnect, RejectReason::CommandNotUnderstood)
        }

        // ----- OPEN: credits, reconfiguration and disconnection are valid.
        (S::Open, C::FlowControlCreditInd) => Transition::stay(S::Open, Action::Ignore),
        (S::Open, C::CreditBasedReconfigureRequest) => Transition {
            action: Action::Respond(C::CreditBasedReconfigureResponse),
            passes_through: &[S::WaitConfig, S::Open],
            next: S::Open,
        },
        (S::Open, C::CreditBasedReconfigureResponse) => Transition::stay(S::Open, Action::Ignore),
        (S::Open, C::DisconnectionRequest) => Transition {
            action: Action::Respond(C::DisconnectionResponse),
            passes_through: &[S::WaitDisconnect],
            next: S::Closed,
        },
        (S::Open, _) => Transition::reject(S::Open, RejectReason::CommandNotUnderstood),

        // ----- Disconnection job, same as on BR/EDR.
        (S::WaitDisconnect, C::DisconnectionRequest) => Transition {
            action: Action::Respond(C::DisconnectionResponse),
            passes_through: &[],
            next: S::Closed,
        },
        (S::WaitDisconnect, _) => {
            Transition::reject(S::WaitDisconnect, RejectReason::CommandNotUnderstood)
        }

        // ----- Everything else (classic configuration/move internals) does
        // not exist on an LE link; reject without a state change.
        (s, _) => Transition::reject(s, RejectReason::CommandNotUnderstood),
    }
}

/// A per-channel state machine instance that applies [`spec_transition`],
/// adds the eager-configuration behaviour and records visited states.
#[derive(Debug, Clone)]
pub struct StateMachine {
    state: ChannelState,
    /// States visited so far, in first-visit order.
    visited: Vec<ChannelState>,
    /// One bit per state of [`ChannelState::ALL`]; a set bit means the state
    /// is already in `visited`.  First-visit checks are per-packet work on
    /// both the device side and the coverage replay, so they must not scan
    /// the ordered vector.
    visited_mask: u32,
    eager_config: bool,
    link: LinkType,
}

impl Default for StateMachine {
    fn default() -> Self {
        StateMachine::new()
    }
}

/// The full reaction of a channel to a received command: the ordered list of
/// actions the device performs and every state visited while handling it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reaction {
    /// Actions the device performs, in order.
    pub actions: Vec<Action>,
    /// States visited while handling the command (ending in the new current
    /// state).
    pub visited: Vec<ChannelState>,
}

impl StateMachine {
    /// Creates a BR/EDR machine in `CLOSED` with eager configuration enabled
    /// (the behaviour of every mainstream stack).
    pub fn new() -> Self {
        StateMachine::for_link(LinkType::BrEdr)
    }

    /// Creates a machine for a channel on the given link type.  LE channels
    /// have no configuration handshake, so eager configuration only applies
    /// on BR/EDR.
    pub fn for_link(link: LinkType) -> Self {
        StateMachine {
            state: ChannelState::Closed,
            visited: vec![ChannelState::Closed],
            visited_mask: 1 << ChannelState::Closed.index(),
            eager_config: link == LinkType::BrEdr,
            link,
        }
    }

    /// Creates a BR/EDR machine with eager configuration disabled: the
    /// device never initiates its own Configuration Request and simply
    /// waits.
    pub fn without_eager_config() -> Self {
        StateMachine {
            eager_config: false,
            ..StateMachine::new()
        }
    }

    /// Creates a machine parked in an arbitrary `state` on `link`, with the
    /// link's default eager-configuration behaviour (eager on BR/EDR, none
    /// on LE, exactly like [`StateMachine::for_link`]).
    ///
    /// This is the model checker's stepping primitive: the `analysis` crate
    /// explores the protocol model by parking a machine in each discovered
    /// state and feeding it one command, so the exploration runs through
    /// [`StateMachine::advance`] itself — the same code the simulated
    /// devices and the coverage replay execute — rather than a re-derived
    /// copy of the transition semantics.
    pub fn at(state: ChannelState, link: LinkType) -> Self {
        StateMachine {
            state,
            visited: vec![state],
            visited_mask: 1 << state.index(),
            eager_config: link == LinkType::BrEdr,
            link,
        }
    }

    /// Overrides the eager-configuration behaviour (builder-style).  The
    /// model checker explores both the eager and the non-eager BR/EDR
    /// machine, since [`StateMachine::without_eager_config`] is a real
    /// configuration the state table must stay live for.
    pub fn with_eager(mut self, eager: bool) -> Self {
        self.eager_config = eager;
        self
    }

    /// Returns `true` if this machine initiates its own Configuration
    /// Request when a configurable channel first processes traffic.
    pub fn eager_config(&self) -> bool {
        self.eager_config
    }

    /// Current channel state.
    pub fn state(&self) -> ChannelState {
        self.state
    }

    /// The link type this machine's channel lives on.
    pub fn link(&self) -> LinkType {
        self.link
    }

    /// Every state this channel has visited, in first-visit order.
    pub fn visited(&self) -> &[ChannelState] {
        &self.visited
    }

    fn visit(&mut self, state: ChannelState, out: &mut Vec<ChannelState>) {
        self.record_first_visit(state);
        out.push(state);
        self.state = state;
    }

    #[inline]
    fn record_first_visit(&mut self, state: ChannelState) {
        let bit = 1u32 << state.index();
        if self.visited_mask & bit == 0 {
            self.visited_mask |= bit;
            self.visited.push(state);
        }
    }

    /// Returns `true` if a connection-establishing request of this link type
    /// can be refused by the upper layer from `CLOSED` (the `accept = false`
    /// path of [`StateMachine::on_command`]).
    fn is_refusable_connect(&self, code: CommandCode) -> bool {
        if self.state != ChannelState::Closed {
            return false;
        }
        match self.link {
            LinkType::BrEdr => matches!(
                code,
                CommandCode::ConnectionRequest | CommandCode::CreateChannelRequest
            ),
            LinkType::Le => matches!(
                code,
                CommandCode::LeCreditBasedConnectionRequest
                    | CommandCode::CreditBasedConnectionRequest
            ),
        }
    }

    /// The short-lived deciding state a refused connect passes through.
    fn deciding_state(&self, code: CommandCode) -> ChannelState {
        if code == CommandCode::CreateChannelRequest {
            ChannelState::WaitCreate
        } else {
            ChannelState::WaitConnect
        }
    }

    /// Feeds a command into the machine for its state effects only, without
    /// materializing a [`Reaction`].  Visits exactly the states
    /// [`StateMachine::on_command`] would visit but performs no per-call
    /// allocation — the path trace replay uses to re-drive machines record by
    /// record.
    pub fn advance(&mut self, code: CommandCode, accept: bool) {
        if !accept && self.is_refusable_connect(code) {
            self.visit_only(self.deciding_state(code));
            self.visit_only(ChannelState::Closed);
            return;
        }
        if self.eager_config && self.state == ChannelState::WaitConfig {
            self.visit_only(ChannelState::WaitConfigReqRsp);
        }
        let transition = spec_transition(self.state, code, self.link);
        for s in transition.passes_through {
            self.visit_only(*s);
        }
        self.visit_only(transition.next);
    }

    fn visit_only(&mut self, state: ChannelState) {
        self.record_first_visit(state);
        self.state = state;
    }

    /// Feeds a received signalling command addressed to this channel into the
    /// machine and returns the device's reaction.
    ///
    /// `accept` controls whether the upper layer accepts connection/creation
    /// requests (e.g. the PSM is supported); when `false` the device responds
    /// with a refusal and the channel returns to `CLOSED` after passing
    /// through the deciding state.
    pub fn on_command(&mut self, code: CommandCode, accept: bool) -> Reaction {
        let mut actions = Vec::new();
        let mut visited = Vec::new();

        // Refused connection / creation: pass through the deciding state and
        // fall back to CLOSED with a refusal response.
        if !accept && self.is_refusable_connect(code) {
            self.visit(self.deciding_state(code), &mut visited);
            // analyzer: allow(panic) — is_refusable_connect admits only the
            // four connect requests, all of which have a response code.
            actions.push(Action::Respond(
                code.expected_response().expect("requests have responses"),
            ));
            self.visit(ChannelState::Closed, &mut visited);
            return Reaction { actions, visited };
        }

        // Eager configuration: a configurable channel that has not yet sent
        // its own Configuration Request does so before processing traffic
        // addressed to it.
        if self.eager_config && self.state == ChannelState::WaitConfig {
            actions.push(Action::Initiate(CommandCode::ConfigureRequest));
            self.visit(ChannelState::WaitConfigReqRsp, &mut visited);
        }

        let transition = spec_transition(self.state, code, self.link);
        actions.push(transition.action);
        for s in transition.passes_through {
            self.visit(*s, &mut visited);
        }
        if visited.last() != Some(&transition.next) {
            self.visit(transition.next, &mut visited);
        }

        Reaction { actions, visited }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn there_are_19_states() {
        assert_eq!(ChannelState::ALL.len(), 19);
        let set: BTreeSet<_> = ChannelState::ALL.iter().collect();
        assert_eq!(set.len(), 19);
    }

    #[test]
    fn spec_names_are_unique_and_uppercase() {
        let mut names: Vec<&str> = ChannelState::ALL.iter().map(|s| s.spec_name()).collect();
        for n in &names {
            assert_eq!(*n, n.to_uppercase());
        }
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 19);
    }

    #[test]
    fn reachable_set_has_13_states_and_excludes_responder_states() {
        assert_eq!(ChannelState::REACHABLE_FROM_INITIATOR.len(), 13);
        for s in [
            ChannelState::WaitConnectRsp,
            ChannelState::WaitCreateRsp,
            ChannelState::WaitMoveRsp,
            ChannelState::WaitIndFinalRsp,
            ChannelState::WaitFinalRsp,
            ChannelState::WaitControlInd,
        ] {
            assert!(
                !s.reachable_from_initiator(),
                "{s} must not be initiator-reachable"
            );
        }
        assert!(ChannelState::Open.reachable_from_initiator());
    }

    #[test]
    fn table2_wait_connect_rejects_everything_but_connect_req() {
        // Paper Table II: in WAIT_CONNECT only Connect Req triggers a
        // transition; the other channel commands are rejected.
        let t = spec_transition(
            ChannelState::WaitConnect,
            CommandCode::ConnectionRequest,
            LinkType::BrEdr,
        );
        assert_eq!(t.action, Action::Respond(CommandCode::ConnectionResponse));
        assert_eq!(t.next, ChannelState::WaitConfig);

        for code in [
            CommandCode::ConnectionResponse,
            CommandCode::ConfigureRequest,
            CommandCode::ConfigureResponse,
            CommandCode::DisconnectionResponse,
            CommandCode::CreateChannelRequest,
            CommandCode::CreateChannelResponse,
            CommandCode::MoveChannelRequest,
            CommandCode::MoveChannelResponse,
            CommandCode::MoveChannelConfirmationRequest,
            CommandCode::MoveChannelConfirmationResponse,
        ] {
            let t = spec_transition(ChannelState::WaitConnect, code, LinkType::BrEdr);
            assert!(
                matches!(t.action, Action::Reject(_)),
                "{code} must be rejected in WAIT_CONNECT"
            );
            assert_eq!(
                t.next,
                ChannelState::WaitConnect,
                "{code} must not transition"
            );
        }
    }

    #[test]
    fn echo_and_information_are_valid_in_every_state() {
        for state in ChannelState::ALL {
            let t = spec_transition(state, CommandCode::EchoRequest, LinkType::BrEdr);
            assert_eq!(t.action, Action::Respond(CommandCode::EchoResponse));
            assert_eq!(t.next, state);
            let t = spec_transition(state, CommandCode::InformationRequest, LinkType::BrEdr);
            assert_eq!(t.action, Action::Respond(CommandCode::InformationResponse));
            assert_eq!(t.next, state);
        }
    }

    #[test]
    fn le_only_commands_are_rejected_on_br_edr() {
        let t = spec_transition(
            ChannelState::Open,
            CommandCode::LeCreditBasedConnectionRequest,
            LinkType::BrEdr,
        );
        assert_eq!(t.action, Action::Reject(RejectReason::CommandNotUnderstood));
    }

    #[test]
    fn connect_then_full_config_reaches_open() {
        let mut sm = StateMachine::new();
        let r = sm.on_command(CommandCode::ConnectionRequest, true);
        assert!(r
            .actions
            .contains(&Action::Respond(CommandCode::ConnectionResponse)));
        assert_eq!(sm.state(), ChannelState::WaitConfig);

        // Peer sends its Configuration Request -> the eager device first
        // fires its own Configuration Request, then answers, and waits for
        // the response to its own request.
        let r = sm.on_command(CommandCode::ConfigureRequest, true);
        assert!(r
            .actions
            .contains(&Action::Initiate(CommandCode::ConfigureRequest)));
        assert!(r
            .actions
            .contains(&Action::Respond(CommandCode::ConfigureResponse)));
        assert!(r.visited.contains(&ChannelState::WaitConfigReqRsp));
        assert_eq!(sm.state(), ChannelState::WaitConfigRsp);

        // Peer answers the device's own request -> OPEN.
        sm.on_command(CommandCode::ConfigureResponse, true);
        assert_eq!(sm.state(), ChannelState::Open);
    }

    #[test]
    fn config_in_the_other_order_visits_wait_config_req() {
        let mut sm = StateMachine::new();
        sm.on_command(CommandCode::ConnectionRequest, true);
        sm.on_command(CommandCode::ConfigureResponse, true);
        assert_eq!(sm.state(), ChannelState::WaitConfigReq);
        sm.on_command(CommandCode::ConfigureRequest, true);
        assert_eq!(sm.state(), ChannelState::Open);
    }

    #[test]
    fn refused_connection_returns_to_closed_through_wait_connect() {
        let mut sm = StateMachine::new();
        let r = sm.on_command(CommandCode::ConnectionRequest, false);
        assert_eq!(sm.state(), ChannelState::Closed);
        assert!(r.visited.contains(&ChannelState::WaitConnect));
        assert!(!sm.visited().contains(&ChannelState::WaitConfig));
    }

    #[test]
    fn disconnect_passes_through_wait_disconnect() {
        let mut sm = StateMachine::new();
        sm.on_command(CommandCode::ConnectionRequest, true);
        sm.on_command(CommandCode::ConfigureRequest, true);
        sm.on_command(CommandCode::ConfigureResponse, true);
        assert_eq!(sm.state(), ChannelState::Open);
        let r = sm.on_command(CommandCode::DisconnectionRequest, true);
        assert!(r.visited.contains(&ChannelState::WaitDisconnect));
        assert_eq!(sm.state(), ChannelState::Closed);
    }

    #[test]
    fn move_flow_visits_move_states_and_returns_to_open() {
        let mut sm = StateMachine::new();
        sm.on_command(CommandCode::ConnectionRequest, true);
        sm.on_command(CommandCode::ConfigureRequest, true);
        sm.on_command(CommandCode::ConfigureResponse, true);
        sm.on_command(CommandCode::MoveChannelRequest, true);
        assert_eq!(sm.state(), ChannelState::WaitMoveConfirm);
        assert!(sm.visited().contains(&ChannelState::WaitMove));
        sm.on_command(CommandCode::MoveChannelConfirmationRequest, true);
        assert_eq!(sm.state(), ChannelState::Open);
        assert!(sm.visited().contains(&ChannelState::WaitConfirmRsp));
    }

    #[test]
    fn reconfiguration_from_open_visits_wait_send_config() {
        let mut sm = StateMachine::new();
        sm.on_command(CommandCode::ConnectionRequest, true);
        sm.on_command(CommandCode::ConfigureRequest, true);
        sm.on_command(CommandCode::ConfigureResponse, true);
        assert_eq!(sm.state(), ChannelState::Open);
        sm.on_command(CommandCode::ConfigureRequest, true);
        assert!(sm.visited().contains(&ChannelState::WaitSendConfig));
        assert_eq!(sm.state(), ChannelState::WaitConfigRsp);
    }

    #[test]
    fn without_eager_config_the_channel_parks_in_wait_config() {
        let mut sm = StateMachine::without_eager_config();
        sm.on_command(CommandCode::ConnectionRequest, true);
        assert_eq!(sm.state(), ChannelState::WaitConfig);
        // A command not addressed to configuration keeps it there.
        let r = sm.on_command(CommandCode::MoveChannelRequest, true);
        assert!(matches!(r.actions[0], Action::Reject(_)));
        assert_eq!(sm.state(), ChannelState::WaitConfig);
    }

    #[test]
    fn full_initiator_walk_covers_exactly_the_13_reachable_states() {
        // Drive a single eager-config machine through every manoeuvre an
        // initiator can perform and check the visited set equals the
        // documented reachable set.
        let mut sm = StateMachine::new();
        // Refused connect (visits WAIT_CONNECT), then a real connect.
        sm.on_command(CommandCode::ConnectionRequest, false);
        sm.on_command(CommandCode::ConnectionRequest, true);
        // Config, one order.
        sm.on_command(CommandCode::ConfigureRequest, true);
        sm.on_command(CommandCode::ConfigureResponse, true);
        // Disconnect, then re-create via create-channel.
        sm.on_command(CommandCode::DisconnectionRequest, true);
        sm.on_command(CommandCode::CreateChannelRequest, true);
        // Config, the other order.
        sm.on_command(CommandCode::ConfigureResponse, true);
        sm.on_command(CommandCode::ConfigureRequest, true);
        // Reconfiguration from OPEN.
        sm.on_command(CommandCode::ConfigureRequest, true);
        sm.on_command(CommandCode::ConfigureResponse, true);
        // Move flow.
        sm.on_command(CommandCode::MoveChannelRequest, true);
        sm.on_command(CommandCode::MoveChannelConfirmationRequest, true);

        let visited: BTreeSet<ChannelState> = sm.visited().iter().copied().collect();
        let reachable: BTreeSet<ChannelState> = ChannelState::REACHABLE_FROM_INITIATOR
            .iter()
            .copied()
            .collect();
        assert_eq!(visited, reachable);
        assert_eq!(visited.len(), 13);
    }
}
