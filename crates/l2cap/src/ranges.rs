//! Mutation value ranges for the mutable core fields (paper Table IV).
//!
//! * **PSM** — the normal PSM range has already been exercised during port
//!   scanning, so the mutator draws from the *abnormal* ranges listed in
//!   Table IV (odd-MSB blocks `0x0100-0x01FF`, `0x0300-0x03FF`, …,
//!   `0x0D00-0x0DFF`, plus every even value, which violates the "least
//!   significant octet must be odd" rule).
//! * **CIDP** — channel IDs in payloads are drawn from the *normal* dynamic
//!   range `0x0040-0xFFFF`, deliberately ignoring what the target actually
//!   allocated: the value is plausible, but it does not belong to this
//!   channel, which is exactly the condition that broke the stacks in the
//!   paper's case study.

use btcore::FuzzRng;
use std::ops::RangeInclusive;

/// The odd-MSB abnormal PSM blocks of Table IV.
pub const ABNORMAL_PSM_BLOCKS: [RangeInclusive<u16>; 7] = [
    0x0100..=0x01FF,
    0x0300..=0x03FF,
    0x0500..=0x05FF,
    0x0700..=0x07FF,
    0x0900..=0x09FF,
    0x0B00..=0x0BFF,
    0x0D00..=0x0DFF,
];

/// The CIDP mutation range of Table IV (the dynamic CID space).
pub const CIDP_RANGE: RangeInclusive<u16> = 0x0040..=0xFFFF;

/// Returns `true` if `psm` belongs to Table IV's abnormal PSM space: one of
/// the odd-MSB blocks, or any even value.
pub fn is_abnormal_psm(psm: u16) -> bool {
    if psm.is_multiple_of(2) {
        return true;
    }
    ABNORMAL_PSM_BLOCKS.iter().any(|block| block.contains(&psm))
}

/// Returns `true` if `cid` lies in Table IV's CIDP mutation range.
pub fn is_cidp_range(cid: u16) -> bool {
    CIDP_RANGE.contains(&cid)
}

/// Draws a random abnormal PSM value per Table IV.
///
/// Half of the draws come from the odd-MSB blocks and half are even values,
/// so both abnormal classes are exercised.
pub fn random_abnormal_psm(rng: &mut FuzzRng) -> u16 {
    let psm = if rng.chance(0.5) {
        let block = rng.pick(&ABNORMAL_PSM_BLOCKS).clone();
        rng.range_u16(*block.start(), *block.end())
    } else {
        // Any even value.
        rng.range_u16(0, u16::MAX / 2) * 2
    };
    debug_assert!(is_abnormal_psm(psm));
    psm
}

/// Draws a random CIDP value from the normal dynamic range, ignoring what the
/// target actually allocated.
pub fn random_cidp(rng: &mut FuzzRng) -> u16 {
    rng.range_u16(*CIDP_RANGE.start(), *CIDP_RANGE.end())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_blocks_are_the_seven_odd_msb_blocks() {
        assert_eq!(ABNORMAL_PSM_BLOCKS.len(), 7);
        for (i, block) in ABNORMAL_PSM_BLOCKS.iter().enumerate() {
            let msb = (block.start() >> 8) as u8;
            assert_eq!(msb % 2, 1, "block {i} must have an odd MSB");
            assert_eq!(block.end() - block.start(), 0xFF);
        }
    }

    #[test]
    fn even_psms_are_abnormal() {
        assert!(is_abnormal_psm(0x0000));
        assert!(is_abnormal_psm(0x0002));
        assert!(is_abnormal_psm(0x1000));
        assert!(is_abnormal_psm(0xFFFE));
    }

    #[test]
    fn odd_msb_blocks_are_abnormal() {
        assert!(is_abnormal_psm(0x0101));
        assert!(is_abnormal_psm(0x03FF));
        assert!(is_abnormal_psm(0x0D0D));
    }

    #[test]
    fn well_known_psms_are_not_abnormal() {
        for psm in btcore::Psm::well_known() {
            assert!(
                !is_abnormal_psm(psm.value()),
                "{psm} must not be in the abnormal space"
            );
        }
        // A valid dynamic PSM is also normal.
        assert!(!is_abnormal_psm(0x1001));
    }

    #[test]
    fn abnormal_psms_are_never_structurally_valid_or_scannable() {
        // The abnormal space and the structurally valid space are disjoint:
        // abnormal values would never appear in a port scan.
        for psm in [
            0x0100u16,
            0x0300,
            0x0505,
            0x0707,
            0x0009 * 2,
            0x0B0B,
            0x0D01,
            0x0002,
        ] {
            assert!(is_abnormal_psm(psm));
            assert!(
                !btcore::Psm(psm).is_valid()
                    || ABNORMAL_PSM_BLOCKS.iter().any(|b| b.contains(&psm))
            );
        }
    }

    #[test]
    fn cidp_range_is_dynamic_cid_space() {
        assert!(is_cidp_range(0x0040));
        assert!(is_cidp_range(0xFFFF));
        assert!(!is_cidp_range(0x0001));
        assert!(!is_cidp_range(0x003F));
    }

    #[test]
    fn random_abnormal_psm_always_lands_in_table4_space() {
        let mut rng = FuzzRng::seed_from(42);
        for _ in 0..2_000 {
            assert!(is_abnormal_psm(random_abnormal_psm(&mut rng)));
        }
    }

    #[test]
    fn random_cidp_always_lands_in_range() {
        let mut rng = FuzzRng::seed_from(43);
        for _ in 0..2_000 {
            assert!(is_cidp_range(random_cidp(&mut rng)));
        }
    }

    #[test]
    fn random_draws_cover_both_abnormal_psm_classes() {
        let mut rng = FuzzRng::seed_from(44);
        let mut saw_even = false;
        let mut saw_block = false;
        for _ in 0..500 {
            let v = random_abnormal_psm(&mut rng);
            if v.is_multiple_of(2) {
                saw_even = true;
            }
            if ABNORMAL_PSM_BLOCKS.iter().any(|b| b.contains(&v)) {
                saw_block = true;
            }
        }
        assert!(saw_even && saw_block);
    }
}
