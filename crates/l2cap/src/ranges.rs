//! Mutation value ranges for the mutable core fields (paper Table IV).
//!
//! * **PSM** — the normal PSM range has already been exercised during port
//!   scanning, so the mutator draws from the *abnormal* ranges listed in
//!   Table IV (odd-MSB blocks `0x0100-0x01FF`, `0x0300-0x03FF`, …,
//!   `0x0D00-0x0DFF`, plus every even value, which violates the "least
//!   significant octet must be odd" rule).
//! * **CIDP** — channel IDs in payloads are drawn from the *normal* dynamic
//!   range `0x0040-0xFFFF`, deliberately ignoring what the target actually
//!   allocated: the value is plausible, but it does not belong to this
//!   channel, which is exactly the condition that broke the stacks in the
//!   paper's case study.

use btcore::FuzzRng;
use std::ops::RangeInclusive;

/// The odd-MSB abnormal PSM blocks of Table IV.
pub const ABNORMAL_PSM_BLOCKS: [RangeInclusive<u16>; 7] = [
    0x0100..=0x01FF,
    0x0300..=0x03FF,
    0x0500..=0x05FF,
    0x0700..=0x07FF,
    0x0900..=0x09FF,
    0x0B00..=0x0BFF,
    0x0D00..=0x0DFF,
];

/// The CIDP mutation range of Table IV (the dynamic CID space).
pub const CIDP_RANGE: RangeInclusive<u16> = 0x0040..=0xFFFF;

/// Returns `true` if `psm` belongs to Table IV's abnormal PSM space: one of
/// the odd-MSB blocks, or any even value.
pub fn is_abnormal_psm(psm: u16) -> bool {
    if psm.is_multiple_of(2) {
        return true;
    }
    ABNORMAL_PSM_BLOCKS.iter().any(|block| block.contains(&psm))
}

/// Returns `true` if `cid` lies in Table IV's CIDP mutation range.
pub fn is_cidp_range(cid: u16) -> bool {
    CIDP_RANGE.contains(&cid)
}

/// Draws a random abnormal PSM value per Table IV.
///
/// Half of the draws come from the odd-MSB blocks and half are even values,
/// so both abnormal classes are exercised.
pub fn random_abnormal_psm(rng: &mut FuzzRng) -> u16 {
    let psm = if rng.chance(0.5) {
        let block = rng.pick(&ABNORMAL_PSM_BLOCKS).clone();
        rng.range_u16(*block.start(), *block.end())
    } else {
        // Any even value.
        rng.range_u16(0, u16::MAX / 2) * 2
    };
    debug_assert!(is_abnormal_psm(psm));
    psm
}

/// Draws a random CIDP value from the normal dynamic range, ignoring what the
/// target actually allocated.
pub fn random_cidp(rng: &mut FuzzRng) -> u16 {
    rng.range_u16(*CIDP_RANGE.start(), *CIDP_RANGE.end())
}

// ---------------------------------------------------------------------------
// LE credit-based channel ranges (the Table IV analogue for LE-U links).
//
// The defined SPSM space is `0x0001..=0x00FF` (SIG-assigned `0x01..=0x7F`,
// dynamic `0x80..=0xFF`); everything above it — and the reserved zero — is
// abnormal.  Credits are a 16-bit counter a peer accumulates: zero initial
// credits stall the channel, and values in the upper half drive the
// accumulated total toward the 65535 overflow the specification says must
// disconnect the channel — both are the abnormal classes the LE mutation
// draws from.  The LE minimum MTU/MPS is 23 octets; values below it are
// abnormal.

/// The abnormal SPSM space: zero, or any value above the defined `0x00FF`.
pub const ABNORMAL_SPSM_FLOOR: u16 = 0x0100;

/// Credits at or above this value are in the overflow-prone abnormal class.
pub const ABNORMAL_CREDIT_FLOOR: u16 = 0x8000;

/// The LE minimum MTU/MPS in octets; values below are abnormal.
pub const LE_MIN_MTU: u16 = 23;

/// Returns `true` if `spsm` lies outside the defined LE SPSM space
/// (`0x0001..=0x00FF`).
pub fn is_abnormal_spsm(spsm: u16) -> bool {
    spsm == 0 || spsm >= ABNORMAL_SPSM_FLOOR
}

/// Returns `true` if `credits` belongs to one of the abnormal credit
/// classes: the zero-credit stall or the overflow-prone upper half.
pub fn is_abnormal_credits(credits: u16) -> bool {
    credits == 0 || credits >= ABNORMAL_CREDIT_FLOOR
}

/// Returns `true` if an LE MTU or MPS value is below the 23-octet minimum.
pub fn is_abnormal_le_mtu(value: u16) -> bool {
    value < LE_MIN_MTU
}

/// Draws a random abnormal SPSM: one quarter of the draws are the reserved
/// zero, the rest land above the defined space.
pub fn random_abnormal_spsm(rng: &mut FuzzRng) -> u16 {
    let spsm = if rng.chance(0.25) {
        0
    } else {
        rng.range_u16(ABNORMAL_SPSM_FLOOR, u16::MAX)
    };
    debug_assert!(is_abnormal_spsm(spsm));
    spsm
}

/// Draws a random abnormal credit count: half zero-credit stalls, half
/// overflow-prone values.
pub fn random_abnormal_credits(rng: &mut FuzzRng) -> u16 {
    let credits = if rng.chance(0.5) {
        0
    } else {
        rng.range_u16(ABNORMAL_CREDIT_FLOOR, u16::MAX)
    };
    debug_assert!(is_abnormal_credits(credits));
    credits
}

/// Draws a random abnormal LE MTU/MPS (below the 23-octet minimum).
pub fn random_abnormal_le_mtu(rng: &mut FuzzRng) -> u16 {
    let value = rng.range_u16(0, LE_MIN_MTU - 1);
    debug_assert!(is_abnormal_le_mtu(value));
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_blocks_are_the_seven_odd_msb_blocks() {
        assert_eq!(ABNORMAL_PSM_BLOCKS.len(), 7);
        for (i, block) in ABNORMAL_PSM_BLOCKS.iter().enumerate() {
            let msb = (block.start() >> 8) as u8;
            assert_eq!(msb % 2, 1, "block {i} must have an odd MSB");
            assert_eq!(block.end() - block.start(), 0xFF);
        }
    }

    #[test]
    fn even_psms_are_abnormal() {
        assert!(is_abnormal_psm(0x0000));
        assert!(is_abnormal_psm(0x0002));
        assert!(is_abnormal_psm(0x1000));
        assert!(is_abnormal_psm(0xFFFE));
    }

    #[test]
    fn odd_msb_blocks_are_abnormal() {
        assert!(is_abnormal_psm(0x0101));
        assert!(is_abnormal_psm(0x03FF));
        assert!(is_abnormal_psm(0x0D0D));
    }

    #[test]
    fn well_known_psms_are_not_abnormal() {
        for psm in btcore::Psm::well_known() {
            assert!(
                !is_abnormal_psm(psm.value()),
                "{psm} must not be in the abnormal space"
            );
        }
        // A valid dynamic PSM is also normal.
        assert!(!is_abnormal_psm(0x1001));
    }

    #[test]
    fn abnormal_psms_are_never_structurally_valid_or_scannable() {
        // The abnormal space and the structurally valid space are disjoint:
        // abnormal values would never appear in a port scan.
        for psm in [
            0x0100u16,
            0x0300,
            0x0505,
            0x0707,
            0x0009 * 2,
            0x0B0B,
            0x0D01,
            0x0002,
        ] {
            assert!(is_abnormal_psm(psm));
            assert!(
                !btcore::Psm(psm).is_valid()
                    || ABNORMAL_PSM_BLOCKS.iter().any(|b| b.contains(&psm))
            );
        }
    }

    #[test]
    fn cidp_range_is_dynamic_cid_space() {
        assert!(is_cidp_range(0x0040));
        assert!(is_cidp_range(0xFFFF));
        assert!(!is_cidp_range(0x0001));
        assert!(!is_cidp_range(0x003F));
    }

    #[test]
    fn random_abnormal_psm_always_lands_in_table4_space() {
        let mut rng = FuzzRng::seed_from(42);
        for _ in 0..2_000 {
            assert!(is_abnormal_psm(random_abnormal_psm(&mut rng)));
        }
    }

    #[test]
    fn random_cidp_always_lands_in_range() {
        let mut rng = FuzzRng::seed_from(43);
        for _ in 0..2_000 {
            assert!(is_cidp_range(random_cidp(&mut rng)));
        }
    }

    #[test]
    fn le_abnormal_classifiers_match_the_defined_spaces() {
        // SPSM: the defined space 0x0001..=0x00FF is normal.
        assert!(is_abnormal_spsm(0x0000));
        assert!(is_abnormal_spsm(0x0100));
        assert!(is_abnormal_spsm(0xFFFF));
        assert!(!is_abnormal_spsm(0x0025)); // OTS
        assert!(!is_abnormal_spsm(0x0080)); // first dynamic SPSM
        assert!(!is_abnormal_spsm(0x00FF));
        // Credits: zero stalls, the upper half overflows.
        assert!(is_abnormal_credits(0));
        assert!(is_abnormal_credits(0x8000));
        assert!(is_abnormal_credits(0xFFFF));
        assert!(!is_abnormal_credits(1));
        assert!(!is_abnormal_credits(0x7FFF));
        // MTU/MPS: the 23-octet minimum.
        assert!(is_abnormal_le_mtu(0));
        assert!(is_abnormal_le_mtu(22));
        assert!(!is_abnormal_le_mtu(23));
        assert!(!is_abnormal_le_mtu(512));
    }

    #[test]
    fn random_le_draws_land_in_the_abnormal_spaces_and_cover_both_classes() {
        let mut rng = FuzzRng::seed_from(45);
        let (mut zero_spsm, mut high_spsm) = (false, false);
        let (mut zero_credit, mut high_credit) = (false, false);
        for _ in 0..500 {
            let spsm = random_abnormal_spsm(&mut rng);
            assert!(is_abnormal_spsm(spsm));
            zero_spsm |= spsm == 0;
            high_spsm |= spsm >= ABNORMAL_SPSM_FLOOR;
            let credits = random_abnormal_credits(&mut rng);
            assert!(is_abnormal_credits(credits));
            zero_credit |= credits == 0;
            high_credit |= credits >= ABNORMAL_CREDIT_FLOOR;
            assert!(is_abnormal_le_mtu(random_abnormal_le_mtu(&mut rng)));
        }
        assert!(zero_spsm && high_spsm, "both abnormal SPSM classes drawn");
        assert!(
            zero_credit && high_credit,
            "both abnormal credit classes drawn"
        );
    }

    #[test]
    fn random_draws_cover_both_abnormal_psm_classes() {
        let mut rng = FuzzRng::seed_from(44);
        let mut saw_even = false;
        let mut saw_block = false;
        for _ in 0..500 {
            let v = random_abnormal_psm(&mut rng);
            if v.is_multiple_of(2) {
                saw_even = true;
            }
            if ABNORMAL_PSM_BLOCKS.iter().any(|b| b.contains(&v)) {
                saw_block = true;
            }
        }
        assert!(saw_even && saw_block);
    }
}
