//! Field classification of the Bluetooth 5.2 L2CAP frame (paper Fig. 6).
//!
//! The paper segments a packet `L` into fixed (`F`), dependent (`D`) and
//! mutable (`M`) fields, and further splits `M` into *mutable core* fields
//! (`MC` — PSM and the channel IDs carried in payloads, "CIDP") and *mutable
//! application* fields (`MA` — everything else).  Core-field mutation changes
//! only `MC`, keeps `F` and `D` intact and leaves `MA` at default values.
//!
//! This module provides that classification programmatically: a
//! [`FieldClass`] for every [`FieldName`], plus byte-accurate
//! [`FieldSpec`] layouts of the data fields of every signalling command, so a
//! mutator can locate and patch `MC` bytes inside an encoded payload without
//! disturbing anything else.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::code::CommandCode;

/// The paper's four-way field classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldClass {
    /// `F` — fixed fields; only the header CID (always `0x0001`).
    Fixed,
    /// `D` — dependent fields; values determined by other values
    /// (lengths, the command code, the packet identifier).
    Dependent,
    /// `MC` — mutable core fields; determine the port and channel of the
    /// Bluetooth network (PSM and CIDP).
    MutableCore,
    /// `MA` — mutable application fields; command-specific data that does not
    /// affect port or channel management.
    MutableApp,
}

impl fmt::Display for FieldClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FieldClass::Fixed => "F",
            FieldClass::Dependent => "D",
            FieldClass::MutableCore => "MC",
            FieldClass::MutableApp => "MA",
        };
        f.write_str(s)
    }
}

/// Every field name appearing in the Fig. 6 frame classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum FieldName {
    // L2CAP basic header and C-frame header.
    PayloadLen,
    HeaderCid,
    Code,
    Id,
    DataLen,
    // Mutable core fields (MC).
    Psm,
    Scid,
    Dcid,
    Icid,
    ContId,
    // Mutable application fields (MA).
    Reason,
    Result,
    Status,
    Flags,
    InfoType,
    Interval,
    Latency,
    Timeout,
    Spsm,
    Mtu,
    Credit,
    Mps,
    Options,
    QoS,
    /// Free-form command data (echo payloads, info response bodies, ...).
    Data,
}

impl FieldName {
    /// Returns the paper's classification for this field (Fig. 6).
    pub const fn class(&self) -> FieldClass {
        match self {
            FieldName::HeaderCid => FieldClass::Fixed,
            FieldName::PayloadLen | FieldName::Code | FieldName::Id | FieldName::DataLen => {
                FieldClass::Dependent
            }
            FieldName::Psm
            | FieldName::Scid
            | FieldName::Dcid
            | FieldName::Icid
            | FieldName::ContId => FieldClass::MutableCore,
            _ => FieldClass::MutableApp,
        }
    }

    /// Returns `true` if the field is one of the "Channel ID in Payload"
    /// (CIDP) fields: SCID, DCID, ICID or the controller ID.
    pub const fn is_cidp(&self) -> bool {
        matches!(
            self,
            FieldName::Scid | FieldName::Dcid | FieldName::Icid | FieldName::ContId
        )
    }
}

impl fmt::Display for FieldName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FieldName::PayloadLen => "PAYLOAD LEN",
            FieldName::HeaderCid => "HEADER CID",
            FieldName::Code => "CODE",
            FieldName::Id => "ID",
            FieldName::DataLen => "DATA LEN",
            FieldName::Psm => "PSM",
            FieldName::Scid => "SCID",
            FieldName::Dcid => "DCID",
            FieldName::Icid => "ICID",
            FieldName::ContId => "CONT ID",
            FieldName::Reason => "REASON",
            FieldName::Result => "RESULT",
            FieldName::Status => "STATUS",
            FieldName::Flags => "FLAGS",
            FieldName::InfoType => "TYPE",
            FieldName::Interval => "INTERVAL",
            FieldName::Latency => "LATENCY",
            FieldName::Timeout => "TIMEOUT",
            FieldName::Spsm => "SPSM",
            FieldName::Mtu => "MTU",
            FieldName::Credit => "CREDIT",
            FieldName::Mps => "MPS",
            FieldName::Options => "OPT",
            FieldName::QoS => "QoS",
            FieldName::Data => "DATA",
        };
        f.write_str(s)
    }
}

/// Location of one field within a command's data-field bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Which field this is.
    pub name: FieldName,
    /// Byte offset from the start of the data fields.
    pub offset: usize,
    /// Field width in bytes; `None` means "variable, extends to the end".
    pub len: Option<usize>,
}

impl FieldSpec {
    const fn fixed(name: FieldName, offset: usize, len: usize) -> FieldSpec {
        FieldSpec {
            name,
            offset,
            len: Some(len),
        }
    }

    const fn tail(name: FieldName, offset: usize) -> FieldSpec {
        FieldSpec {
            name,
            offset,
            len: None,
        }
    }

    /// Returns the classification of this field.
    pub const fn class(&self) -> FieldClass {
        self.name.class()
    }
}

/// Returns the data-field layout of `code` (offsets are relative to the start
/// of the command's data fields, i.e. after CODE / ID / DATA LEN).
///
/// The layouts are constant tables: the slice is `'static` and this function
/// never allocates, which matters because the mutator, the simulated
/// endpoints and the trace classifiers all consult layouts on their
/// per-packet hot paths.
pub fn data_field_layout(code: CommandCode) -> &'static [FieldSpec] {
    use FieldName as N;
    match code {
        CommandCode::CommandReject => {
            const {
                &[
                    FieldSpec::fixed(N::Reason, 0, 2),
                    FieldSpec::tail(N::Data, 2),
                ]
            }
        }
        CommandCode::ConnectionRequest => {
            const {
                &[
                    FieldSpec::fixed(N::Psm, 0, 2),
                    FieldSpec::fixed(N::Scid, 2, 2),
                ]
            }
        }
        CommandCode::ConnectionResponse => {
            const {
                &[
                    FieldSpec::fixed(N::Dcid, 0, 2),
                    FieldSpec::fixed(N::Scid, 2, 2),
                    FieldSpec::fixed(N::Result, 4, 2),
                    FieldSpec::fixed(N::Status, 6, 2),
                ]
            }
        }
        CommandCode::ConfigureRequest => {
            const {
                &[
                    FieldSpec::fixed(N::Dcid, 0, 2),
                    FieldSpec::fixed(N::Flags, 2, 2),
                    FieldSpec::tail(N::Options, 4),
                ]
            }
        }
        CommandCode::ConfigureResponse => {
            const {
                &[
                    FieldSpec::fixed(N::Scid, 0, 2),
                    FieldSpec::fixed(N::Flags, 2, 2),
                    FieldSpec::fixed(N::Result, 4, 2),
                    FieldSpec::tail(N::Options, 6),
                ]
            }
        }
        CommandCode::DisconnectionRequest | CommandCode::DisconnectionResponse => {
            const {
                &[
                    FieldSpec::fixed(N::Dcid, 0, 2),
                    FieldSpec::fixed(N::Scid, 2, 2),
                ]
            }
        }
        CommandCode::EchoRequest | CommandCode::EchoResponse => {
            const { &[FieldSpec::tail(N::Data, 0)] }
        }
        CommandCode::InformationRequest => const { &[FieldSpec::fixed(N::InfoType, 0, 2)] },
        CommandCode::InformationResponse => {
            const {
                &[
                    FieldSpec::fixed(N::InfoType, 0, 2),
                    FieldSpec::fixed(N::Result, 2, 2),
                    FieldSpec::tail(N::Data, 4),
                ]
            }
        }
        CommandCode::CreateChannelRequest => {
            const {
                &[
                    FieldSpec::fixed(N::Psm, 0, 2),
                    FieldSpec::fixed(N::Scid, 2, 2),
                    FieldSpec::fixed(N::ContId, 4, 1),
                ]
            }
        }
        CommandCode::CreateChannelResponse => {
            const {
                &[
                    FieldSpec::fixed(N::Dcid, 0, 2),
                    FieldSpec::fixed(N::Scid, 2, 2),
                    FieldSpec::fixed(N::Result, 4, 2),
                    FieldSpec::fixed(N::Status, 6, 2),
                ]
            }
        }
        CommandCode::MoveChannelRequest => {
            const {
                &[
                    FieldSpec::fixed(N::Icid, 0, 2),
                    FieldSpec::fixed(N::ContId, 2, 1),
                ]
            }
        }
        CommandCode::MoveChannelResponse => {
            const {
                &[
                    FieldSpec::fixed(N::Icid, 0, 2),
                    FieldSpec::fixed(N::Result, 2, 2),
                ]
            }
        }
        CommandCode::MoveChannelConfirmationRequest => {
            const {
                &[
                    FieldSpec::fixed(N::Icid, 0, 2),
                    FieldSpec::fixed(N::Result, 2, 2),
                ]
            }
        }
        CommandCode::MoveChannelConfirmationResponse => {
            const { &[FieldSpec::fixed(N::Icid, 0, 2)] }
        }
        CommandCode::ConnectionParameterUpdateRequest => {
            const {
                &[
                    FieldSpec::fixed(N::Interval, 0, 2),
                    FieldSpec::fixed(N::Interval, 2, 2),
                    FieldSpec::fixed(N::Latency, 4, 2),
                    FieldSpec::fixed(N::Timeout, 6, 2),
                ]
            }
        }
        CommandCode::ConnectionParameterUpdateResponse => {
            const { &[FieldSpec::fixed(N::Result, 0, 2)] }
        }
        CommandCode::LeCreditBasedConnectionRequest => {
            const {
                &[
                    FieldSpec::fixed(N::Spsm, 0, 2),
                    FieldSpec::fixed(N::Scid, 2, 2),
                    FieldSpec::fixed(N::Mtu, 4, 2),
                    FieldSpec::fixed(N::Mps, 6, 2),
                    FieldSpec::fixed(N::Credit, 8, 2),
                ]
            }
        }
        CommandCode::LeCreditBasedConnectionResponse => {
            const {
                &[
                    FieldSpec::fixed(N::Dcid, 0, 2),
                    FieldSpec::fixed(N::Mtu, 2, 2),
                    FieldSpec::fixed(N::Mps, 4, 2),
                    FieldSpec::fixed(N::Credit, 6, 2),
                    FieldSpec::fixed(N::Result, 8, 2),
                ]
            }
        }
        CommandCode::FlowControlCreditInd => {
            const {
                &[
                    FieldSpec::fixed(N::Scid, 0, 2),
                    FieldSpec::fixed(N::Credit, 2, 2),
                ]
            }
        }
        CommandCode::CreditBasedConnectionRequest => {
            const {
                &[
                    FieldSpec::fixed(N::Spsm, 0, 2),
                    FieldSpec::fixed(N::Mtu, 2, 2),
                    FieldSpec::fixed(N::Mps, 4, 2),
                    FieldSpec::fixed(N::Credit, 6, 2),
                    FieldSpec::tail(N::Scid, 8),
                ]
            }
        }
        CommandCode::CreditBasedConnectionResponse => {
            const {
                &[
                    FieldSpec::fixed(N::Mtu, 0, 2),
                    FieldSpec::fixed(N::Mps, 2, 2),
                    FieldSpec::fixed(N::Credit, 4, 2),
                    FieldSpec::fixed(N::Result, 6, 2),
                    FieldSpec::tail(N::Dcid, 8),
                ]
            }
        }
        CommandCode::CreditBasedReconfigureRequest => {
            const {
                &[
                    FieldSpec::fixed(N::Mtu, 0, 2),
                    FieldSpec::fixed(N::Mps, 2, 2),
                    FieldSpec::tail(N::Dcid, 4),
                ]
            }
        }
        CommandCode::CreditBasedReconfigureResponse => {
            const { &[FieldSpec::fixed(N::Result, 0, 2)] }
        }
    }
}

/// Returns the mutable-core fields (`MC`) of a command's data layout — the
/// fields core-field mutation is allowed to touch.
pub fn mutable_core_fields(code: CommandCode) -> impl Iterator<Item = FieldSpec> {
    data_field_layout(code)
        .iter()
        .copied()
        .filter(|spec| spec.class() == FieldClass::MutableCore)
}

/// Returns `true` if the command carries a PSM field.
pub fn has_psm(code: CommandCode) -> bool {
    data_field_layout(code)
        .iter()
        .any(|s| s.name == FieldName::Psm)
}

/// Returns the CIDP fields (SCID/DCID/ICID/controller-ID) of a command.
pub fn cidp_fields(code: CommandCode) -> impl Iterator<Item = FieldSpec> {
    data_field_layout(code)
        .iter()
        .copied()
        .filter(|s| s.name.is_cidp())
}

/// The CIDP values of one packet, stored inline.
///
/// No command layout carries more than four fixed-width CIDP fields, so the
/// values fit in a small copyable array — extracting them on the per-packet
/// hot path performs no allocation.  Dereferences to `&[u16]`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CidpValues {
    vals: [u16; 4],
    len: u8,
}

impl CidpValues {
    /// Builds a value list from a slice (used by tests and manual trigger
    /// descriptions).
    ///
    /// # Panics
    /// Panics if more than four values are given.
    pub fn from_slice(values: &[u16]) -> CidpValues {
        assert!(values.len() <= 4, "at most four CIDP values per command");
        let mut out = CidpValues::default();
        for v in values {
            out.push(*v);
        }
        out
    }

    fn push(&mut self, value: u16) {
        if usize::from(self.len) < self.vals.len() {
            self.vals[usize::from(self.len)] = value;
            self.len += 1;
        }
    }

    /// The extracted values, in layout order.
    pub fn as_slice(&self) -> &[u16] {
        &self.vals[..usize::from(self.len)]
    }
}

impl std::ops::Deref for CidpValues {
    type Target = [u16];
    fn deref(&self) -> &[u16] {
        self.as_slice()
    }
}

impl PartialEq<Vec<u16>> for CidpValues {
    fn eq(&self, other: &Vec<u16>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<'a> IntoIterator for &'a CidpValues {
    type Item = &'a u16;
    type IntoIter = std::slice::Iter<'a, u16>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Serializes like a `Vec<u16>`, so swapping the owned vector for the inline
/// list changes no serialized artifact.
impl Serialize for CidpValues {
    fn to_value(&self) -> serde::Value {
        self.as_slice().to_value()
    }
}

impl Deserialize for CidpValues {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        let vals = Vec::<u16>::from_value(v)?;
        if vals.len() > 4 {
            return Err(serde::DeError::new("at most four CIDP values"));
        }
        Ok(CidpValues::from_slice(&vals))
    }
}

/// The mutable-core values carried by one encoded command payload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreFieldValues {
    /// The PSM value, if the command carries one and enough bytes are
    /// present.
    pub psm: Option<u16>,
    /// Every CIDP value present (SCID/DCID/ICID and controller IDs widened to
    /// 16 bits).
    pub cidp: CidpValues,
}

/// Extracts the mutable-core field values (PSM and CIDP) from an encoded
/// data-field byte slice, using the command's layout.  Truncated fields are
/// simply absent from the result; this never fails.
pub fn extract_core_values(code: CommandCode, data: &[u8]) -> CoreFieldValues {
    let mut out = CoreFieldValues::default();
    for spec in data_field_layout(code) {
        if spec.class() != FieldClass::MutableCore {
            continue;
        }
        let width = spec.len.unwrap_or(2);
        if data.len() < spec.offset + width {
            continue;
        }
        let value = if width == 1 {
            u16::from(data[spec.offset])
        } else {
            u16::from_le_bytes([data[spec.offset], data[spec.offset + 1]])
        };
        if spec.name == FieldName::Psm {
            out.psm = Some(value);
        } else {
            out.cidp.push(value);
        }
    }
    out
}

/// The LE credit-based channel values carried by one encoded command payload
/// (the LE analogue of [`CoreFieldValues`]): SPSM, MTU, MPS and credits.
/// These are mutable-application fields on a classic link but the interesting
/// mutation surface of the LE credit-based flows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeFieldValues {
    /// Simplified PSM, if the command carries one.
    pub spsm: Option<u16>,
    /// MTU field, if present.
    pub mtu: Option<u16>,
    /// MPS field, if present.
    pub mps: Option<u16>,
    /// Credit count (initial credits or a credit grant), if present.
    pub credits: Option<u16>,
}

/// Extracts the LE credit-based field values (SPSM/MTU/MPS/credits) from an
/// encoded data-field byte slice, using the command's layout.  Truncated
/// fields are simply absent; this never fails and never allocates.
pub fn extract_le_values(code: CommandCode, data: &[u8]) -> LeFieldValues {
    let mut out = LeFieldValues::default();
    for spec in data_field_layout(code) {
        let slot = match spec.name {
            FieldName::Spsm => &mut out.spsm,
            FieldName::Mtu => &mut out.mtu,
            FieldName::Mps => &mut out.mps,
            FieldName::Credit => &mut out.credits,
            _ => continue,
        };
        let width = spec.len.unwrap_or(2);
        if width == 2 && data.len() >= spec.offset + 2 {
            *slot = Some(u16::from_le_bytes([
                data[spec.offset],
                data[spec.offset + 1],
            ]));
        }
    }
    out
}

/// Number of bytes present beyond the command's defined data fields — the
/// "garbage tail" appended by L2Fuzz's mutation (0 for spec-sized packets and
/// for commands whose last field is variable-length).
pub fn garbage_len(code: CommandCode, data: &[u8]) -> usize {
    let layout = data_field_layout(code);
    if layout.last().map(|s| s.len.is_none()).unwrap_or(false) {
        // Variable-length tail swallows any extra bytes.
        return 0;
    }
    data.len().saturating_sub(min_data_len(code))
}

/// Minimum number of data-field bytes a spec-conformant packet of this
/// command carries (the sum of all fixed-width fields).
pub fn min_data_len(code: CommandCode) -> usize {
    data_field_layout(code)
        .iter()
        .map(|s| s.offset + s.len.unwrap_or(0))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_cid_is_the_only_fixed_field() {
        let all = [
            FieldName::PayloadLen,
            FieldName::HeaderCid,
            FieldName::Code,
            FieldName::Id,
            FieldName::DataLen,
            FieldName::Psm,
            FieldName::Scid,
            FieldName::Dcid,
            FieldName::Icid,
            FieldName::ContId,
            FieldName::Reason,
            FieldName::Result,
            FieldName::Status,
            FieldName::Flags,
            FieldName::InfoType,
            FieldName::Interval,
            FieldName::Latency,
            FieldName::Timeout,
            FieldName::Spsm,
            FieldName::Mtu,
            FieldName::Credit,
            FieldName::Mps,
            FieldName::Options,
            FieldName::QoS,
            FieldName::Data,
        ];
        let fixed: Vec<_> = all
            .iter()
            .filter(|f| f.class() == FieldClass::Fixed)
            .collect();
        assert_eq!(fixed, vec![&FieldName::HeaderCid]);
    }

    #[test]
    fn dependent_fields_match_paper_figure6() {
        for f in [
            FieldName::PayloadLen,
            FieldName::Code,
            FieldName::Id,
            FieldName::DataLen,
        ] {
            assert_eq!(f.class(), FieldClass::Dependent, "{f} must be dependent");
        }
    }

    #[test]
    fn mutable_core_set_matches_paper_figure6() {
        let mc = [
            FieldName::Psm,
            FieldName::Scid,
            FieldName::Dcid,
            FieldName::Icid,
            FieldName::ContId,
        ];
        for f in mc {
            assert_eq!(f.class(), FieldClass::MutableCore, "{f} must be MC");
        }
        // CIDP = MC minus PSM.
        assert!(!FieldName::Psm.is_cidp());
        for f in [
            FieldName::Scid,
            FieldName::Dcid,
            FieldName::Icid,
            FieldName::ContId,
        ] {
            assert!(f.is_cidp());
        }
    }

    #[test]
    fn mutable_app_examples() {
        for f in [
            FieldName::Reason,
            FieldName::Result,
            FieldName::Status,
            FieldName::Flags,
            FieldName::InfoType,
            FieldName::Interval,
            FieldName::Latency,
            FieldName::Timeout,
            FieldName::Spsm,
            FieldName::Mtu,
            FieldName::Credit,
            FieldName::Mps,
            FieldName::Options,
            FieldName::QoS,
        ] {
            assert_eq!(f.class(), FieldClass::MutableApp, "{f} must be MA");
        }
    }

    #[test]
    fn every_command_has_a_layout_with_increasing_offsets() {
        for code in CommandCode::ALL {
            let layout = data_field_layout(code);
            let mut prev_end = 0usize;
            for (i, spec) in layout.iter().enumerate() {
                assert!(
                    spec.offset >= prev_end,
                    "{code}: field {i} overlaps previous"
                );
                if let Some(len) = spec.len {
                    prev_end = spec.offset + len;
                } else {
                    assert_eq!(i, layout.len() - 1, "{code}: variable field must be last");
                }
            }
        }
    }

    #[test]
    fn layout_lengths_match_command_encodings() {
        use crate::command::{Command, ConnectionRequest, ConnectionResponse};
        use btcore::{Cid, Psm};
        // Connection request is 4 bytes of data; its layout says so too.
        let data = Command::ConnectionRequest(ConnectionRequest {
            psm: Psm::SDP,
            scid: Cid(0x40),
        })
        .encode_data();
        assert_eq!(data.len(), min_data_len(CommandCode::ConnectionRequest));
        let data = Command::ConnectionResponse(ConnectionResponse {
            dcid: Cid(0x41),
            scid: Cid(0x40),
            result: crate::consts::ConnectionResult::Success,
            status: 0,
        })
        .encode_data();
        assert_eq!(data.len(), min_data_len(CommandCode::ConnectionResponse));
    }

    #[test]
    fn connection_request_mc_fields() {
        let mc: Vec<FieldSpec> = mutable_core_fields(CommandCode::ConnectionRequest).collect();
        assert_eq!(mc.len(), 2);
        assert_eq!(mc[0].name, FieldName::Psm);
        assert_eq!(mc[1].name, FieldName::Scid);
        assert!(has_psm(CommandCode::ConnectionRequest));
        assert!(!has_psm(CommandCode::ConfigureRequest));
    }

    #[test]
    fn config_request_cidp_is_dcid() {
        let cidp: Vec<FieldSpec> = cidp_fields(CommandCode::ConfigureRequest).collect();
        assert_eq!(cidp.len(), 1);
        assert_eq!(cidp[0].name, FieldName::Dcid);
        assert_eq!(cidp[0].offset, 0);
        assert_eq!(cidp[0].len, Some(2));
    }

    #[test]
    fn commands_with_psm_are_exactly_the_connection_like_ones() {
        let with_psm: Vec<CommandCode> = CommandCode::ALL
            .iter()
            .copied()
            .filter(|c| has_psm(*c))
            .collect();
        assert_eq!(
            with_psm,
            vec![
                CommandCode::ConnectionRequest,
                CommandCode::CreateChannelRequest
            ]
        );
    }

    #[test]
    fn echo_request_has_no_core_fields() {
        assert!(mutable_core_fields(CommandCode::EchoRequest)
            .next()
            .is_none());
        assert!(cidp_fields(CommandCode::EchoRequest).next().is_none());
    }

    #[test]
    fn field_class_display() {
        assert_eq!(FieldClass::Fixed.to_string(), "F");
        assert_eq!(FieldClass::Dependent.to_string(), "D");
        assert_eq!(FieldClass::MutableCore.to_string(), "MC");
        assert_eq!(FieldClass::MutableApp.to_string(), "MA");
    }

    #[test]
    fn extract_core_values_from_connection_request() {
        // PSM = 0x0101 (abnormal), SCID = 0x0040.
        let data = [0x01, 0x01, 0x40, 0x00];
        let values = extract_core_values(CommandCode::ConnectionRequest, &data);
        assert_eq!(values.psm, Some(0x0101));
        assert_eq!(values.cidp, vec![0x0040]);
    }

    #[test]
    fn extract_core_values_tolerates_truncation() {
        let values = extract_core_values(CommandCode::ConnectionRequest, &[0x01]);
        assert_eq!(values.psm, None);
        assert!(values.cidp.is_empty());
    }

    #[test]
    fn extract_core_values_reads_controller_id_as_u8() {
        // Create Channel Request: PSM, SCID, controller id.
        let data = [0x01, 0x00, 0x44, 0x00, 0x02];
        let values = extract_core_values(CommandCode::CreateChannelRequest, &data);
        assert_eq!(values.psm, Some(0x0001));
        assert_eq!(values.cidp, vec![0x0044, 0x0002]);
    }

    #[test]
    fn extract_le_values_from_le_credit_based_request() {
        // SPSM 0x0080, SCID 0x0040, MTU 512, MPS 64, credits 10.
        let data = [0x80, 0x00, 0x40, 0x00, 0x00, 0x02, 0x40, 0x00, 0x0A, 0x00];
        let v = extract_le_values(CommandCode::LeCreditBasedConnectionRequest, &data);
        assert_eq!(v.spsm, Some(0x0080));
        assert_eq!(v.mtu, Some(512));
        assert_eq!(v.mps, Some(64));
        assert_eq!(v.credits, Some(10));
        // Commands without LE fields yield an empty extraction.
        let v = extract_le_values(CommandCode::ConnectionRequest, &[0x01, 0x00, 0x40, 0x00]);
        assert_eq!(v, LeFieldValues::default());
        // Truncation drops the absent fields without failing.
        let v = extract_le_values(CommandCode::FlowControlCreditInd, &[0x40, 0x00, 0x05]);
        assert_eq!(v.credits, None);
    }

    #[test]
    fn garbage_len_counts_bytes_past_fixed_layout() {
        assert_eq!(garbage_len(CommandCode::ConnectionRequest, &[0; 4]), 0);
        assert_eq!(garbage_len(CommandCode::ConnectionRequest, &[0; 9]), 5);
        // Config request ends in a variable options field: no garbage concept.
        assert_eq!(garbage_len(CommandCode::EchoRequest, &[0; 40]), 0);
        assert_eq!(garbage_len(CommandCode::ConnectionResponse, &[0; 12]), 4);
    }

    #[test]
    fn min_data_len_examples() {
        assert_eq!(min_data_len(CommandCode::ConnectionRequest), 4);
        assert_eq!(min_data_len(CommandCode::ConnectionResponse), 8);
        assert_eq!(min_data_len(CommandCode::ConfigureRequest), 4);
        assert_eq!(min_data_len(CommandCode::CreateChannelRequest), 5);
        assert_eq!(
            min_data_len(CommandCode::MoveChannelConfirmationResponse),
            2
        );
        assert_eq!(min_data_len(CommandCode::EchoRequest), 0);
    }
}
