//! Criterion bench: L2CAP frame encode/decode throughput.
use btcore::{Cid, Identifier, Psm};
use criterion::{criterion_group, criterion_main, Criterion};
use l2cap::command::{Command, ConnectionRequest};
use l2cap::packet::{parse_signaling, signaling_frame, L2capFrame};

fn bench_codec(c: &mut Criterion) {
    let frame = signaling_frame(
        Identifier(1),
        Command::ConnectionRequest(ConnectionRequest {
            psm: Psm::SDP,
            scid: Cid(0x0040),
        }),
    );
    let bytes = frame.to_bytes();
    c.bench_function("encode_connection_request_frame", |b| {
        b.iter(|| std::hint::black_box(frame.to_bytes()))
    });
    c.bench_function("decode_connection_request_frame", |b| {
        b.iter(|| {
            let f = L2capFrame::parse(std::hint::black_box(&bytes)).unwrap();
            std::hint::black_box(parse_signaling(&f).unwrap().command())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(600)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_codec
}
criterion_main!(benches);
