//! Criterion bench: acceptor state-machine transition throughput.
use criterion::{criterion_group, criterion_main, Criterion};
use l2cap::code::CommandCode;
use l2cap::state::StateMachine;

fn bench_state_machine(c: &mut Criterion) {
    c.bench_function("full_channel_lifecycle", |b| {
        b.iter(|| {
            let mut sm = StateMachine::new();
            sm.on_command(CommandCode::ConnectionRequest, true);
            sm.on_command(CommandCode::ConfigureRequest, true);
            sm.on_command(CommandCode::ConfigureResponse, true);
            sm.on_command(CommandCode::MoveChannelRequest, true);
            sm.on_command(CommandCode::MoveChannelConfirmationRequest, true);
            sm.on_command(CommandCode::DisconnectionRequest, true);
            std::hint::black_box(sm.visited().len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(600)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_state_machine
}
criterion_main!(benches);
