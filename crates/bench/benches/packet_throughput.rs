//! Criterion bench: end-to-end packets-per-second of each fuzzer against the
//! simulated Pixel 3 (the §IV-C pps comparison).
//!
//! Deliberately measures the *serial* comparison so the tracked number is
//! per-packet pipeline cost, not thread-level parallelism.
use bench::run_comparison_serial;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_throughput(c: &mut Criterion) {
    c.bench_function("comparison_round_500_packets_all_fuzzers", |b| {
        b.iter(|| std::hint::black_box(run_comparison_serial(500, 0xBEEF)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_throughput
}
criterion_main!(benches);
