//! Criterion bench: ablation of L2Fuzz design choices (state guiding,
//! core-field-only mutation, garbage tail) measured as a short campaign.
use bench::TestBench;
use btstack::profiles::ProfileId;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use l2fuzz::config::FuzzConfig;
use l2fuzz::fuzzer::Fuzzer;
use l2fuzz::session::L2FuzzTool;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_500_packets");
    let variants: Vec<(&str, FuzzConfig)> = vec![
        ("full", FuzzConfig::comparison(usize::MAX, 1)),
        (
            "no_state_guiding",
            FuzzConfig::comparison(usize::MAX, 2).without_state_guiding(),
        ),
        (
            "all_field_mutation",
            FuzzConfig::comparison(usize::MAX, 3).without_core_field_restriction(),
        ),
        (
            "no_garbage",
            FuzzConfig::comparison(usize::MAX, 4).without_garbage(),
        ),
    ];
    for (name, config) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| {
                let mut bench = TestBench::new(ProfileId::D2, 0xA11A, true);
                let meta = {
                    use hci::device::VirtualDevice;
                    bench.device.lock().meta()
                };
                let mut tool = L2FuzzTool::new(config.clone(), bench.clock.clone(), meta);
                tool.fuzz(&mut bench.link, 500);
                std::hint::black_box(bench.trace().len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_ablation
}
criterion_main!(benches);
