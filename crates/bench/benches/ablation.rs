//! Criterion bench: ablation of L2Fuzz design choices (state guiding,
//! core-field-only mutation, garbage tail) measured as a short campaign.
use btstack::profiles::{DeviceProfile, ProfileId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use l2fuzz::campaign::{Campaign, OraclePolicy};
use l2fuzz::config::FuzzConfig;
use l2fuzz::fuzzer::TxBudget;
use l2fuzz::session::L2FuzzTool;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_500_packets");
    let variants: Vec<(&str, FuzzConfig)> = vec![
        ("full", FuzzConfig::budget_driven()),
        (
            "no_state_guiding",
            FuzzConfig::budget_driven().without_state_guiding(),
        ),
        (
            "all_field_mutation",
            FuzzConfig::budget_driven().without_core_field_restriction(),
        ),
        ("no_garbage", FuzzConfig::budget_driven().without_garbage()),
    ];
    for (name, config) in variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), &config, |b, config| {
            b.iter(|| {
                let config = config.clone();
                let outcome = Campaign::builder()
                    .target(DeviceProfile::table5(ProfileId::D2))
                    .fuzzer(move || Box::new(L2FuzzTool::new(config.clone())))
                    .budget(TxBudget::packets(500))
                    .oracle(OraclePolicy::None)
                    .auto_restart(true)
                    .seed(0xA11A)
                    .run()
                    .expect("ablation campaign runs")
                    .into_single();
                std::hint::black_box(outcome.trace.len())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_ablation
}
criterion_main!(benches);
