//! Criterion bench: core-field mutation throughput (Algorithm 1).
use btcore::{Cid, FuzzRng, Identifier, Psm};
use criterion::{criterion_group, criterion_main, Criterion};
use l2cap::jobs::Job;
use l2fuzz::guide::ChannelContext;
use l2fuzz::mutator::CoreFieldMutator;

fn bench_mutation(c: &mut Criterion) {
    c.bench_function("mutate_configuration_job_batch", |b| {
        let mut mutator = CoreFieldMutator::new(FuzzRng::seed_from(1));
        let ctx = ChannelContext {
            scid: Cid(0x40),
            dcid: Cid(0x41),
            psm: Psm::SDP,
        };
        let commands = Job::Configuration.generous_valid_commands();
        b.iter(|| std::hint::black_box(mutator.generate(&commands, 8, &ctx, Identifier(1))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(600)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_mutation
}
criterion_main!(benches);
