//! Shared experiment harness for the benchmark binaries and Criterion
//! benches.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! binary in `src/bin/`; the functions here do the actual work so the
//! binaries stay thin and the Criterion benches can reuse the same code
//! paths.  All of them drive fuzzing through the unified
//! [`l2fuzz::campaign::Campaign`] API — no experiment wires an `AirMedium`
//! by hand anymore.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use btstack::profiles::{DeviceProfile, ProfileId};
use l2fuzz::campaign::{Campaign, CampaignOutcome, OraclePolicy, ShardedExecutor};
use l2fuzz::config::FuzzConfig;
use l2fuzz::fuzzer::{Fuzzer, TxBudget};
use l2fuzz::report::FuzzReport;
use l2fuzz::session::L2FuzzTool;
use sniffer::{MetricsSummary, StateCoverage, Trace, TraceAnalysis};

use baselines::{BFuzzFuzzer, BssFuzzer, DefensicsFuzzer};

/// Runs the full L2Fuzz vulnerability-detection experiment against a device
/// (Table VI methodology): campaigns repeat until a vulnerability is found or
/// `max_campaigns` is reached.
pub fn run_table6_campaign(id: ProfileId, seed: u64, max_campaigns: usize) -> FuzzReport {
    Campaign::builder()
        .target(DeviceProfile::table5(id))
        .fuzzer(move || Box::new(L2FuzzTool::detection(FuzzConfig::default(), max_campaigns)))
        .oracle(OraclePolicy::OutOfBand)
        .seed(seed)
        .run()
        .expect("table 6 campaign runs")
        .into_single()
        .report
}

/// Runs the Table VI detection experiment against every Table V device at
/// once, sharded across worker threads.  Per-target outcomes come back in
/// Table V order and are bit-for-bit identical to a serial run of the same
/// seed; the outcome's `elapsed` is the campaign wall-clock (longest
/// per-device time).
pub fn table6_survey(seed: u64, max_campaigns: usize, threads: usize) -> CampaignOutcome {
    Campaign::builder()
        .targets(DeviceProfile::all())
        .fuzzer(move || Box::new(L2FuzzTool::detection(FuzzConfig::default(), max_campaigns)))
        .oracle(OraclePolicy::OutOfBand)
        .seed(seed)
        .executor(ShardedExecutor::new(threads))
        .run()
        .expect("table 6 survey runs")
}

/// Result of running one fuzzer for the comparison experiments.
pub struct ComparisonRun {
    /// Tool name.
    pub name: &'static str,
    /// Captured trace.
    pub trace: Trace,
    /// Metrics summary (Table VII row).
    pub metrics: MetricsSummary,
    /// State coverage (Fig. 10/11 row).
    pub coverage: StateCoverage,
}

/// The four tools of the §IV-C/D comparison, in the paper's order.
pub const COMPARISON_TOOLS: [&str; 4] = ["L2Fuzz", "Defensics", "BFuzz", "BSS"];

/// Spawns a fresh instance of a comparison tool by name.
///
/// # Panics
/// Panics on a name outside [`COMPARISON_TOOLS`].
pub fn spawn_tool(name: &str) -> Box<dyn Fuzzer> {
    match name {
        "L2Fuzz" => Box::new(L2FuzzTool::comparison()),
        "Defensics" => Box::new(DefensicsFuzzer::new()),
        "BFuzz" => Box::new(BFuzzFuzzer::new()),
        "BSS" => Box::new(BssFuzzer::new()),
        other => panic!("unknown comparison tool {other:?}"),
    }
}

fn run_comparison_tool(
    budget: usize,
    seed: u64,
    index: usize,
    name: &'static str,
) -> ComparisonRun {
    let outcome = Campaign::builder()
        .target(DeviceProfile::table5(ProfileId::D2))
        .fuzzer(move || spawn_tool(name))
        .budget(TxBudget::packets(budget as u64))
        .oracle(OraclePolicy::None)
        .auto_restart(true)
        .seed(seed.wrapping_add(index as u64))
        .run()
        .expect("comparison campaign runs")
        .into_single();
    let analysis = TraceAnalysis::from_trace(&outcome.trace);
    ComparisonRun {
        name,
        metrics: analysis.metrics,
        coverage: analysis.coverage,
        trace: outcome.trace,
    }
}

/// Serial variant of [`run_comparison`]: the four campaigns run back to back
/// on the calling thread.  This is what the `packet_throughput` Criterion
/// bench and the `perf_report` baseline measure, so the tracked numbers
/// reflect per-packet pipeline cost alone — never thread-level parallelism.
pub fn run_comparison_serial(budget: usize, seed: u64) -> Vec<ComparisonRun> {
    COMPARISON_TOOLS
        .into_iter()
        .enumerate()
        .map(|(i, name)| run_comparison_tool(budget, seed, i, name))
        .collect()
}

/// Runs all four fuzzers against a fresh Pixel 3 (D2) bench with the given
/// per-fuzzer packet budget, reproducing the §IV-C/D comparison.  Each tool
/// gets its own isolated campaign environment (auto-restarting target, no
/// oracle — metrics come from the sniffed trace, as in the paper).
///
/// The four campaigns are fully isolated — own clock, own air medium, own
/// RNG streams — so on a multi-core host they run concurrently, one worker
/// thread per tool, and the per-tool traces and metrics are bit-for-bit what
/// [`run_comparison_serial`] produces.  Results come back in
/// [`COMPARISON_TOOLS`] order.
pub fn run_comparison(budget: usize, seed: u64) -> Vec<ComparisonRun> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if workers <= 1 {
        // Single-core host: spawning threads only adds overhead.
        return run_comparison_serial(budget, seed);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = COMPARISON_TOOLS
            .into_iter()
            .enumerate()
            .map(|(i, name)| scope.spawn(move || run_comparison_tool(budget, seed, i, name)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("comparison worker panicked"))
            .collect()
    })
}

/// Packet budget used by the experiment binaries.  The paper uses 100,000
/// packets per fuzzer; the default here is smaller so the binaries finish in
/// seconds, and can be overridden with the `L2FUZZ_BUDGET` environment
/// variable.
pub fn default_budget() -> usize {
    std::env::var("L2FUZZ_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_preserves_the_papers_ordering() {
        let runs = run_comparison(2_500, 42);
        assert_eq!(runs.len(), 4);
        let me: Vec<f64> = runs.iter().map(|r| r.metrics.mutation_efficiency).collect();
        // L2Fuzz dominates everything else.
        assert!(
            me[0] > 3.0 * me[1],
            "L2Fuzz {:.3} vs Defensics {:.3}",
            me[0],
            me[1]
        );
        assert!(
            me[0] > 3.0 * me[2],
            "L2Fuzz {:.3} vs BFuzz {:.3}",
            me[0],
            me[2]
        );
        assert!(
            me[3] <= f64::EPSILON,
            "BSS must have zero mutation efficiency"
        );
        // BFuzz has the worst rejection ratio.
        let pr: Vec<f64> = runs.iter().map(|r| r.metrics.pr_ratio).collect();
        assert!(pr[2] > pr[0] && pr[2] > pr[1] && pr[2] > pr[3]);
        // Coverage ordering: L2Fuzz > Defensics >= BFuzz > BSS.
        let cov: Vec<usize> = runs.iter().map(|r| r.coverage.count()).collect();
        assert!(
            cov[0] > cov[1] && cov[1] >= cov[2] && cov[2] > cov[3],
            "coverage {cov:?}"
        );
        assert_eq!(cov[0], 13);
    }

    #[test]
    fn table6_campaign_finds_the_pixel3_bug() {
        let report = run_table6_campaign(ProfileId::D2, 7, 5);
        assert!(report.vulnerable());
    }
}
