//! Shared experiment harness for the benchmark binaries and Criterion
//! benches.
//!
//! Every table and figure of the paper's evaluation has a corresponding
//! binary in `src/bin/`; the functions here do the actual work so the
//! binaries stay thin and the Criterion benches can reuse the same code
//! paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use btcore::{FuzzRng, SimClock};
use btstack::device::{share, DeviceOracle, SharedSimulatedDevice};
use btstack::profiles::{DeviceProfile, ProfileId};
use hci::air::{AclLink, AirMedium};
use hci::link::{new_tap, LinkConfig, SharedTap};
use l2fuzz::config::FuzzConfig;
use l2fuzz::fuzzer::Fuzzer;
use l2fuzz::report::FuzzReport;
use l2fuzz::session::{L2FuzzSession, L2FuzzTool};
use sniffer::{MetricsSummary, StateCoverage, Trace};

use baselines::{BFuzzFuzzer, BssFuzzer, DefensicsFuzzer};

/// A fully wired test bench: one simulated device on a virtual air medium,
/// one ACL link with a packet tap attached.
pub struct TestBench {
    /// The shared handle to the simulated device (for oracle access).
    pub device: SharedSimulatedDevice,
    /// The established ACL link.
    pub link: AclLink,
    /// The packet tap capturing the traffic.
    pub tap: SharedTap,
    /// The shared virtual clock.
    pub clock: SimClock,
    /// The device profile that was instantiated.
    pub profile: DeviceProfile,
}

impl TestBench {
    /// Builds a bench around the given Table V device.
    ///
    /// `auto_restart` keeps the target alive after a vulnerability fires
    /// (needed for the long comparison runs).
    pub fn new(id: ProfileId, seed: u64, auto_restart: bool) -> TestBench {
        let clock = SimClock::new();
        let mut air = AirMedium::new(clock.clone());
        let profile = DeviceProfile::table5(id);
        let mut device = profile.build(clock.clone(), FuzzRng::seed_from(seed));
        device.set_auto_restart(auto_restart);
        let (device, adapter) = share(device);
        air.register(adapter);
        let mut link = air
            .connect(
                profile.addr,
                LinkConfig::default(),
                FuzzRng::seed_from(seed ^ 0xA5A5),
            )
            .expect("profile device must be connectable");
        let tap = new_tap();
        link.attach_tap(tap.clone());
        TestBench {
            device,
            link,
            tap,
            clock,
            profile,
        }
    }

    /// The trace captured so far.
    pub fn trace(&self) -> Trace {
        Trace::from_tap(&self.tap)
    }
}

/// Runs the full L2Fuzz vulnerability-detection experiment against a device
/// (Table VI methodology): campaigns repeat until a vulnerability is found or
/// `max_campaigns` is reached.
pub fn run_table6_campaign(id: ProfileId, seed: u64, max_campaigns: usize) -> FuzzReport {
    let mut bench = TestBench::new(id, seed, false);
    let meta = {
        use hci::device::VirtualDevice;
        bench.device.lock().meta()
    };
    let mut last = None;
    for round in 0..max_campaigns {
        let mut oracle = DeviceOracle::new(bench.device.clone());
        let config = FuzzConfig {
            seed: seed.wrapping_add(round as u64),
            ..FuzzConfig::default()
        };
        let mut session = L2FuzzSession::new(config, bench.clock.clone());
        let mut report = session.run(&mut bench.link, meta.clone(), Some(&mut oracle));
        // Report elapsed time relative to the whole experiment, not just the
        // last campaign.
        report.elapsed_secs = bench.clock.now().as_secs();
        if let Some(f) = report.findings.first_mut() {
            f.elapsed_secs = bench.clock.now().as_secs();
        }
        let vulnerable = report.vulnerable();
        last = Some(report);
        if vulnerable {
            break;
        }
    }
    last.expect("at least one campaign ran")
}

/// Result of running one fuzzer for the comparison experiments.
pub struct ComparisonRun {
    /// Tool name.
    pub name: &'static str,
    /// Captured trace.
    pub trace: Trace,
    /// Metrics summary (Table VII row).
    pub metrics: MetricsSummary,
    /// State coverage (Fig. 10/11 row).
    pub coverage: StateCoverage,
}

/// Runs all four fuzzers against a fresh Pixel 3 (D2) bench with the given
/// per-fuzzer packet budget, reproducing the §IV-C/D comparison.
pub fn run_comparison(budget: usize, seed: u64) -> Vec<ComparisonRun> {
    let mut runs = Vec::new();
    for (i, name) in ["L2Fuzz", "Defensics", "BFuzz", "BSS"].iter().enumerate() {
        let mut bench = TestBench::new(ProfileId::D2, seed.wrapping_add(i as u64), true);
        let meta = {
            use hci::device::VirtualDevice;
            bench.device.lock().meta()
        };
        let mut fuzzer: Box<dyn Fuzzer> = match i {
            0 => Box::new(L2FuzzTool::new(
                FuzzConfig::comparison(usize::MAX, seed),
                bench.clock.clone(),
                meta,
            )),
            1 => Box::new(DefensicsFuzzer::new(bench.clock.clone())),
            2 => Box::new(BFuzzFuzzer::new(
                bench.clock.clone(),
                FuzzRng::seed_from(seed ^ 0xBF),
            )),
            _ => Box::new(BssFuzzer::new(
                bench.clock.clone(),
                FuzzRng::seed_from(seed ^ 0xB5),
            )),
        };
        fuzzer.fuzz(&mut bench.link, budget);
        let trace = bench.trace();
        runs.push(ComparisonRun {
            name,
            metrics: MetricsSummary::from_trace(&trace),
            coverage: StateCoverage::from_trace(&trace),
            trace,
        });
    }
    runs
}

/// Packet budget used by the experiment binaries.  The paper uses 100,000
/// packets per fuzzer; the default here is smaller so the binaries finish in
/// seconds, and can be overridden with the `L2FUZZ_BUDGET` environment
/// variable.
pub fn default_budget() -> usize {
    std::env::var("L2FUZZ_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_preserves_the_papers_ordering() {
        let runs = run_comparison(2_500, 42);
        assert_eq!(runs.len(), 4);
        let me: Vec<f64> = runs.iter().map(|r| r.metrics.mutation_efficiency).collect();
        // L2Fuzz dominates everything else.
        assert!(
            me[0] > 3.0 * me[1],
            "L2Fuzz {:.3} vs Defensics {:.3}",
            me[0],
            me[1]
        );
        assert!(
            me[0] > 3.0 * me[2],
            "L2Fuzz {:.3} vs BFuzz {:.3}",
            me[0],
            me[2]
        );
        assert!(
            me[3] <= f64::EPSILON,
            "BSS must have zero mutation efficiency"
        );
        // BFuzz has the worst rejection ratio.
        let pr: Vec<f64> = runs.iter().map(|r| r.metrics.pr_ratio).collect();
        assert!(pr[2] > pr[0] && pr[2] > pr[1] && pr[2] > pr[3]);
        // Coverage ordering: L2Fuzz > Defensics >= BFuzz > BSS.
        let cov: Vec<usize> = runs.iter().map(|r| r.coverage.count()).collect();
        assert!(
            cov[0] > cov[1] && cov[1] >= cov[2] && cov[2] > cov[3],
            "coverage {cov:?}"
        );
        assert_eq!(cov[0], 13);
    }

    #[test]
    fn table6_campaign_finds_the_pixel3_bug() {
        let report = run_table6_campaign(ProfileId::D2, 7, 5);
        assert!(report.vulnerable());
    }
}
