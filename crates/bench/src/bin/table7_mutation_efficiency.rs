//! Regenerates Table VII: MP ratio, PR ratio and mutation efficiency of the
//! four fuzzers against D2 (Pixel 3).
use bench::{default_budget, run_comparison};

fn main() {
    let budget = default_budget();
    println!(
        "Table VII — mutation efficiency over {budget} packets per fuzzer (target: D2 / Pixel 3)"
    );
    println!(
        "{:<12}{:>10}{:>10}{:>10}{:>12}",
        "Fuzzer", "MP", "PR", "ME", "pps"
    );
    for run in run_comparison(budget, 0x7a7a) {
        let m = &run.metrics;
        println!(
            "{:<12}{:>9.2}%{:>9.2}%{:>9.2}%{:>12.2}",
            run.name,
            m.mp_ratio * 100.0,
            m.pr_ratio * 100.0,
            m.mutation_efficiency * 100.0,
            m.packets_per_second
        );
    }
}
