//! Quick-mode performance report: runs the workload of each of the five
//! Criterion benches — plus an LE-pipeline campaign — a fixed number of
//! times, records the median wall-clock per iteration plus derived
//! packets/second and measured heap allocations per packet, and writes the
//! result as JSON.
//!
//! The committed `BENCH_PR4.json` at the repository root is the tracked
//! baseline of this report (`BENCH_PR3.json` remains as the zero-copy
//! pipeline's reference point); CI re-runs it on every change (non-gating)
//! and uploads the fresh report as an artifact so perf regressions are
//! visible in review.
//!
//! ```text
//! cargo run --release -p bench --bin perf_report [output.json]
//! ```

use std::time::Instant;

use alloc_counter::{allocations, CountingAllocator};
use bench::run_comparison_serial;
use btcore::{Cid, FuzzRng, Identifier, Psm};
use btstack::profiles::{DeviceProfile, ProfileId};
use l2cap::code::CommandCode;
use l2cap::command::{Command, ConnectionRequest};
use l2cap::packet::{parse_signaling, signaling_frame, L2capFrame};
use l2cap::state::StateMachine;
use l2fuzz::campaign::{Campaign, OraclePolicy};
use l2fuzz::config::FuzzConfig;
use l2fuzz::fuzzer::TxBudget;
use l2fuzz::guide::ChannelContext;
use l2fuzz::mutator::CoreFieldMutator;
use l2fuzz::session::L2FuzzTool;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// One measured bench: median ns/iteration over `runs` runs, packets/s
/// derived from the packets one iteration pushes through the pipeline, and
/// heap allocations per packet.
struct Measured {
    name: &'static str,
    median_ns: u64,
    packets_per_iter: u64,
    allocs_per_packet: f64,
}

impl Measured {
    fn packets_per_sec(&self) -> f64 {
        if self.median_ns == 0 {
            0.0
        } else {
            self.packets_per_iter as f64 / (self.median_ns as f64 / 1e9)
        }
    }
}

fn measure(
    name: &'static str,
    runs: usize,
    packets_per_iter: u64,
    mut iter: impl FnMut(),
) -> Measured {
    // Warm-up: populate arenas, caches and the allocator.
    iter();
    let mut samples_ns: Vec<u64> = Vec::with_capacity(runs);
    let allocs_before = allocations();
    for _ in 0..runs {
        let t = Instant::now();
        iter();
        samples_ns.push(t.elapsed().as_nanos() as u64);
    }
    let total_allocs = allocations() - allocs_before;
    samples_ns.sort_unstable();
    Measured {
        name,
        median_ns: samples_ns[samples_ns.len() / 2],
        packets_per_iter,
        allocs_per_packet: total_allocs as f64 / (runs as u64 * packets_per_iter.max(1)) as f64,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR4.json".to_owned());
    let mut results: Vec<Measured> = Vec::new();

    // 1. packet_codec — encode + decode of a Connection Request frame
    //    (1000 codec round-trips per iteration).
    {
        let frame = signaling_frame(
            Identifier(1),
            Command::ConnectionRequest(ConnectionRequest {
                psm: Psm::SDP,
                scid: Cid(0x0040),
            }),
        );
        let bytes = frame.to_bytes();
        results.push(measure("packet_codec", 30, 1000, || {
            for _ in 0..1000 {
                let f = L2capFrame::parse(std::hint::black_box(&bytes)).unwrap();
                std::hint::black_box(parse_signaling(&f).unwrap().command());
                std::hint::black_box(frame.to_bytes());
            }
        }));
    }

    // 2. mutation — Algorithm 1 over the configuration job, 8 packets per
    //    command per iteration (the Criterion bench's batch).
    {
        let mut mutator = CoreFieldMutator::new(FuzzRng::seed_from(1));
        let ctx = ChannelContext {
            scid: Cid(0x40),
            dcid: Cid(0x41),
            psm: Psm::SDP,
        };
        let commands = l2cap::jobs::Job::Configuration.generous_valid_commands();
        let batch = (commands.len() * 8) as u64;
        results.push(measure("mutation", 200, batch, || {
            std::hint::black_box(mutator.generate(&commands, 8, &ctx, Identifier(1)));
        }));
    }

    // 3. state_machine — one full channel lifecycle per iteration.
    {
        results.push(measure("state_machine", 200, 6, || {
            let mut sm = StateMachine::new();
            sm.on_command(CommandCode::ConnectionRequest, true);
            sm.on_command(CommandCode::ConfigureRequest, true);
            sm.on_command(CommandCode::ConfigureResponse, true);
            sm.on_command(CommandCode::MoveChannelRequest, true);
            sm.on_command(CommandCode::MoveChannelConfirmationRequest, true);
            sm.on_command(CommandCode::DisconnectionRequest, true);
            std::hint::black_box(sm.visited().len());
        }));
    }

    // 4. packet_throughput — the §IV-C comparison round: 500 packets
    //    through each of the four tools (2000 injected packets total),
    //    serial so the number reflects pipeline cost, not parallelism.
    {
        results.push(measure("packet_throughput", 15, 2000, || {
            std::hint::black_box(run_comparison_serial(500, 0xBEEF));
        }));
    }

    // 5. ablation — one full-configuration 500-packet campaign.
    {
        results.push(measure("ablation", 15, 500, || {
            let outcome = Campaign::builder()
                .target(DeviceProfile::table5(ProfileId::D2))
                .fuzzer(|| Box::new(L2FuzzTool::new(FuzzConfig::budget_driven())))
                .budget(TxBudget::packets(500))
                .oracle(OraclePolicy::None)
                .auto_restart(true)
                .seed(0xA11A)
                .run()
                .expect("ablation campaign runs")
                .into_single();
            std::hint::black_box(outcome.trace.len());
        }));
    }

    // 6. le_pipeline — a budget-driven campaign against the LE-only
    //    wearable: the credit-based connect/reconfigure flows, LE mutation
    //    and the LE liveness probe, 500 packets per iteration.
    {
        results.push(measure("le_pipeline", 15, 500, || {
            let outcome = Campaign::builder()
                .target(DeviceProfile::table5(ProfileId::D9))
                .fuzzer(|| Box::new(L2FuzzTool::new(FuzzConfig::budget_driven())))
                .budget(TxBudget::packets(500))
                .oracle(OraclePolicy::None)
                .auto_restart(true)
                .seed(0x1EA0)
                .run()
                .expect("LE campaign runs")
                .into_single();
            std::hint::black_box(outcome.trace.len());
        }));
    }

    let mut obj: Vec<(String, serde::Value)> = Vec::new();
    for m in &results {
        obj.push((
            m.name.to_owned(),
            serde::Value::Object(vec![
                ("median_ns".to_owned(), serde::Value::U64(m.median_ns)),
                (
                    "packets_per_iter".to_owned(),
                    serde::Value::U64(m.packets_per_iter),
                ),
                (
                    "packets_per_sec".to_owned(),
                    serde::Value::F64((m.packets_per_sec() * 10.0).round() / 10.0),
                ),
                (
                    "allocs_per_packet".to_owned(),
                    serde::Value::F64((m.allocs_per_packet * 100.0).round() / 100.0),
                ),
            ]),
        ));
        println!(
            "{:<20} median {:>12} ns   {:>12.1} packets/s   {:>6.2} allocs/packet",
            m.name,
            m.median_ns,
            m.packets_per_sec(),
            m.allocs_per_packet
        );
    }
    let json = serde_json::to_string_pretty(&serde::Value::Object(obj)).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("report written");
    println!("wrote {out_path}");
}
