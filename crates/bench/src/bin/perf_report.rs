//! Quick-mode performance report: runs the workload of each of the five
//! Criterion benches — plus the LE-pipeline, multi-initiator, seed-sweep
//! and initiator-scaling-curve campaigns — a fixed number of times, records
//! the median wall-clock per iteration plus derived packets/second and
//! measured heap allocations per packet, and writes the result as JSON.
//!
//! The committed `BENCH_PR10.json` at the repository root is the tracked
//! baseline of this report (`BENCH_PR3.json`…`BENCH_PR8.json` remain as
//! earlier reference points); CI re-runs it on every change (non-gating),
//! uploads the fresh report as an artifact and — via repeatable
//! `--baseline` flags — compares it against each committed baseline,
//! flagging `packet_throughput` regressions beyond 10 % of the *best*
//! baseline in the job summary.
//!
//! Since PR 10 the report also carries a pinned detection ablation: median
//! packets-to-detection for the seeded extended-profile vulnerabilities
//! (D9/D10/D11), dictionary engine vs the coverage-guided feedback engine,
//! across eight sweep seeds.
//!
//! ```text
//! cargo run --release -p bench --bin perf_report [output.json] \
//!     [--baseline OLD.json]...
//! ```

use std::time::Instant;

use alloc_counter::{allocations, CountingAllocator};
use bench::run_comparison_serial;
use btcore::{Cid, FuzzRng, Identifier, Psm};
use btstack::profiles::{DeviceProfile, ProfileId};
use feedback::{FeedbackCampaignExt, FeedbackConfig};
use l2cap::code::CommandCode;
use l2cap::command::{Command, ConnectionRequest};
use l2cap::packet::{parse_signaling, signaling_frame, L2capFrame};
use l2cap::state::StateMachine;
use l2fuzz::campaign::{Campaign, OraclePolicy, SeedSweepExecutor};
use l2fuzz::config::FuzzConfig;
use l2fuzz::fuzzer::TxBudget;
use l2fuzz::guide::ChannelContext;
use l2fuzz::mutator::CoreFieldMutator;
use l2fuzz::session::L2FuzzTool;
use l2fuzz::FaultPlan;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// One measured bench: median ns/iteration over `runs` runs, packets/s
/// derived from the packets one iteration pushes through the pipeline, and
/// heap allocations per packet.
struct Measured {
    name: &'static str,
    median_ns: u64,
    packets_per_iter: u64,
    allocs_per_packet: f64,
}

impl Measured {
    fn packets_per_sec(&self) -> f64 {
        if self.median_ns == 0 {
            0.0
        } else {
            self.packets_per_iter as f64 / (self.median_ns as f64 / 1e9)
        }
    }
}

fn measure(
    name: &'static str,
    runs: usize,
    packets_per_iter: u64,
    mut iter: impl FnMut(),
) -> Measured {
    // Warm-up: populate arenas, caches and the allocator.
    iter();
    let mut samples_ns: Vec<u64> = Vec::with_capacity(runs);
    let allocs_before = allocations();
    for _ in 0..runs {
        let t = Instant::now();
        iter();
        samples_ns.push(t.elapsed().as_nanos() as u64);
    }
    let total_allocs = allocations() - allocs_before;
    samples_ns.sort_unstable();
    Measured {
        name,
        median_ns: samples_ns[samples_ns.len() / 2],
        packets_per_iter,
        allocs_per_packet: total_allocs as f64 / (runs as u64 * packets_per_iter.max(1)) as f64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_PR10.json".to_owned();
    let mut baseline_paths: Vec<String> = Vec::new();
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--baseline" {
            baseline_paths.extend(iter.next());
        } else {
            out_path = arg;
        }
    }
    let mut results: Vec<Measured> = Vec::new();

    // 1. packet_codec — encode + decode of a Connection Request frame
    //    (1000 codec round-trips per iteration).
    {
        let frame = signaling_frame(
            Identifier(1),
            Command::ConnectionRequest(ConnectionRequest {
                psm: Psm::SDP,
                scid: Cid(0x0040),
            }),
        );
        let bytes = frame.to_bytes();
        results.push(measure("packet_codec", 30, 1000, || {
            for _ in 0..1000 {
                let f = L2capFrame::parse(std::hint::black_box(&bytes)).unwrap();
                std::hint::black_box(parse_signaling(&f).unwrap().command());
                std::hint::black_box(frame.to_bytes());
            }
        }));
    }

    // 2. mutation — Algorithm 1 over the configuration job, 8 packets per
    //    command per iteration (the Criterion bench's batch).
    {
        let mut mutator = CoreFieldMutator::new(FuzzRng::seed_from(1));
        let ctx = ChannelContext {
            scid: Cid(0x40),
            dcid: Cid(0x41),
            psm: Psm::SDP,
        };
        let commands = l2cap::jobs::Job::Configuration.generous_valid_commands();
        let batch = (commands.len() * 8) as u64;
        results.push(measure("mutation", 200, batch, || {
            std::hint::black_box(mutator.generate(&commands, 8, &ctx, Identifier(1)));
        }));
    }

    // 3. state_machine — one full channel lifecycle per iteration.
    {
        results.push(measure("state_machine", 200, 6, || {
            let mut sm = StateMachine::new();
            sm.on_command(CommandCode::ConnectionRequest, true);
            sm.on_command(CommandCode::ConfigureRequest, true);
            sm.on_command(CommandCode::ConfigureResponse, true);
            sm.on_command(CommandCode::MoveChannelRequest, true);
            sm.on_command(CommandCode::MoveChannelConfirmationRequest, true);
            sm.on_command(CommandCode::DisconnectionRequest, true);
            std::hint::black_box(sm.visited().len());
        }));
    }

    // 4. packet_throughput — the §IV-C comparison round: 500 packets
    //    through each of the four tools (2000 injected packets total),
    //    serial so the number reflects pipeline cost, not parallelism.
    {
        results.push(measure("packet_throughput", 15, 2000, || {
            std::hint::black_box(run_comparison_serial(500, 0xBEEF));
        }));
    }

    // 5. ablation — one full-configuration 500-packet campaign.
    {
        results.push(measure("ablation", 15, 500, || {
            let outcome = Campaign::builder()
                .target(DeviceProfile::table5(ProfileId::D2))
                .fuzzer(|| Box::new(L2FuzzTool::new(FuzzConfig::budget_driven())))
                .budget(TxBudget::packets(500))
                .oracle(OraclePolicy::None)
                .auto_restart(true)
                .seed(0xA11A)
                .run()
                .expect("ablation campaign runs")
                .into_single();
            std::hint::black_box(outcome.trace.len());
        }));
    }

    // 5b. faulty_link — the ablation campaign again, but over a link
    //    dropping 10 % of frames: the cost of the fault layer's per-event
    //    RNG rolls plus the retried preludes that keep the walk complete.
    //    The budget still burns fully, so packets/s is directly comparable
    //    to `ablation`'s ideal-link number.
    {
        results.push(measure("faulty_link", 15, 500, || {
            let outcome = Campaign::builder()
                .target(DeviceProfile::table5(ProfileId::D2))
                .fuzzer(|| Box::new(L2FuzzTool::new(FuzzConfig::budget_driven())))
                .budget(TxBudget::packets(500))
                .oracle(OraclePolicy::None)
                .auto_restart(true)
                .faults(FaultPlan::none().with_loss(0.10))
                .seed(0xA11A)
                .run()
                .expect("faulty-link campaign runs")
                .into_single();
            std::hint::black_box(outcome.trace.len());
        }));
    }

    // 5c. time_to_detection_{ideal,faulty} — a full detection campaign
    //    against the vulnerable BR/EDR phone, on an ideal link and under
    //    10 % loss + 5 % corruption.  `packets_per_iter` is 1, so the
    //    median reads directly as wall-clock time to the first confirmed
    //    finding — the paper's end-to-end metric, pinned against link
    //    degradation.
    for (name, faults) in [
        ("time_to_detection_ideal", FaultPlan::none()),
        ("time_to_detection_faulty", FaultPlan::degraded(0.10, 0.05)),
    ] {
        results.push(measure(name, 15, 1, move || {
            let outcome = Campaign::builder()
                .target(DeviceProfile::table5(ProfileId::D2))
                .fuzzer(|| Box::new(L2FuzzTool::detection(FuzzConfig::default(), 3)))
                .faults(faults)
                .seed(0xDE7EC7)
                .run()
                .expect("detection campaign runs")
                .into_single();
            assert!(outcome.report.vulnerable());
            std::hint::black_box(outcome.trace.len());
        }));
    }

    // 5d. time_to_detection_feedback — the same ideal-link detection
    //    campaign under the coverage-guided feedback engine (PR 10): corpus
    //    retention, energy scheduling and corpus-splice mutation included,
    //    so the median is directly comparable to
    //    `time_to_detection_ideal`'s dictionary number.
    {
        results.push(measure("time_to_detection_feedback", 15, 1, || {
            let outcome = Campaign::builder()
                .target(DeviceProfile::table5(ProfileId::D2))
                .feedback(FeedbackConfig::default())
                .seed(0xDE7EC7)
                .run()
                .expect("feedback detection campaign runs")
                .into_single();
            assert!(outcome.report.vulnerable());
            std::hint::black_box(outcome.trace.len());
        }));
    }

    // 6. le_pipeline — a budget-driven campaign against the LE-only
    //    wearable: the credit-based connect/reconfigure flows, LE mutation
    //    and the LE liveness probe, 500 packets per iteration.
    {
        results.push(measure("le_pipeline", 15, 500, || {
            let outcome = Campaign::builder()
                .target(DeviceProfile::table5(ProfileId::D9))
                .fuzzer(|| Box::new(L2FuzzTool::new(FuzzConfig::budget_driven())))
                .budget(TxBudget::packets(500))
                .oracle(OraclePolicy::None)
                .auto_restart(true)
                .seed(0x1EA0)
                .run()
                .expect("LE campaign runs")
                .into_single();
            std::hint::black_box(outcome.trace.len());
        }));
    }

    // 7. multi_initiator — two concurrent initiators on one hardened
    //    target, every exchange passing the event scheduler's turnstile
    //    (2 × 250 packets per iteration).  Measures the cost of the
    //    concurrent medium, including cross-thread event ordering.
    {
        results.push(measure("multi_initiator", 15, 500, || {
            let outcome = Campaign::builder()
                .target(DeviceProfile::table5(ProfileId::D4))
                .initiators_per_target(2)
                .fuzzer(|| Box::new(L2FuzzTool::new(FuzzConfig::budget_driven())))
                .budget(TxBudget::packets(250))
                .oracle(OraclePolicy::None)
                .auto_restart(true)
                .seed(0x2141)
                .run()
                .expect("multi-initiator campaign runs")
                .into_single();
            std::hint::black_box(outcome.trace.len() + outcome.secondary[0].trace.len());
        }));
    }

    // 8. seed_sweep — four independently seeded 125-packet campaigns per
    //    iteration through `SeedSweepExecutor` (500 packets total),
    //    exercising per-seed environment setup and teardown.
    {
        results.push(measure("seed_sweep", 15, 500, || {
            let outcome = Campaign::builder()
                .target(DeviceProfile::table5(ProfileId::D2))
                .fuzzer(|| Box::new(L2FuzzTool::new(FuzzConfig::budget_driven())))
                .budget(TxBudget::packets(125))
                .oracle(OraclePolicy::None)
                .auto_restart(true)
                .executor(SeedSweepExecutor::derived(0x53ED, 4))
                .run()
                .expect("seed sweep runs");
            std::hint::black_box(outcome.targets.len());
        }));
    }

    // 9. initiator_scaling_x{1,2,4,8} — the scaling curve: a fixed 400
    //    packet budget against the hardened D4, split evenly across 1, 2, 4
    //    and 8 concurrent initiators.  Constant work per iteration, so the
    //    packets/s column reads directly as the concurrency speedup (or the
    //    turnstile's overhead, where it dips).
    for (name, initiators) in [
        ("initiator_scaling_x1", 1u64),
        ("initiator_scaling_x2", 2),
        ("initiator_scaling_x4", 4),
        ("initiator_scaling_x8", 8),
    ] {
        results.push(measure(name, 15, 400, move || {
            let outcome = Campaign::builder()
                .target(DeviceProfile::table5(ProfileId::D4))
                .initiators_per_target(initiators as usize)
                .fuzzer(|| Box::new(L2FuzzTool::new(FuzzConfig::budget_driven())))
                .budget(TxBudget::packets(400 / initiators))
                .oracle(OraclePolicy::None)
                .auto_restart(true)
                .seed(0x5CA1E)
                .run()
                .expect("scaling campaign runs")
                .into_single();
            let frames: usize = outcome.trace.len()
                + outcome
                    .secondary
                    .iter()
                    .map(|s| s.trace.len())
                    .sum::<usize>();
            std::hint::black_box(frames);
        }));
    }

    let ablation = detection_ablation();

    // The report is written through the streaming JSON writer — the same
    // no-`Value`-tree path the campaign reports use.
    let mut w = serde_json::JsonStreamWriter::pretty();
    w.begin_object();
    for m in &results {
        w.key(m.name).begin_object();
        w.field("median_ns", &m.median_ns);
        w.field("packets_per_iter", &m.packets_per_iter);
        w.field(
            "packets_per_sec",
            &((m.packets_per_sec() * 10.0).round() / 10.0),
        );
        w.field(
            "allocs_per_packet",
            &((m.allocs_per_packet * 100.0).round() / 100.0),
        );
        w.end_object();
        println!(
            "{:<20} median {:>12} ns   {:>12.1} packets/s   {:>6.2} allocs/packet",
            m.name,
            m.median_ns,
            m.packets_per_sec(),
            m.allocs_per_packet
        );
    }
    w.key("detection_ablation").begin_object();
    w.field("seeds", &(ABLATION_SEEDS.len() as u64));
    for row in &ablation {
        w.key(&row.profile.to_string()).begin_object();
        w.field("dictionary_median_packets", &row.dictionary_median());
        w.field("feedback_median_packets", &row.feedback_median());
        w.field("dictionary_detected", &(row.dictionary_detected as u64));
        w.field("feedback_detected", &(row.feedback_detected as u64));
        w.end_object();
    }
    w.end_object();
    w.end_object();
    let json = w.finish();
    std::fs::write(&out_path, json + "\n").expect("report written");
    println!("wrote {out_path}");

    print_detection_ablation(&ablation);
    if !baseline_paths.is_empty() {
        compare_against_baselines(&results, &baseline_paths);
    }
}

/// The sweep seeds the detection ablation runs under — the extended-profile
/// scenario seeds, eight of them so the median is stable.
const ABLATION_SEEDS: [u64; 8] = [51, 52, 53, 54, 55, 56, 57, 58];

/// One target's row of the pinned D9/D10/D11 ablation: packets to detection
/// per sweep seed for each engine (the full spend, transitions and liveness
/// pings included; an undetected run is censored at its total spend).
struct AblationRow {
    profile: ProfileId,
    dictionary: Vec<u64>,
    feedback: Vec<u64>,
    dictionary_detected: usize,
    feedback_detected: usize,
}

fn median(samples: &[u64]) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    (sorted[sorted.len().div_ceil(2) - 1] + sorted[sorted.len() / 2]) / 2
}

impl AblationRow {
    fn dictionary_median(&self) -> u64 {
        median(&self.dictionary)
    }

    fn feedback_median(&self) -> u64 {
        median(&self.feedback)
    }
}

/// Runs the pinned ablation: for each seeded extended-profile vulnerability,
/// a dictionary detection campaign and a coverage-guided feedback campaign
/// per sweep seed.  The dictionary baseline gets configuration-option
/// mutation on D11 — without it the ERTM zero-window seed is unreachable
/// and the comparison would be a strawman.
fn detection_ablation() -> Vec<AblationRow> {
    [ProfileId::D9, ProfileId::D10, ProfileId::D11]
        .into_iter()
        .map(|id| {
            let mut row = AblationRow {
                profile: id,
                dictionary: Vec::new(),
                feedback: Vec::new(),
                dictionary_detected: 0,
                feedback_detected: 0,
            };
            for seed in ABLATION_SEEDS {
                let dict = Campaign::builder()
                    .target(DeviceProfile::table5(id))
                    .fuzzer(move || {
                        let cfg = if id == ProfileId::D11 {
                            FuzzConfig::default().with_config_option_mutation()
                        } else {
                            FuzzConfig::default()
                        };
                        Box::new(L2FuzzTool::detection(cfg, 3))
                    })
                    .seed(seed)
                    .run()
                    .expect("ablation dictionary campaign runs")
                    .into_single();
                row.dictionary.push(dict.report.packets_sent);
                row.dictionary_detected += usize::from(dict.report.vulnerable());

                let fb = Campaign::builder()
                    .target(DeviceProfile::table5(id))
                    .feedback(FeedbackConfig::default())
                    .seed(seed)
                    .run()
                    .expect("ablation feedback campaign runs")
                    .into_single();
                row.feedback.push(fb.report.packets_sent);
                row.feedback_detected += usize::from(fb.report.vulnerable());
            }
            row
        })
        .collect()
}

/// Prints the ablation as a GitHub-flavoured markdown table; the CI bench
/// job appends it to the step summary together with the baseline tables.
fn print_detection_ablation(rows: &[AblationRow]) {
    println!(
        "\n### Detection ablation (median packets to detection, {} sweep seeds)\n",
        ABLATION_SEEDS.len()
    );
    println!("| target | dictionary | feedback | detected (dict/fb) |");
    println!("|---|---:|---:|---:|");
    for row in rows {
        println!(
            "| {} | {} | {} | {}/{} of {} |",
            row.profile,
            row.dictionary_median(),
            row.feedback_median(),
            row.dictionary_detected,
            row.feedback_detected,
            ABLATION_SEEDS.len()
        );
    }
}

/// Reads one committed baseline report, returning a lookup from bench name
/// to its recorded `median_ns`.
fn load_baseline(path: &str) -> Option<serde::Value> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            println!("\n> baseline {path} not readable ({err}); comparison skipped");
            return None;
        }
    };
    match serde_json::from_str(&text) {
        Ok(v) => Some(v),
        Err(err) => {
            println!("\n> baseline {path} not valid JSON ({err}); comparison skipped");
            None
        }
    }
}

fn baseline_median(baseline: &serde::Value, name: &str) -> Option<f64> {
    match baseline.get(name)?.get("median_ns")? {
        serde::Value::U64(n) => Some(*n as f64),
        serde::Value::F64(x) => Some(*x),
        _ => None,
    }
}

/// Prints a GitHub-flavoured markdown comparison against every committed
/// baseline report passed via (repeatable) `--baseline` flags, and flags
/// `packet_throughput` regressions beyond 10 % of the *best* (lowest
/// median) baseline — so the gate ratchets against the best number ever
/// committed, not just the previous PR's.  The CI bench job appends this to
/// its step summary; the job itself stays non-gating, so the exit code
/// still signals the regression to scripts that care.
fn compare_against_baselines(results: &[Measured], baseline_paths: &[String]) {
    let baselines: Vec<(&str, serde::Value)> = baseline_paths
        .iter()
        .filter_map(|p| load_baseline(p).map(|b| (p.as_str(), b)))
        .collect();
    if baselines.is_empty() {
        return;
    }

    for (path, baseline) in &baselines {
        println!("\n### Perf vs `{path}`\n");
        println!("| bench | baseline | now | change |");
        println!("|---|---:|---:|---:|");
        for m in results {
            let Some(base_ns) = baseline_median(baseline, m.name) else {
                println!("| {} | — | {} ns | new bench |", m.name, m.median_ns);
                continue;
            };
            let delta = (m.median_ns as f64 - base_ns) / base_ns * 100.0;
            println!(
                "| {} | {:.0} ns | {} ns | {delta:+.1} % |",
                m.name, base_ns, m.median_ns
            );
        }
    }

    // The ratchet: packet_throughput must stay within 10 % of the best
    // committed baseline.
    let best = baselines
        .iter()
        .filter_map(|(path, b)| baseline_median(b, "packet_throughput").map(|ns| (*path, ns)))
        .min_by(|a, b| a.1.total_cmp(&b.1));
    let Some((best_path, best_ns)) = best else {
        println!("\n> no baseline records packet_throughput; gate skipped");
        return;
    };
    let Some(now) = results.iter().find(|m| m.name == "packet_throughput") else {
        println!("\n> this run records no packet_throughput; gate skipped");
        return;
    };
    let delta = (now.median_ns as f64 - best_ns) / best_ns * 100.0;
    println!(
        "\nbest committed packet_throughput baseline: {best_ns:.0} ns (`{best_path}`); \
         this run {delta:+.1} %"
    );
    if delta > 10.0 {
        println!("\n**`packet_throughput` regressed more than 10 % against the best baseline.**");
        std::process::exit(2);
    }
    println!("\npacket_throughput within 10 % of the best baseline.");
}
