//! Regenerates Table V: the eight test devices.
use btstack::profiles::DeviceProfile;

fn main() {
    println!("Table V — test devices used in the experiments");
    println!(
        "{:<4}{:<12}{:<10}{:<16}{:<18}{:<16}{:<14}{:<10}",
        "No.", "Type", "Vendor", "Name", "OS / FW", "BT Stack", "BT Ver.", "#Ports"
    );
    for p in DeviceProfile::all() {
        println!(
            "{:<4}{:<12}{:<10}{:<16}{:<18}{:<16}{:<14}{:<10}",
            p.id.to_string(),
            p.device_type,
            p.vendor,
            p.name,
            p.os_or_firmware,
            p.stack.to_string(),
            p.bt_version,
            p.service_ports
        );
    }
}
