//! Regenerates Figure 8: cumulative malformed packets vs transmitted packets.
use bench::{default_budget, run_comparison};
use sniffer::metrics::malformed_series;

fn main() {
    let budget = default_budget();
    let step = (budget / 10).max(1);
    println!("Figure 8 — #transmitted malformed packets vs #transmitted packets (step {step})");
    for run in run_comparison(budget, 0x0808) {
        println!("-- {}", run.name);
        for point in malformed_series(&run.trace, step) {
            println!(
                "   {:>8} transmitted  {:>8} malformed",
                point.packets, point.matching
            );
        }
    }
}
