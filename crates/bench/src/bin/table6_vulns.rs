//! Regenerates Table VI: vulnerability detection results of L2Fuzz on D1-D8.
use bench::run_table6_campaign;
use btstack::profiles::ProfileId;

fn main() {
    let max_campaigns: usize = std::env::var("L2FUZZ_MAX_CAMPAIGNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    println!("Table VI — vulnerability detection results (simulated targets)");
    println!(
        "{:<5}{:<16}{:<8}{:<14}{:<14}",
        "Dev", "Name", "Vuln?", "Description", "Elapsed"
    );
    for (i, id) in ProfileId::ALL.iter().enumerate() {
        let report = run_table6_campaign(*id, 1000 + i as u64, max_campaigns);
        match report.findings.first() {
            Some(f) => println!(
                "{:<5}{:<16}{:<8}{:<14}{:<14}",
                id.to_string(),
                report.target.name,
                "Yes",
                f.evidence.description,
                f.elapsed_display()
            ),
            None => println!(
                "{:<5}{:<16}{:<8}{:<14}{:<14}",
                id.to_string(),
                report.target.name,
                "No",
                "N/A",
                "N/A"
            ),
        }
    }
}
