//! Regenerates Table VI: vulnerability detection results of L2Fuzz on D1-D8.
//! The eight per-device campaigns run sharded across four worker threads;
//! results are identical to a serial run of the same seed.
use bench::table6_survey;

fn main() {
    let max_campaigns: usize = std::env::var("L2FUZZ_MAX_CAMPAIGNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    println!("Table VI — vulnerability detection results (simulated targets)");
    println!(
        "{:<5}{:<16}{:<8}{:<14}{:<14}",
        "Dev", "Name", "Vuln?", "Description", "Elapsed"
    );
    for outcome in table6_survey(1000, max_campaigns, 4).targets {
        let id = outcome.profile.id;
        let report = &outcome.report;
        match report.findings.first() {
            Some(f) => println!(
                "{:<5}{:<16}{:<8}{:<14}{:<14}",
                id.to_string(),
                report.target.name,
                "Yes",
                f.evidence.description,
                f.elapsed_display()
            ),
            None => println!(
                "{:<5}{:<16}{:<8}{:<14}{:<14}",
                id.to_string(),
                report.target.name,
                "No",
                "N/A",
                "N/A"
            ),
        }
    }
}
