//! Regenerates Figure 9: cumulative rejection packets vs received packets.
use bench::{default_budget, run_comparison};
use sniffer::metrics::rejection_series;

fn main() {
    let budget = default_budget();
    let step = (budget / 10).max(1);
    println!("Figure 9 — #received rejection packets vs #received packets (step {step})");
    for run in run_comparison(budget, 0x0909) {
        println!("-- {}", run.name);
        for point in rejection_series(&run.trace, step) {
            println!(
                "   {:>8} received  {:>8} rejections",
                point.packets, point.matching
            );
        }
    }
}
