//! Regenerates Figure 10: L2CAP state coverage per fuzzer.
use bench::run_comparison;

fn main() {
    println!("Figure 10 — L2CAP state coverage by different fuzzers (of 19 states)");
    for run in run_comparison(3_000, 0x1010) {
        println!(
            "{:<12}{:>3} states  {}",
            run.name,
            run.coverage.count(),
            "#".repeat(run.coverage.count())
        );
    }
}
