//! Ablation study: what each L2Fuzz design choice contributes.
//!
//! Four configurations are compared on the Pixel 3 target: full L2Fuzz,
//! without state guiding, without core-field-only mutation (dumb mutation of
//! every field), and without the garbage tail.
use bench::TestBench;
use btstack::profiles::ProfileId;
use l2fuzz::config::FuzzConfig;
use l2fuzz::fuzzer::Fuzzer;
use l2fuzz::session::L2FuzzTool;
use sniffer::{MetricsSummary, StateCoverage};

fn main() {
    let budget: usize = std::env::var("L2FUZZ_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000);
    let variants: Vec<(&str, FuzzConfig)> = vec![
        ("full L2Fuzz", FuzzConfig::comparison(usize::MAX, 1)),
        (
            "no state guiding",
            FuzzConfig::comparison(usize::MAX, 2).without_state_guiding(),
        ),
        (
            "all-field mutation",
            FuzzConfig::comparison(usize::MAX, 3).without_core_field_restriction(),
        ),
        (
            "no garbage tail",
            FuzzConfig::comparison(usize::MAX, 4).without_garbage(),
        ),
    ];
    println!("Ablation on D2 (Pixel 3), {budget} packets per variant");
    println!(
        "{:<22}{:>8}{:>8}{:>8}{:>10}",
        "Variant", "MP", "PR", "ME", "states"
    );
    for (name, config) in variants {
        let mut bench = TestBench::new(ProfileId::D2, 0xAB1A, true);
        let meta = {
            use hci::device::VirtualDevice;
            bench.device.lock().meta()
        };
        let mut tool = L2FuzzTool::new(config, bench.clock.clone(), meta);
        tool.fuzz(&mut bench.link, budget);
        let trace = bench.trace();
        let m = MetricsSummary::from_trace(&trace);
        let cov = StateCoverage::from_trace(&trace);
        println!(
            "{:<22}{:>7.1}%{:>7.1}%{:>7.1}%{:>10}",
            name,
            m.mp_ratio * 100.0,
            m.pr_ratio * 100.0,
            m.mutation_efficiency * 100.0,
            cov.count()
        );
    }
}
