//! Ablation study: what each L2Fuzz design choice contributes.
//!
//! Four configurations are compared on the Pixel 3 target: full L2Fuzz,
//! without state guiding, without core-field-only mutation (dumb mutation of
//! every field), and without the garbage tail.  Each variant runs in its own
//! isolated campaign environment.
use btstack::profiles::{DeviceProfile, ProfileId};
use l2fuzz::campaign::{Campaign, OraclePolicy};
use l2fuzz::config::FuzzConfig;
use l2fuzz::fuzzer::TxBudget;
use l2fuzz::session::L2FuzzTool;
use sniffer::{MetricsSummary, StateCoverage};

fn main() {
    let budget: u64 = std::env::var("L2FUZZ_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4_000);
    let variants: Vec<(&str, FuzzConfig)> = vec![
        ("full L2Fuzz", FuzzConfig::budget_driven()),
        (
            "no state guiding",
            FuzzConfig::budget_driven().without_state_guiding(),
        ),
        (
            "all-field mutation",
            FuzzConfig::budget_driven().without_core_field_restriction(),
        ),
        (
            "no garbage tail",
            FuzzConfig::budget_driven().without_garbage(),
        ),
    ];
    println!("Ablation on D2 (Pixel 3), {budget} packets per variant");
    println!(
        "{:<22}{:>8}{:>8}{:>8}{:>10}",
        "Variant", "MP", "PR", "ME", "states"
    );
    for (name, config) in variants {
        // One constant campaign seed across variants: the device, the link
        // and the per-target seed stream stay fixed, so the printed deltas
        // isolate the ablated configuration switch.
        let outcome = Campaign::builder()
            .target(DeviceProfile::table5(ProfileId::D2))
            .fuzzer(move || Box::new(L2FuzzTool::new(config.clone())))
            .budget(TxBudget::packets(budget))
            .oracle(OraclePolicy::None)
            .auto_restart(true)
            .seed(0xAB1A)
            .run()
            .expect("ablation campaign runs")
            .into_single();
        let m = MetricsSummary::from_trace(&outcome.trace);
        let cov = StateCoverage::from_trace(&outcome.trace);
        println!(
            "{:<22}{:>7.1}%{:>7.1}%{:>7.1}%{:>10}",
            name,
            m.mp_ratio * 100.0,
            m.pr_ratio * 100.0,
            m.mutation_efficiency * 100.0,
            cov.count()
        );
    }
}
