//! Regenerates Figure 11: which of the 19 states each fuzzer can test.
use bench::run_comparison;
use l2cap::state::ChannelState;

fn main() {
    println!("Figure 11 — testable L2CAP states per fuzzer ('#' = covered)");
    let runs = run_comparison(3_000, 0x1111);
    println!(
        "{:<24}{}",
        "State",
        runs.iter()
            .map(|r| format!("{:>10}", r.name))
            .collect::<String>()
    );
    for state in ChannelState::ALL {
        let row: String = runs
            .iter()
            .map(|r| format!("{:>10}", if r.coverage.covers(state) { "#" } else { "." }))
            .collect();
        println!("{:<24}{}", state.spec_name(), row);
    }
    for run in &runs {
        println!("{:<12}{}", run.name, run.coverage.matrix_row());
    }
}
