//! Regenerates Tables I-III: the job clustering and valid-command map.
use l2cap::jobs::Job;

fn main() {
    println!("Table I — jobs and their states");
    for job in Job::ALL {
        let states: Vec<&str> = job.states().iter().map(|s| s.spec_name()).collect();
        println!("{:<15}{}", job.to_string(), states.join(", "));
    }
    println!();
    println!("Table III — valid commands mapped for each job");
    for job in Job::ALL {
        let cmds = job.valid_commands();
        let shown = if cmds.len() == 26 {
            "All commands".to_string()
        } else {
            cmds.iter()
                .map(|c| c.mnemonic())
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!("{:<15}{}", job.to_string(), shown);
    }
}
