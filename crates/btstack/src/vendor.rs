//! Vendor stack identities and behavioural quirks.
//!
//! The paper stresses that "Bluetooth devices did not always display the
//! exact same operations as defined in the documentation" (§III-C) — e.g.
//! some Android devices accept a Connect Rsp in the `WAIT_CONNECT` state.
//! [`Quirks`] captures those per-vendor deviations; they are what makes the
//! difference between a target that strictly rejects every out-of-place
//! packet and one whose lenient parsing reaches vulnerable code.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The Bluetooth host stacks represented in the paper's device table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VendorStack {
    /// Android's BlueDroid / Fluoride stack.
    BlueDroid,
    /// The Linux BlueZ stack.
    BlueZ,
    /// Apple's iOS Bluetooth stack.
    AppleIos,
    /// Apple's RTKit firmware stack (AirPods).
    AppleRtkit,
    /// The Microsoft Windows Bluetooth stack.
    Windows,
    /// Broadcom/Samsung BTW stack (Galaxy Buds+).
    Btw,
    /// The Zephyr RTOS Bluetooth LE stack (wearables, sensors).
    Zephyr,
}

impl VendorStack {
    /// All seven stacks.
    pub const ALL: [VendorStack; 7] = [
        VendorStack::BlueDroid,
        VendorStack::BlueZ,
        VendorStack::AppleIos,
        VendorStack::AppleRtkit,
        VendorStack::Windows,
        VendorStack::Btw,
        VendorStack::Zephyr,
    ];

    /// Default behavioural quirks of this stack family.
    pub fn default_quirks(&self) -> Quirks {
        match self {
            VendorStack::BlueDroid => Quirks {
                lenient_cid_validation_in_config: true,
                lenient_unexpected_responses: true,
                supports_amp_channels: true,
                max_channels_per_link: 7,
                strict_malformed_filtering: false,
                supports_echo: true,
            },
            VendorStack::BlueZ => Quirks {
                lenient_cid_validation_in_config: true,
                lenient_unexpected_responses: false,
                supports_amp_channels: true,
                max_channels_per_link: 10,
                strict_malformed_filtering: false,
                supports_echo: true,
            },
            VendorStack::AppleIos => Quirks {
                lenient_cid_validation_in_config: false,
                lenient_unexpected_responses: false,
                supports_amp_channels: false,
                max_channels_per_link: 8,
                strict_malformed_filtering: true,
                supports_echo: true,
            },
            VendorStack::AppleRtkit => Quirks {
                lenient_cid_validation_in_config: false,
                lenient_unexpected_responses: true,
                supports_amp_channels: false,
                max_channels_per_link: 4,
                strict_malformed_filtering: false,
                supports_echo: true,
            },
            VendorStack::Windows => Quirks {
                lenient_cid_validation_in_config: false,
                lenient_unexpected_responses: false,
                supports_amp_channels: false,
                max_channels_per_link: 10,
                strict_malformed_filtering: true,
                supports_echo: true,
            },
            VendorStack::Btw => Quirks {
                lenient_cid_validation_in_config: false,
                lenient_unexpected_responses: false,
                supports_amp_channels: false,
                max_channels_per_link: 5,
                strict_malformed_filtering: true,
                supports_echo: true,
            },
            VendorStack::Zephyr => Quirks {
                lenient_cid_validation_in_config: false,
                lenient_unexpected_responses: true,
                supports_amp_channels: false,
                max_channels_per_link: 4,
                strict_malformed_filtering: false,
                // An LE-only stack never sees an ACL-U echo request; the
                // link-type table rejects it before this quirk is consulted.
                supports_echo: false,
            },
        }
    }
}

impl fmt::Display for VendorStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            VendorStack::BlueDroid => "BlueDroid",
            VendorStack::BlueZ => "BlueZ",
            VendorStack::AppleIos => "iOS stack",
            VendorStack::AppleRtkit => "RTKit stack",
            VendorStack::Windows => "Windows stack",
            VendorStack::Btw => "BTW",
            VendorStack::Zephyr => "Zephyr",
        };
        f.write_str(s)
    }
}

/// Behavioural deviations from the specification exhibited by a stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quirks {
    /// In configuration-job states, channel IDs carried in payloads are *not*
    /// validated against the allocated channel before use (the BlueDroid
    /// behaviour behind the paper's case-study null-pointer dereference).
    pub lenient_cid_validation_in_config: bool,
    /// Unexpected response commands (e.g. a Connect Rsp while waiting for a
    /// Connect Req) are silently ignored instead of rejected.
    pub lenient_unexpected_responses: bool,
    /// The stack processes AMP Create/Move Channel commands (otherwise they
    /// are refused).
    pub supports_amp_channels: bool,
    /// Maximum simultaneous L2CAP channels per ACL link; further connection
    /// requests are refused with "no resources".
    pub max_channels_per_link: usize,
    /// The stack runs an additional sanity filter over incoming signalling
    /// packets (length-consistency and garbage checks) and silently drops
    /// anything suspicious before it reaches command handling.  This models
    /// the proprietary exception-handling logic the paper credits for the
    /// three devices in which no vulnerability was found (§IV-B).
    pub strict_malformed_filtering: bool,
    /// The stack answers L2CAP Echo Requests (all BR/EDR stacks do).
    pub supports_echo: bool,
}

impl Default for Quirks {
    fn default() -> Self {
        VendorStack::BlueDroid.default_quirks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_stack_has_quirks_and_a_name() {
        for stack in VendorStack::ALL {
            let q = stack.default_quirks();
            assert!(q.max_channels_per_link > 0);
            // Every classic stack answers L2CAP echo; the LE-only Zephyr
            // stack never sees one.
            assert_eq!(q.supports_echo, stack != VendorStack::Zephyr);
            assert!(!stack.to_string().is_empty());
        }
    }

    #[test]
    fn bluedroid_is_lenient_and_supports_amp() {
        let q = VendorStack::BlueDroid.default_quirks();
        assert!(q.lenient_cid_validation_in_config);
        assert!(q.supports_amp_channels);
        assert!(!q.strict_malformed_filtering);
    }

    #[test]
    fn hardened_stacks_filter_malformed_packets() {
        for stack in [
            VendorStack::AppleIos,
            VendorStack::Windows,
            VendorStack::Btw,
        ] {
            assert!(
                stack.default_quirks().strict_malformed_filtering,
                "{stack} should filter malformed packets"
            );
        }
        assert!(
            !VendorStack::BlueZ
                .default_quirks()
                .strict_malformed_filtering
        );
    }

    #[test]
    fn stack_names_are_unique() {
        let mut names: Vec<String> = VendorStack::ALL.iter().map(|s| s.to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 7);
    }
}
