//! Synthetic crash dumps.
//!
//! The paper's detection phase checks whether a crash dump appeared on the
//! target — an Android *tombstone* on the BlueDroid devices, a core dump with
//! a general-protection fault on the BlueZ laptop.  The simulated devices
//! generate format-compatible artifacts when a seeded vulnerability fires, so
//! the detector exercises the same oracle logic as the original tool.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The kind of crash artifact a device produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrashKind {
    /// Android tombstone caused by a null-pointer dereference (SIGSEGV with a
    /// near-zero fault address), as in the paper's Fig. 12.
    NullPointerDereference,
    /// General protection fault recorded in a kernel/daemon crash dump (the
    /// D8 finding).
    GeneralProtectionFault,
    /// Uncontrolled termination without a dump (the D5 finding).
    UncontrolledTermination,
}

impl fmt::Display for CrashKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CrashKind::NullPointerDereference => "null pointer dereference",
            CrashKind::GeneralProtectionFault => "general protection fault",
            CrashKind::UncontrolledTermination => "uncontrolled termination",
        };
        f.write_str(s)
    }
}

/// A synthetic crash dump record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashDump {
    /// What kind of crash produced the dump.
    pub kind: CrashKind,
    /// Process/thread name that crashed (e.g. `bt_main_thread`).
    pub process: String,
    /// Signal number (11 = SIGSEGV) when applicable.
    pub signal: Option<u8>,
    /// Faulting address when applicable.
    pub fault_address: Option<u64>,
    /// The innermost backtrace frame (e.g. `l2c_csm_execute`).
    pub top_frame: String,
    /// Virtual-clock timestamp (microseconds) when the crash happened.
    pub timestamp_micros: u64,
    /// Identifier of the vulnerability that fired.
    pub vuln_id: String,
}

impl CrashDump {
    /// Builds an Android-tombstone-style dump for a BlueDroid null-pointer
    /// dereference in the channel state machine, mirroring the paper's
    /// Fig. 12.
    pub fn bluedroid_tombstone(vuln_id: &str, timestamp_micros: u64) -> Self {
        CrashDump {
            kind: CrashKind::NullPointerDereference,
            process: "bt_main_thread".to_owned(),
            signal: Some(11),
            fault_address: Some(0x20),
            top_frame: "l2c_csm_execute(t_l2c_ccb*, unsigned short, void*)".to_owned(),
            timestamp_micros,
            vuln_id: vuln_id.to_owned(),
        }
    }

    /// Builds a general-protection-fault dump as produced by the BlueZ
    /// laptop (D8).
    pub fn bluez_general_protection(vuln_id: &str, timestamp_micros: u64) -> Self {
        CrashDump {
            kind: CrashKind::GeneralProtectionFault,
            process: "bluetoothd".to_owned(),
            signal: Some(11),
            fault_address: None,
            top_frame: "l2cap_recv_frame".to_owned(),
            timestamp_micros,
            vuln_id: vuln_id.to_owned(),
        }
    }

    /// Builds the "no dump, device just died" record used for firmware
    /// targets such as the AirPods (D5).
    pub fn uncontrolled_termination(vuln_id: &str, timestamp_micros: u64) -> Self {
        CrashDump {
            kind: CrashKind::UncontrolledTermination,
            process: "rtkit-bt".to_owned(),
            signal: None,
            fault_address: None,
            top_frame: "<unknown>".to_owned(),
            timestamp_micros,
            vuln_id: vuln_id.to_owned(),
        }
    }

    /// Renders the dump in a tombstone-like textual form.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("*** *** *** *** *** *** *** *** *** *** *** ***\n");
        out.push_str(&format!(
            "pid: 1948, tid: 2946, name: {} >>> com.simulated.bluetooth <<<\n",
            self.process
        ));
        if let Some(sig) = self.signal {
            out.push_str(&format!("signal {sig} (SIGSEGV), code 1 (SEGV_MAPERR)"));
            if let Some(addr) = self.fault_address {
                out.push_str(&format!(", fault addr 0x{addr:x}"));
            }
            out.push('\n');
        }
        out.push_str(&format!("Cause: {}\n", self.kind));
        out.push_str("backtrace:\n");
        out.push_str(&format!(
            "  #00 pc 0000000000378da0  /system/lib64/libbluetooth.so ({})\n",
            self.top_frame
        ));
        out.push_str(&format!("vulnerability: {}\n", self.vuln_id));
        out
    }
}

/// Stores the crash dumps a device produced; the oracle drains it.
#[derive(Debug, Default)]
pub struct CrashDumpStore {
    dumps: Vec<CrashDump>,
    taken: usize,
}

impl CrashDumpStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        CrashDumpStore::default()
    }

    /// Records a new dump.
    pub fn record(&mut self, dump: CrashDump) {
        self.dumps.push(dump);
    }

    /// Returns `true` if there is a dump the oracle has not consumed yet, and
    /// marks it consumed (mirrors "pull and clear tombstones").
    pub fn take_new(&mut self) -> bool {
        if self.taken < self.dumps.len() {
            self.taken = self.dumps.len();
            true
        } else {
            false
        }
    }

    /// All dumps ever recorded (consumed or not).
    pub fn all(&self) -> &[CrashDump] {
        &self.dumps
    }

    /// Total number of dumps recorded.
    pub fn len(&self) -> usize {
        self.dumps.len()
    }

    /// Returns `true` if no dump was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.dumps.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tombstone_matches_paper_case_study_shape() {
        let dump = CrashDump::bluedroid_tombstone("cve-sim-android-dos", 123);
        assert_eq!(dump.kind, CrashKind::NullPointerDereference);
        assert_eq!(dump.signal, Some(11));
        assert_eq!(dump.fault_address, Some(0x20));
        let text = dump.render();
        assert!(text.contains("l2c_csm_execute"));
        assert!(text.contains("SIGSEGV"));
        assert!(text.contains("null pointer dereference"));
    }

    #[test]
    fn bluez_dump_records_general_protection() {
        let dump = CrashDump::bluez_general_protection("cve-sim-bluez-gp", 5);
        assert_eq!(dump.kind, CrashKind::GeneralProtectionFault);
        assert!(dump.render().contains("general protection fault"));
    }

    #[test]
    fn uncontrolled_termination_has_no_signal() {
        let dump = CrashDump::uncontrolled_termination("cve-sim-airpods", 7);
        assert_eq!(dump.signal, None);
        assert_eq!(dump.kind, CrashKind::UncontrolledTermination);
    }

    #[test]
    fn store_take_new_is_consuming() {
        let mut store = CrashDumpStore::new();
        assert!(!store.take_new());
        store.record(CrashDump::bluedroid_tombstone("v1", 1));
        assert!(store.take_new());
        assert!(!store.take_new());
        store.record(CrashDump::bluedroid_tombstone("v2", 2));
        assert!(store.take_new());
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
        assert_eq!(store.all().len(), 2);
    }
}
