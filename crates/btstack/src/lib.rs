//! Simulated vendor Bluetooth host stacks — the reproduction's stand-in for
//! the paper's eight physical test devices (Table V).
//!
//! The original evaluation fuzzes real phones, earphones and laptops over the
//! air.  This crate builds the equivalent targets in software: spec-conformant
//! L2CAP acceptors with per-vendor behavioural quirks and *seeded
//! vulnerabilities* that mirror the five zero-days the paper found.  A
//! simulated device implements both [`hci::VirtualDevice`] (so it can be
//! registered on the virtual air medium) and [`btcore::TargetOracle`] (so the
//! detection phase can ping it and pull crash dumps, as the original tool
//! does out of band via `adb`/`ssh`).
//!
//! Modules:
//!
//! * [`vendor`] — vendor stack identities and their behavioural quirks.
//! * [`services`] — the SDP-lite service/port table of a device.
//! * [`ccb`] — channel control blocks and CID allocation.
//! * [`endpoint`] — the L2CAP signalling acceptor.
//! * [`vuln`] — seeded vulnerability specifications and their triggers.
//! * [`crashdump`] — synthetic Android-tombstone-style crash dumps.
//! * [`device`] — the full simulated device tying everything together.
//! * [`profiles`] — the eight device profiles D1–D8 of Table V.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ccb;
pub mod crashdump;
pub mod device;
pub mod endpoint;
pub mod profiles;
pub mod services;
pub mod vendor;
pub mod vuln;

pub use device::{SharedSimulatedDevice, SimulatedDevice};
pub use profiles::{DeviceProfile, ProfileId};
pub use services::{ServiceRecord, ServiceTable};
pub use vendor::{Quirks, VendorStack};
pub use vuln::{Effect, Trigger, VulnerabilitySpec};
