//! Seeded vulnerability specifications.
//!
//! Each simulated device carries zero or more [`VulnerabilitySpec`]s that
//! mirror the five zero-days of the paper's Table VI: a structural
//! [`Trigger`] describing which packets reach the defective code path (state
//! job, command, abnormal PSM, CID mismatch, appended garbage) and an
//! [`Effect`] describing what happens when it fires (Bluetooth denial of
//! service or a device crash, with or without a crash dump).
//!
//! The trigger additionally carries a *hit probability* modelling how narrow
//! the defective path is inside the vendor's application logic: the paper
//! observes that time-to-detection grows with the number of service ports and
//! the complexity of the Bluetooth applications (§IV-B), which is what this
//! knob reproduces (e.g. the BlueZ laptop takes hours while the AirPods take
//! seconds).

use l2cap::code::CommandCode;
use l2cap::jobs::Job;
use l2cap::state::ChannelState;
use serde::{Deserialize, Serialize};

use crate::crashdump::CrashKind;

/// Per-packet facts the endpoint extracts before vulnerability matching.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PacketContext {
    /// Job of the channel state the packet was processed in.
    pub job: Job,
    /// Exact channel state the packet was processed in.
    pub state: ChannelState,
    /// The signalling command, if its code byte is defined.
    pub code: Option<CommandCode>,
    /// PSM value carried by the packet, if any.
    pub psm: Option<u16>,
    /// Channel-ID-in-payload values carried by the packet (SCID/DCID/ICID).
    pub cidp: l2cap::fields::CidpValues,
    /// `true` if every CIDP value matches a channel the device actually
    /// allocated.
    pub cidp_matches_allocation: bool,
    /// Number of bytes beyond the command's defined data fields (the
    /// garbage tail appended by the mutator).
    pub garbage_len: usize,
    /// `true` if the declared length fields agree with the bytes carried.
    pub length_consistent: bool,
    /// Simplified PSM carried by an LE credit-based command, if any.
    pub spsm: Option<u16>,
    /// Credit count carried by the packet (initial credits or a credit
    /// grant), if any.
    pub credits: Option<u16>,
    /// The retransmission-and-flow-control option carried by a configuration
    /// command, if any (the ERTM/streaming-mode fuzzing surface).
    pub rfc_option: Option<l2cap::options::RetransmissionConfig>,
}

/// Structural conditions under which a seeded vulnerability fires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trigger {
    /// Jobs in which the defective code is reachable (empty = any job).
    pub jobs: Vec<Job>,
    /// Commands that reach the defective code (empty = any command).
    pub commands: Vec<CommandCode>,
    /// The packet must carry a garbage tail.
    pub requires_garbage: bool,
    /// The packet must carry a PSM from the abnormal space of Table IV.
    pub requires_abnormal_psm: bool,
    /// The packet must carry a CIDP value that does not match any allocated
    /// channel.
    pub requires_cidp_mismatch: bool,
    /// The packet must carry an SPSM outside the defined LE SPSM space.
    pub requires_abnormal_spsm: bool,
    /// The packet must carry a credit count from the abnormal classes
    /// (zero-credit stall or the overflow-prone upper half).
    pub requires_abnormal_credits: bool,
    /// The packet must carry a retransmission-and-flow-control option
    /// selecting ERTM or streaming mode with abnormal parameters (zero
    /// transmit window or an MPS below the minimum).
    pub requires_abnormal_ertm_option: bool,
    /// Probability that a structurally matching packet actually lands in the
    /// defective path (models application-logic complexity).
    pub hit_probability: f64,
}

impl Trigger {
    /// Returns `true` if the packet context satisfies every structural
    /// condition (the probabilistic part is rolled by the caller).
    pub fn matches(&self, ctx: &PacketContext) -> bool {
        if !self.jobs.is_empty() && !self.jobs.contains(&ctx.job) {
            return false;
        }
        if !self.commands.is_empty() {
            match ctx.code {
                Some(code) if self.commands.contains(&code) => {}
                _ => return false,
            }
        }
        if self.requires_garbage && ctx.garbage_len == 0 {
            return false;
        }
        if self.requires_abnormal_psm {
            match ctx.psm {
                Some(psm) if l2cap::ranges::is_abnormal_psm(psm) => {}
                _ => return false,
            }
        }
        if self.requires_cidp_mismatch && (ctx.cidp.is_empty() || ctx.cidp_matches_allocation) {
            return false;
        }
        if self.requires_abnormal_spsm {
            match ctx.spsm {
                Some(spsm) if l2cap::ranges::is_abnormal_spsm(spsm) => {}
                _ => return false,
            }
        }
        if self.requires_abnormal_credits {
            match ctx.credits {
                Some(credits) if l2cap::ranges::is_abnormal_credits(credits) => {}
                _ => return false,
            }
        }
        if self.requires_abnormal_ertm_option {
            match ctx.rfc_option {
                Some(rfc)
                    if matches!(rfc.mode, 3 | 4)
                        && (rfc.tx_window == 0 || l2cap::ranges::is_abnormal_le_mtu(rfc.mps)) => {}
                _ => return false,
            }
        }
        true
    }
}

/// What happens to the device when a vulnerability fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Effect {
    /// The Bluetooth service terminates (denial of service); the rest of the
    /// device keeps running.
    DenialOfService,
    /// The device (or its Bluetooth subsystem) crashes outright.
    Crash,
}

/// A seeded vulnerability of a simulated device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VulnerabilitySpec {
    /// Stable identifier used in crash dumps and reports.
    pub id: String,
    /// Human-readable description.
    pub description: String,
    /// When it fires.
    pub trigger: Trigger,
    /// What it does.
    pub effect: Effect,
    /// What kind of crash artifact it leaves behind.
    pub crash_kind: CrashKind,
    /// Whether a crash dump is written when it fires.
    pub produces_dump: bool,
}

impl VulnerabilitySpec {
    /// The BlueDroid configuration-job null-pointer dereference of the
    /// paper's case study (§IV-E): a configuration-job command whose CIDP
    /// value ignores the device's allocation, with garbage appended, drives
    /// `l2c_csm_execute` into a null CCB.
    pub fn bluedroid_config_null_deref(hit_probability: f64) -> Self {
        VulnerabilitySpec {
            id: "SIM-BLUEDROID-L2C-NULLPTR".to_owned(),
            description: "null pointer dereference in l2c_csm_execute via unallocated CIDP \
                          with garbage in the configuration job (DoS)"
                .to_owned(),
            trigger: Trigger {
                jobs: vec![Job::Configuration],
                commands: vec![
                    CommandCode::ConfigureRequest,
                    CommandCode::ConfigureResponse,
                ],
                requires_garbage: true,
                requires_abnormal_psm: false,
                requires_cidp_mismatch: true,
                requires_abnormal_spsm: false,
                requires_abnormal_credits: false,
                requires_abnormal_ertm_option: false,
                hit_probability,
            },
            effect: Effect::DenialOfService,
            crash_kind: CrashKind::NullPointerDereference,
            produces_dump: true,
        }
    }

    /// The Galaxy 7 variant detected through a malformed Create Channel
    /// Request in the `WAIT_CREATE` state (§IV-E notes only L2Fuzz reaches
    /// it).
    pub fn bluedroid_create_channel_dos(hit_probability: f64) -> Self {
        VulnerabilitySpec {
            id: "SIM-BLUEDROID-CREATE-DOS".to_owned(),
            description: "denial of service via malformed Create Channel Request in the \
                          creation job"
                .to_owned(),
            trigger: Trigger {
                jobs: vec![Job::Closed, Job::Creation, Job::Configuration],
                commands: vec![CommandCode::CreateChannelRequest],
                requires_garbage: true,
                requires_abnormal_psm: false,
                requires_cidp_mismatch: false,
                requires_abnormal_spsm: false,
                requires_abnormal_credits: false,
                requires_abnormal_ertm_option: false,
                hit_probability,
            },
            effect: Effect::DenialOfService,
            crash_kind: CrashKind::NullPointerDereference,
            produces_dump: true,
        }
    }

    /// The AirPods firmware crash on a malicious PSM value (D5): the device
    /// terminates without any control.
    pub fn rtkit_psm_crash(hit_probability: f64) -> Self {
        VulnerabilitySpec {
            id: "SIM-RTKIT-PSM-CRASH".to_owned(),
            description: "uncontrolled firmware termination on abnormal PSM value".to_owned(),
            trigger: Trigger {
                jobs: vec![Job::Closed, Job::Open, Job::Connection],
                commands: vec![
                    CommandCode::ConnectionRequest,
                    CommandCode::CreateChannelRequest,
                ],
                requires_garbage: false,
                requires_abnormal_psm: true,
                requires_cidp_mismatch: false,
                requires_abnormal_spsm: false,
                requires_abnormal_credits: false,
                requires_abnormal_ertm_option: false,
                hit_probability,
            },
            effect: Effect::Crash,
            crash_kind: CrashKind::UncontrolledTermination,
            produces_dump: false,
        }
    }

    /// LE credit-accounting defect of the simulated LE-only wearable (D9): a
    /// credit-based connect or credit grant carrying an abnormal credit count
    /// (zero-credit stall or an overflow-prone grant) drives the stack's
    /// credit arithmetic into a signed underflow and the service exits.
    pub fn zephyr_credit_underflow_dos(hit_probability: f64) -> Self {
        VulnerabilitySpec {
            id: "SIM-ZEPHYR-LE-CREDIT-UNDERFLOW".to_owned(),
            description: "credit-accounting underflow on abnormal initial credits or credit \
                          grants over an LE credit-based channel (DoS)"
                .to_owned(),
            trigger: Trigger {
                jobs: vec![Job::Closed, Job::Connection, Job::Configuration, Job::Open],
                commands: vec![
                    CommandCode::LeCreditBasedConnectionRequest,
                    CommandCode::FlowControlCreditInd,
                ],
                requires_garbage: false,
                requires_abnormal_psm: false,
                requires_cidp_mismatch: false,
                requires_abnormal_spsm: false,
                requires_abnormal_credits: true,
                requires_abnormal_ertm_option: false,
                hit_probability,
            },
            effect: Effect::DenialOfService,
            crash_kind: CrashKind::NullPointerDereference,
            produces_dump: true,
        }
    }

    /// SPSM-confusion crash of the simulated dual-mode phone (D10): an
    /// enhanced credit-based connection request naming an SPSM outside the
    /// defined space, whose channel list ignores the device's allocations,
    /// indexes past the stack's registration table.  (The command's SCID
    /// list is variable-length, so a garbage-tail condition cannot apply —
    /// the CIDP mismatch is the malformed marker instead.)
    pub fn bluedroid_spsm_confusion_crash(hit_probability: f64) -> Self {
        VulnerabilitySpec {
            id: "SIM-BLUEDROID-SPSM-OOB".to_owned(),
            description: "out-of-bounds SPSM registration lookup on enhanced credit-based \
                          connect with undefined SPSM and unallocated CIDs (crash)"
                .to_owned(),
            trigger: Trigger {
                jobs: vec![Job::Closed, Job::Connection, Job::Open],
                commands: vec![CommandCode::CreditBasedConnectionRequest],
                requires_garbage: false,
                requires_abnormal_psm: false,
                requires_cidp_mismatch: true,
                requires_abnormal_spsm: true,
                requires_abnormal_credits: false,
                requires_abnormal_ertm_option: false,
                hit_probability,
            },
            effect: Effect::Crash,
            crash_kind: CrashKind::GeneralProtectionFault,
            produces_dump: true,
        }
    }

    /// ERTM mode-confusion defect of the simulated BlueZ speaker (D11): a
    /// Configuration Request selecting ERTM or streaming mode with a zero
    /// transmit window (or an impossible MPS) leaves the retransmission
    /// engine dividing by its window size.
    pub fn bluez_ertm_mode_confusion_dos(hit_probability: f64) -> Self {
        VulnerabilitySpec {
            id: "SIM-BLUEZ-ERTM-ZERO-WINDOW".to_owned(),
            description: "retransmission-engine division by a zero transmit window when ERTM/\
                          streaming mode is configured with abnormal parameters (DoS)"
                .to_owned(),
            trigger: Trigger {
                jobs: vec![Job::Configuration, Job::Open],
                commands: vec![CommandCode::ConfigureRequest],
                requires_garbage: false,
                requires_abnormal_psm: false,
                requires_cidp_mismatch: false,
                requires_abnormal_spsm: false,
                requires_abnormal_credits: false,
                requires_abnormal_ertm_option: true,
                hit_probability,
            },
            effect: Effect::DenialOfService,
            crash_kind: CrashKind::NullPointerDereference,
            produces_dump: true,
        }
    }

    /// The BlueZ laptop general-protection crash (D8): a narrow path deep in
    /// configuration handling, hence the very low hit probability and the
    /// hours-long time to detection in Table VI.
    pub fn bluez_general_protection(hit_probability: f64) -> Self {
        VulnerabilitySpec {
            id: "SIM-BLUEZ-GP-FAULT".to_owned(),
            description: "general protection fault in l2cap_recv_frame on malformed \
                          configuration traffic with oversized garbage"
                .to_owned(),
            trigger: Trigger {
                jobs: vec![Job::Configuration, Job::Open],
                commands: vec![
                    CommandCode::ConfigureRequest,
                    CommandCode::ConfigureResponse,
                ],
                requires_garbage: true,
                requires_abnormal_psm: false,
                requires_cidp_mismatch: true,
                requires_abnormal_spsm: false,
                requires_abnormal_credits: false,
                requires_abnormal_ertm_option: false,
                hit_probability,
            },
            effect: Effect::Crash,
            crash_kind: CrashKind::GeneralProtectionFault,
            produces_dump: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config_ctx() -> PacketContext {
        PacketContext {
            job: Job::Configuration,
            state: ChannelState::WaitConfigReqRsp,
            code: Some(CommandCode::ConfigureRequest),
            psm: None,
            cidp: l2cap::fields::CidpValues::from_slice(&[0x8F7B]),
            cidp_matches_allocation: false,
            garbage_len: 4,
            length_consistent: false,
            spsm: None,
            credits: None,
            rfc_option: None,
        }
    }

    #[test]
    fn case_study_packet_triggers_bluedroid_null_deref() {
        let vuln = VulnerabilitySpec::bluedroid_config_null_deref(1.0);
        assert!(vuln.trigger.matches(&config_ctx()));
        assert_eq!(vuln.effect, Effect::DenialOfService);
        assert!(vuln.produces_dump);
    }

    #[test]
    fn well_formed_config_request_does_not_trigger() {
        let vuln = VulnerabilitySpec::bluedroid_config_null_deref(1.0);
        let mut ctx = config_ctx();
        ctx.garbage_len = 0;
        ctx.cidp_matches_allocation = true;
        assert!(!vuln.trigger.matches(&ctx));
    }

    #[test]
    fn wrong_job_does_not_trigger() {
        let vuln = VulnerabilitySpec::bluedroid_config_null_deref(1.0);
        let mut ctx = config_ctx();
        ctx.job = Job::Open;
        assert!(!vuln.trigger.matches(&ctx));
    }

    #[test]
    fn garbage_required_for_null_deref() {
        let vuln = VulnerabilitySpec::bluedroid_config_null_deref(1.0);
        let mut ctx = config_ctx();
        ctx.garbage_len = 0;
        assert!(!vuln.trigger.matches(&ctx));
    }

    #[test]
    fn psm_crash_requires_abnormal_psm() {
        let vuln = VulnerabilitySpec::rtkit_psm_crash(1.0);
        let ctx = PacketContext {
            job: Job::Closed,
            state: ChannelState::Closed,
            code: Some(CommandCode::ConnectionRequest),
            psm: Some(0x0101),
            cidp: l2cap::fields::CidpValues::from_slice(&[0x0040]),
            cidp_matches_allocation: false,
            garbage_len: 0,
            length_consistent: true,
            spsm: None,
            credits: None,
            rfc_option: None,
        };
        assert!(vuln.trigger.matches(&ctx));
        let normal_psm = PacketContext {
            psm: Some(0x0001),
            ..ctx
        };
        assert!(!vuln.trigger.matches(&normal_psm));
        let no_psm = PacketContext {
            psm: None,
            ..normal_psm
        };
        assert!(!vuln.trigger.matches(&no_psm));
    }

    #[test]
    fn create_channel_vuln_matches_create_command_only() {
        let vuln = VulnerabilitySpec::bluedroid_create_channel_dos(1.0);
        let ctx = PacketContext {
            job: Job::Creation,
            state: ChannelState::WaitCreate,
            code: Some(CommandCode::CreateChannelRequest),
            psm: Some(0x0001),
            cidp: l2cap::fields::CidpValues::from_slice(&[0x0044]),
            cidp_matches_allocation: true,
            garbage_len: 8,
            length_consistent: false,
            spsm: None,
            credits: None,
            rfc_option: None,
        };
        assert!(vuln.trigger.matches(&ctx));
        let wrong_cmd = PacketContext {
            code: Some(CommandCode::ConnectionRequest),
            ..ctx
        };
        assert!(!vuln.trigger.matches(&wrong_cmd));
    }

    #[test]
    fn cidp_mismatch_condition_needs_a_cidp_value() {
        let vuln = VulnerabilitySpec::bluez_general_protection(1.0);
        let mut ctx = config_ctx();
        ctx.cidp = l2cap::fields::CidpValues::default();
        assert!(!vuln.trigger.matches(&ctx));
    }

    #[test]
    fn le_credit_vuln_requires_an_abnormal_credit_count() {
        let vuln = VulnerabilitySpec::zephyr_credit_underflow_dos(1.0);
        let ctx = PacketContext {
            job: Job::Closed,
            state: ChannelState::Closed,
            code: Some(CommandCode::LeCreditBasedConnectionRequest),
            psm: None,
            cidp: l2cap::fields::CidpValues::from_slice(&[0x0040]),
            cidp_matches_allocation: false,
            garbage_len: 0,
            length_consistent: true,
            spsm: Some(0x0080),
            credits: Some(0),
            rfc_option: None,
        };
        assert!(vuln.trigger.matches(&ctx), "zero credits must match");
        let overflow = PacketContext {
            credits: Some(0xFFFF),
            ..ctx.clone()
        };
        assert!(vuln.trigger.matches(&overflow), "overflow grant matches");
        let normal = PacketContext {
            credits: Some(8),
            ..ctx.clone()
        };
        assert!(!vuln.trigger.matches(&normal), "normal credits must not");
        let absent = PacketContext {
            credits: None,
            ..ctx
        };
        assert!(!vuln.trigger.matches(&absent));
    }

    #[test]
    fn spsm_confusion_vuln_requires_abnormal_spsm_and_cidp_mismatch() {
        let vuln = VulnerabilitySpec::bluedroid_spsm_confusion_crash(1.0);
        let ctx = PacketContext {
            job: Job::Closed,
            state: ChannelState::Closed,
            code: Some(CommandCode::CreditBasedConnectionRequest),
            psm: None,
            cidp: l2cap::fields::CidpValues::from_slice(&[0x0040]),
            cidp_matches_allocation: false,
            garbage_len: 0,
            length_consistent: true,
            spsm: Some(0x1234),
            credits: Some(8),
            rfc_option: None,
        };
        assert!(vuln.trigger.matches(&ctx));
        let defined_spsm = PacketContext {
            spsm: Some(0x0080),
            ..ctx.clone()
        };
        assert!(!vuln.trigger.matches(&defined_spsm));
        let allocated_cids = PacketContext {
            cidp_matches_allocation: true,
            ..ctx
        };
        assert!(!vuln.trigger.matches(&allocated_cids));
    }

    #[test]
    fn ertm_vuln_requires_an_abnormal_retransmission_option() {
        use l2cap::options::RetransmissionConfig;
        let vuln = VulnerabilitySpec::bluez_ertm_mode_confusion_dos(1.0);
        let abnormal = RetransmissionConfig {
            mode: 3,
            tx_window: 0,
            max_transmit: 1,
            retransmission_timeout: 2000,
            monitor_timeout: 12000,
            mps: 0,
        };
        let ctx = PacketContext {
            job: Job::Configuration,
            state: ChannelState::WaitConfigReqRsp,
            code: Some(CommandCode::ConfigureRequest),
            psm: None,
            cidp: l2cap::fields::CidpValues::from_slice(&[0x0040]),
            cidp_matches_allocation: true,
            garbage_len: 0,
            length_consistent: true,
            spsm: None,
            credits: None,
            rfc_option: Some(abnormal),
        };
        assert!(vuln.trigger.matches(&ctx));
        // A well-formed ERTM option (sane window and MPS) does not match.
        let sane = PacketContext {
            rfc_option: Some(RetransmissionConfig {
                tx_window: 8,
                mps: 1010,
                ..abnormal
            }),
            ..ctx.clone()
        };
        assert!(!vuln.trigger.matches(&sane));
        // Basic mode never matches, however broken the parameters.
        let basic = PacketContext {
            rfc_option: Some(RetransmissionConfig {
                mode: 0,
                ..abnormal
            }),
            ..ctx.clone()
        };
        assert!(!vuln.trigger.matches(&basic));
        let none = PacketContext {
            rfc_option: None,
            ..ctx
        };
        assert!(!vuln.trigger.matches(&none));
    }

    #[test]
    fn empty_job_and_command_lists_match_anything() {
        let trigger = Trigger {
            jobs: vec![],
            commands: vec![],
            requires_garbage: false,
            requires_abnormal_psm: false,
            requires_cidp_mismatch: false,
            requires_abnormal_spsm: false,
            requires_abnormal_credits: false,
            requires_abnormal_ertm_option: false,
            hit_probability: 1.0,
        };
        assert!(trigger.matches(&config_ctx()));
    }
}
