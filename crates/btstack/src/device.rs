//! The complete simulated device: endpoints + host status + crash dumps.
//!
//! [`SimulatedDevice`] is what gets registered on the virtual medium.  It
//! owns one L2CAP acceptor *per established link* — every link slot gets an
//! isolated CID space and channel state, which is what lets concurrent
//! initiators (and a dual-transport pair of them) fuzz one device without
//! cross-talk — tracks whether the Bluetooth service is still running,
//! applies the effects of fired vulnerabilities (denial of service or
//! crash, both device-wide: a dead stack answers on no link) and stores the
//! crash dumps the detection phase later collects through the
//! [`btcore::TargetOracle`] interface.

use btcore::{
    splitmix64, ConnectionError, DeviceMeta, FuzzRng, LinkSlot, LinkType, PingOutcome, SimClock,
    TargetOracle,
};
use hci::device::VirtualDevice;
use l2cap::packet::L2capFrame;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

use crate::crashdump::{CrashDump, CrashDumpStore, CrashKind};
use crate::endpoint::L2capEndpoint;
use crate::services::ServiceTable;
use crate::vendor::Quirks;
use crate::vuln::{Effect, VulnerabilitySpec};

/// Run-state of a simulated device's Bluetooth subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostStatus {
    /// Bluetooth service is running normally.
    Running,
    /// The Bluetooth service terminated (denial of service).
    DosTerminated,
    /// The device (or its Bluetooth subsystem) crashed.
    Crashed,
}

/// A fired vulnerability, recorded with the time it happened.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FiredVulnerability {
    /// The specification that fired.
    pub vuln: VulnerabilitySpec,
    /// Virtual-clock timestamp in microseconds.
    pub timestamp_micros: u64,
}

/// A complete simulated target device.
pub struct SimulatedDevice {
    meta: DeviceMeta,
    /// One isolated acceptor per link slot, indexed by slot number.  Slot 0
    /// is built eagerly at construction (with the constructor's RNG, so
    /// single-link behaviour is unchanged); further slots appear as links
    /// attach.
    endpoints: Vec<L2capEndpoint>,
    quirks: Quirks,
    /// Template for extra acceptors on the primary transport.
    services: ServiceTable,
    /// Template for acceptors on the other transport, present on dual-mode
    /// devices.
    alt_services: Option<ServiceTable>,
    vulns: Arc<[VulnerabilitySpec]>,
    /// Base of the derived RNG streams for extra acceptors.
    endpoint_seed: u64,
    status: HostStatus,
    crash_dumps: CrashDumpStore,
    fired: Vec<FiredVulnerability>,
    clock: SimClock,
    processing_cost_micros: u64,
    auto_restart: bool,
}

impl SimulatedDevice {
    /// Creates a device from its parts.
    ///
    /// `processing_cost_micros` is the virtual time charged per processed
    /// frame; devices with more services and deeper application logic use
    /// larger values.
    pub fn new(
        meta: DeviceMeta,
        quirks: Quirks,
        services: ServiceTable,
        vulns: impl Into<std::sync::Arc<[VulnerabilitySpec]>>,
        clock: SimClock,
        processing_cost_micros: u64,
        rng: FuzzRng,
    ) -> Self {
        // The primary endpoint serves whatever transport the metadata
        // announces, so an LE-only profile automatically gets the LE
        // acceptor.
        let link_type = meta.link_type;
        let vulns = vulns.into();
        let endpoint_seed = rng.seed();
        SimulatedDevice {
            meta,
            endpoints: vec![L2capEndpoint::new_on(
                link_type,
                quirks,
                services.clone(),
                vulns.clone(),
                rng,
            )],
            quirks,
            services,
            alt_services: None,
            vulns,
            endpoint_seed,
            status: HostStatus::Running,
            crash_dumps: CrashDumpStore::new(),
            fired: Vec::new(),
            clock,
            processing_cost_micros,
            auto_restart: false,
        }
    }

    /// Makes the device dual-mode: links over the transport *other* than the
    /// primary one are accepted and served from `services`.
    pub fn enable_dual_mode(&mut self, services: ServiceTable) {
        self.alt_services = Some(services);
    }

    /// The transport opposite the device's primary one.
    fn other_link_type(&self) -> LinkType {
        match self.meta.link_type {
            LinkType::BrEdr => LinkType::Le,
            LinkType::Le => LinkType::BrEdr,
        }
    }

    /// Builds a fresh acceptor for `slot` over `link_type`, with its RNG
    /// stream derived from the device seed, the slot and the transport so
    /// every acceptor is independent and the whole device stays a pure
    /// function of its construction seed.
    fn build_endpoint(&self, slot: LinkSlot, link_type: LinkType) -> L2capEndpoint {
        let services = if link_type == self.meta.link_type {
            self.services.clone()
        } else {
            self.alt_services
                .clone()
                .expect("endpoint for unsupported transport")
        };
        let tag = u64::from(slot.0) << 1 | u64::from(link_type.is_le());
        let rng = FuzzRng::seed_from(splitmix64(self.endpoint_seed ^ tag ^ 0x51A7_E11D));
        L2capEndpoint::new_on(link_type, self.quirks, services, self.vulns.clone(), rng)
    }

    /// Enables automatic restart of the Bluetooth service after a
    /// vulnerability fires.  This models the tester manually resetting the
    /// device between tests, which the comparison experiments (§IV-C/D) need
    /// in order to keep sending packets to the same target.
    pub fn set_auto_restart(&mut self, enabled: bool) {
        self.auto_restart = enabled;
    }

    /// Current host status.
    pub fn status(&self) -> HostStatus {
        self.status
    }

    /// Every vulnerability that has fired so far, in order.
    pub fn fired_vulnerabilities(&self) -> &[FiredVulnerability] {
        &self.fired
    }

    /// The crash dumps recorded so far.
    pub fn crash_dumps(&self) -> &[CrashDump] {
        self.crash_dumps.all()
    }

    /// The device's service table (primary transport).
    pub fn services(&self) -> &ServiceTable {
        &self.services
    }

    /// Number of link slots with an acceptor (at least one).
    pub fn link_count(&self) -> usize {
        self.endpoints.len()
    }

    /// Restarts the Bluetooth service (the "manual reset" of the paper's
    /// limitation discussion).  Crash dumps and fired-vulnerability history
    /// are preserved.
    pub fn restart(&mut self) {
        self.status = HostStatus::Running;
    }

    fn apply_effect(&mut self, vuln: &VulnerabilitySpec) {
        let now = self.clock.now_micros();
        self.fired.push(FiredVulnerability {
            vuln: vuln.clone(),
            timestamp_micros: now,
        });
        if vuln.produces_dump {
            let dump = match vuln.crash_kind {
                CrashKind::NullPointerDereference => CrashDump::bluedroid_tombstone(&vuln.id, now),
                CrashKind::GeneralProtectionFault => {
                    CrashDump::bluez_general_protection(&vuln.id, now)
                }
                CrashKind::UncontrolledTermination => {
                    CrashDump::uncontrolled_termination(&vuln.id, now)
                }
            };
            self.crash_dumps.record(dump);
        }
        self.status = match vuln.effect {
            Effect::DenialOfService => HostStatus::DosTerminated,
            Effect::Crash => HostStatus::Crashed,
        };
        if self.auto_restart {
            self.status = HostStatus::Running;
        }
    }
}

impl VirtualDevice for SimulatedDevice {
    fn meta(&self) -> DeviceMeta {
        self.meta.clone()
    }

    fn supports_link(&self, link_type: LinkType) -> bool {
        link_type == self.meta.link_type
            || (self.alt_services.is_some() && link_type == self.other_link_type())
    }

    fn attach_link(&mut self, slot: LinkSlot, link_type: LinkType) {
        let index = usize::from(slot.0);
        if index == 0 && link_type == self.endpoints[0].link_type() {
            // The eagerly built primary acceptor already serves this link;
            // replacing it would perturb single-link RNG streams.
            return;
        }
        while self.endpoints.len() < index {
            let fill = LinkSlot(self.endpoints.len() as u16);
            self.endpoints
                .push(self.build_endpoint(fill, self.meta.link_type));
        }
        let endpoint = self.build_endpoint(slot, link_type);
        if self.endpoints.len() == index {
            self.endpoints.push(endpoint);
        } else {
            self.endpoints[index] = endpoint;
        }
    }

    fn receive(&mut self, slot: LinkSlot, frame: &L2capFrame) -> Vec<L2capFrame> {
        if self.status != HostStatus::Running {
            return Vec::new();
        }
        let Some(endpoint) = self.endpoints.get_mut(usize::from(slot.0)) else {
            // Frame on a never-attached slot: nobody serves it.
            return Vec::new();
        };
        let outcome = endpoint.handle_frame(frame);
        if let Some(vuln) = outcome.triggered {
            self.apply_effect(&vuln);
            return Vec::new();
        }
        outcome.responses
    }

    fn bluetooth_alive(&self) -> bool {
        self.status == HostStatus::Running
    }

    fn processing_cost_micros(&self) -> u64 {
        self.processing_cost_micros
    }
}

/// Shared, lockable handle to a simulated device.
pub type SharedSimulatedDevice = Arc<Mutex<SimulatedDevice>>;

/// Wraps a device into a typed shared handle (for out-of-band observation —
/// the oracle) plus the same handle as a [`hci::device::SharedDevice`] ready
/// to register on the air medium.
///
/// Both handles are the *same* `Arc`: the air medium talks to the device
/// through one mutex, not through a forwarding adapter that re-locks an
/// inner one on every per-packet trait call.
pub fn share(device: SimulatedDevice) -> (SharedSimulatedDevice, hci::device::SharedDevice) {
    let shared = Arc::new(Mutex::new(device));
    (shared.clone(), shared)
}

/// Out-of-band observation of a simulated device (crash-dump collection and
/// service liveness), as the original tool performs via `adb` or `ssh`.
pub struct DeviceOracle {
    device: SharedSimulatedDevice,
}

impl DeviceOracle {
    /// Creates an oracle over the shared device handle.
    pub fn new(device: SharedSimulatedDevice) -> Self {
        DeviceOracle { device }
    }
}

impl TargetOracle for DeviceOracle {
    fn ping(&mut self) -> PingOutcome {
        let dev = self.device.lock();
        match dev.status() {
            HostStatus::Running => PingOutcome::Answered,
            HostStatus::DosTerminated => PingOutcome::Failed(ConnectionError::Failed),
            HostStatus::Crashed => PingOutcome::Failed(ConnectionError::Aborted),
        }
    }

    fn take_crash_dump(&mut self) -> bool {
        self.device.lock().crash_dumps.take_new()
    }

    fn bluetooth_alive(&self) -> bool {
        self.device.lock().bluetooth_alive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vendor::VendorStack;
    use btcore::{BdAddr, Cid, DeviceClass, Identifier, Psm};
    use l2cap::command::{Command, ConnectionRequest};
    use l2cap::packet::{signaling_frame, SignalingPacket};

    fn pixel_like(vuln_probability: f64) -> SimulatedDevice {
        SimulatedDevice::new(
            DeviceMeta::new(
                BdAddr::new([1, 2, 3, 4, 5, 6]),
                "Pixel 3",
                DeviceClass::Smartphone,
            ),
            VendorStack::BlueDroid.default_quirks(),
            ServiceTable::typical(8),
            vec![VulnerabilitySpec::bluedroid_config_null_deref(
                vuln_probability,
            )],
            SimClock::new(),
            200,
            FuzzRng::seed_from(21),
        )
    }

    fn connect(dev: &mut SimulatedDevice) {
        let frame = signaling_frame(
            Identifier(1),
            Command::ConnectionRequest(ConnectionRequest {
                psm: Psm::SDP,
                scid: Cid(0x0040),
            }),
        );
        assert!(!dev.receive(LinkSlot::PRIMARY, &frame).is_empty());
    }

    fn malformed_config(dev: &mut SimulatedDevice) -> Vec<L2capFrame> {
        let packet = SignalingPacket {
            identifier: Identifier(6),
            code: 0x04,
            declared_data_len: 8,
            data: vec![0x8F, 0x7B, 0, 0, 0, 0, 0, 0, 0xD2, 0x3A, 0x91, 0x0E].into(),
        };
        dev.receive(LinkSlot::PRIMARY, &packet.into_frame())
    }

    #[test]
    fn dos_vulnerability_terminates_bluetooth_and_leaves_a_tombstone() {
        let mut dev = pixel_like(1.0);
        connect(&mut dev);
        assert_eq!(dev.status(), HostStatus::Running);
        let responses = malformed_config(&mut dev);
        assert!(responses.is_empty());
        assert_eq!(dev.status(), HostStatus::DosTerminated);
        assert_eq!(dev.crash_dumps().len(), 1);
        assert_eq!(dev.crash_dumps()[0].kind, CrashKind::NullPointerDereference);
        assert_eq!(dev.fired_vulnerabilities().len(), 1);
        assert!(!dev.bluetooth_alive());
        // Once down, the device no longer answers anything.
        connect_silent(&mut dev);
    }

    fn connect_silent(dev: &mut SimulatedDevice) {
        let frame = signaling_frame(
            Identifier(9),
            Command::ConnectionRequest(ConnectionRequest {
                psm: Psm::SDP,
                scid: Cid(0x0050),
            }),
        );
        assert!(dev.receive(LinkSlot::PRIMARY, &frame).is_empty());
    }

    #[test]
    fn oracle_reports_dos_and_crash_dumps() {
        let (shared, adapter) = share(pixel_like(1.0));
        let mut oracle = DeviceOracle::new(shared.clone());
        assert!(oracle.ping().is_answered());
        assert!(!oracle.take_crash_dump());

        // Drive the device through the adapter, as the air medium would.
        let frame = signaling_frame(
            Identifier(1),
            Command::ConnectionRequest(ConnectionRequest {
                psm: Psm::SDP,
                scid: Cid(0x0040),
            }),
        );
        adapter.lock().receive(LinkSlot::PRIMARY, &frame);
        let packet = SignalingPacket {
            identifier: Identifier(6),
            code: 0x04,
            declared_data_len: 8,
            data: vec![0x8F, 0x7B, 0, 0, 0, 0, 0, 0, 0xD2, 0x3A, 0x91, 0x0E].into(),
        };
        adapter
            .lock()
            .receive(LinkSlot::PRIMARY, &packet.into_frame());

        assert!(!oracle.bluetooth_alive());
        assert_eq!(oracle.ping(), PingOutcome::Failed(ConnectionError::Failed));
        assert!(oracle.take_crash_dump());
        assert!(!oracle.take_crash_dump());
    }

    #[test]
    fn restart_revives_the_service_but_keeps_history() {
        let mut dev = pixel_like(1.0);
        connect(&mut dev);
        malformed_config(&mut dev);
        assert_eq!(dev.status(), HostStatus::DosTerminated);
        dev.restart();
        assert_eq!(dev.status(), HostStatus::Running);
        assert_eq!(dev.fired_vulnerabilities().len(), 1);
        assert_eq!(dev.crash_dumps().len(), 1);
    }

    #[test]
    fn auto_restart_keeps_the_device_responsive() {
        let mut dev = pixel_like(1.0);
        dev.set_auto_restart(true);
        connect(&mut dev);
        malformed_config(&mut dev);
        assert_eq!(dev.status(), HostStatus::Running);
        assert!(dev.bluetooth_alive());
        assert_eq!(dev.fired_vulnerabilities().len(), 1);
    }

    #[test]
    fn device_without_matching_traffic_stays_healthy() {
        let mut dev = pixel_like(1.0);
        connect(&mut dev);
        // Plenty of well-formed traffic.
        for i in 0..50u8 {
            let frame = signaling_frame(
                Identifier(i.max(1)),
                Command::EchoRequest(l2cap::command::EchoRequest { data: vec![i] }),
            );
            assert!(!dev.receive(LinkSlot::PRIMARY, &frame).is_empty());
        }
        assert_eq!(dev.status(), HostStatus::Running);
        assert!(dev.fired_vulnerabilities().is_empty());
    }
}
