//! The eight test-device profiles of the paper's Table V.
//!
//! Each profile records the descriptive columns of Table V (vendor, model,
//! chip, OS/firmware, Bluetooth stack and version) and the simulation
//! parameters derived from them: the vendor stack quirks, the number of
//! service ports, the per-frame processing cost, and the seeded
//! vulnerabilities corresponding to the zero-days the paper found on that
//! device (none for D4, D6 and D7).

use btcore::{BdAddr, DeviceClass, DeviceMeta, FuzzRng, LinkType, SimClock};
use serde::{Deserialize, Serialize};

use crate::device::SimulatedDevice;
use crate::services::ServiceTable;
use crate::vendor::VendorStack;
use crate::vuln::VulnerabilitySpec;

/// Identifier of one of the paper's eight test devices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ProfileId {
    D1,
    D2,
    D3,
    D4,
    D5,
    D6,
    D7,
    D8,
    /// Extended scenario device (beyond the paper's Table V): LE-only
    /// wearable.
    D9,
    /// Extended scenario device: dual-mode phone fuzzed over its LE-U link.
    D10,
    /// Extended scenario device: ERTM-capable BR/EDR audio device.
    D11,
}

serde_json::stream_unit_enum!(ProfileId);
serde_json::stream_unit_enum_de!(ProfileId);

impl ProfileId {
    /// All eight devices in Table V order.
    pub const ALL: [ProfileId; 8] = [
        ProfileId::D1,
        ProfileId::D2,
        ProfileId::D3,
        ProfileId::D4,
        ProfileId::D5,
        ProfileId::D6,
        ProfileId::D7,
        ProfileId::D8,
    ];

    /// The extended scenario devices this reproduction adds beyond Table V:
    /// an LE-only wearable, a dual-mode phone fuzzed over LE, and an
    /// ERTM-capable audio device.
    pub const EXTENDED: [ProfileId; 3] = [ProfileId::D9, ProfileId::D10, ProfileId::D11];
}

impl std::fmt::Display for ProfileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::str::FromStr for ProfileId {
    type Err = String;

    /// Parses a profile name (`"D1"` … `"D11"`), as the service CLI's
    /// `--targets` flag spells them.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ProfileId::ALL
            .into_iter()
            .chain(ProfileId::EXTENDED)
            .find(|id| id.to_string() == s)
            .ok_or_else(|| format!("unknown device profile `{s}` (expected D1..D11)"))
    }
}

/// A full device profile: the descriptive Table V columns plus simulation
/// parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Which of D1–D8 this is.
    pub id: ProfileId,
    /// Device type column of Table V.
    pub device_type: String,
    /// Vendor column.
    pub vendor: String,
    /// Device name column.
    pub name: String,
    /// Release year.
    pub year: u16,
    /// Model column.
    pub model: String,
    /// Chip column.
    pub chip: String,
    /// OS or firmware column.
    pub os_or_firmware: String,
    /// Bluetooth stack column.
    pub stack: VendorStack,
    /// Bluetooth version column.
    pub bt_version: String,
    /// The transport the campaign fuzzes this device over.
    pub link_type: LinkType,
    /// Whether the device also serves the *other* transport (a dual-mode
    /// controller).  A dual-mode device accepts links over both BR/EDR and
    /// LE at once, each with its own isolated acceptor.
    pub dual_mode: bool,
    /// Bluetooth device address used in the simulation.
    pub addr: BdAddr,
    /// Device class broadcast during inquiry.
    pub class: DeviceClass,
    /// Number of service ports the device exposes (drives scan and detection
    /// time).
    pub service_ports: usize,
    /// Virtual processing time per frame in microseconds (models application
    /// logic complexity).
    pub processing_cost_micros: u64,
    /// Hit probability of each seeded vulnerability (empty = no known
    /// vulnerability, matching the paper's D4/D6/D7 results).
    pub vuln_probabilities: Vec<(String, f64)>,
}

impl DeviceProfile {
    /// Returns the profile for one of the paper's devices (D1–D8) or one of
    /// this reproduction's extended scenario devices (D9–D11; not part of
    /// the paper's Table V, see [`ProfileId::EXTENDED`]).
    pub fn table5(id: ProfileId) -> DeviceProfile {
        match id {
            ProfileId::D9 => DeviceProfile {
                id,
                device_type: "Wearable".into(),
                vendor: "Samsung".into(),
                name: "Galaxy Fit e".into(),
                year: 2019,
                model: "SM-R375".into(),
                chip: "nRF52832".into(),
                os_or_firmware: "R375XXU0ASH2".into(),
                stack: VendorStack::Zephyr,
                bt_version: "5.0 LE only".into(),
                link_type: LinkType::Le,
                dual_mode: false,
                addr: BdAddr::new([0xC8, 0x7B, 0x23, 0x10, 0x00, 0x09]),
                class: DeviceClass::Wearable,
                service_ports: 3,
                processing_cost_micros: 110,
                vuln_probabilities: vec![("zephyr-le-credit-underflow".into(), 0.060)],
            },
            ProfileId::D10 => DeviceProfile {
                id,
                device_type: "Smartphone".into(),
                vendor: "Google".into(),
                name: "Pixel 6 (LE)".into(),
                year: 2021,
                model: "GB7N6".into(),
                chip: "Tensor G1".into(),
                os_or_firmware: "Android 13".into(),
                stack: VendorStack::BlueDroid,
                bt_version: "5.2 dual mode".into(),
                link_type: LinkType::Le,
                dual_mode: true,
                addr: BdAddr::new([0xF8, 0x8F, 0xCA, 0x10, 0x00, 0x0A]),
                class: DeviceClass::Smartphone,
                service_ports: 5,
                processing_cost_micros: 190,
                vuln_probabilities: vec![("bluedroid-spsm-confusion".into(), 0.100)],
            },
            ProfileId::D11 => DeviceProfile {
                id,
                device_type: "Speaker".into(),
                vendor: "Sonos".into(),
                name: "Move".into(),
                year: 2019,
                model: "S17".into(),
                chip: "AMLogic A113".into(),
                os_or_firmware: "Sonos OS S2".into(),
                stack: VendorStack::BlueZ,
                bt_version: "5.0 + EDR".into(),
                link_type: LinkType::BrEdr,
                dual_mode: false,
                addr: BdAddr::new([0x34, 0xE1, 0x2D, 0x10, 0x00, 0x0B]),
                class: DeviceClass::Audio,
                service_ports: 6,
                processing_cost_micros: 230,
                vuln_probabilities: vec![("bluez-ertm-mode-confusion".into(), 0.040)],
            },
            ProfileId::D1 => DeviceProfile {
                id,
                device_type: "Tablet PC".into(),
                vendor: "Google".into(),
                name: "Nexus 7".into(),
                year: 2013,
                model: "ASUS-1A005A".into(),
                chip: "Snapdragon 600".into(),
                os_or_firmware: "Android 6.0.1".into(),
                stack: VendorStack::BlueDroid,
                bt_version: "4.0 + LE".into(),
                link_type: LinkType::BrEdr,
                dual_mode: false,
                addr: BdAddr::new([0xF8, 0x8F, 0xCA, 0x10, 0x00, 0x01]),
                class: DeviceClass::Tablet,
                service_ports: 7,
                processing_cost_micros: 260,
                vuln_probabilities: vec![("bluedroid-config-null-deref".into(), 0.050)],
            },
            ProfileId::D2 => DeviceProfile {
                id,
                device_type: "Smartphone".into(),
                vendor: "Google".into(),
                name: "Pixel 3".into(),
                year: 2018,
                model: "GA00464".into(),
                chip: "Snapdragon 845".into(),
                os_or_firmware: "Android 11.0.1".into(),
                stack: VendorStack::BlueDroid,
                bt_version: "5.0 + LE".into(),
                link_type: LinkType::BrEdr,
                dual_mode: false,
                addr: BdAddr::new([0xF8, 0x8F, 0xCA, 0x10, 0x00, 0x02]),
                class: DeviceClass::Smartphone,
                service_ports: 8,
                processing_cost_micros: 220,
                vuln_probabilities: vec![("bluedroid-config-null-deref".into(), 0.060)],
            },
            ProfileId::D3 => DeviceProfile {
                id,
                device_type: "Smartphone".into(),
                vendor: "Samsung".into(),
                name: "Galaxy 7".into(),
                year: 2016,
                model: "SM-G930L".into(),
                chip: "Exynos 8890".into(),
                os_or_firmware: "Android 8.0.0".into(),
                stack: VendorStack::BlueDroid,
                bt_version: "4.2".into(),
                link_type: LinkType::BrEdr,
                dual_mode: false,
                addr: BdAddr::new([0x84, 0x25, 0xDB, 0x10, 0x00, 0x03]),
                class: DeviceClass::Smartphone,
                service_ports: 9,
                processing_cost_micros: 300,
                vuln_probabilities: vec![("bluedroid-create-channel-dos".into(), 0.020)],
            },
            ProfileId::D4 => DeviceProfile {
                id,
                device_type: "Smartphone".into(),
                vendor: "Apple".into(),
                name: "iPhone 6S".into(),
                year: 2015,
                model: "A1688".into(),
                chip: "A9".into(),
                os_or_firmware: "iOS 15.0.2".into(),
                stack: VendorStack::AppleIos,
                bt_version: "4.2".into(),
                link_type: LinkType::BrEdr,
                dual_mode: false,
                addr: BdAddr::new([0xAC, 0xBC, 0x32, 0x10, 0x00, 0x04]),
                class: DeviceClass::Smartphone,
                service_ports: 8,
                processing_cost_micros: 200,
                vuln_probabilities: vec![],
            },
            ProfileId::D5 => DeviceProfile {
                id,
                device_type: "Earphone".into(),
                vendor: "Apple".into(),
                name: "Airpods 1 gen".into(),
                year: 2016,
                model: "A1523".into(),
                chip: "W1".into(),
                os_or_firmware: "6.8.8".into(),
                stack: VendorStack::AppleRtkit,
                bt_version: "4.2".into(),
                link_type: LinkType::BrEdr,
                dual_mode: false,
                addr: BdAddr::new([0xAC, 0xBC, 0x32, 0x10, 0x00, 0x05]),
                class: DeviceClass::Audio,
                service_ports: 6,
                processing_cost_micros: 120,
                vuln_probabilities: vec![("rtkit-psm-crash".into(), 0.100)],
            },
            ProfileId::D6 => DeviceProfile {
                id,
                device_type: "Earphone".into(),
                vendor: "Samsung".into(),
                name: "Galaxy Buds+".into(),
                year: 2020,
                model: "SM-R175NZKATUR".into(),
                chip: "BCM43015".into(),
                os_or_firmware: "R175XXU0AUG1".into(),
                stack: VendorStack::Btw,
                bt_version: "5.0 + LE".into(),
                link_type: LinkType::BrEdr,
                dual_mode: false,
                addr: BdAddr::new([0x84, 0x25, 0xDB, 0x10, 0x00, 0x06]),
                class: DeviceClass::Audio,
                service_ports: 5,
                processing_cost_micros: 140,
                vuln_probabilities: vec![],
            },
            ProfileId::D7 => DeviceProfile {
                id,
                device_type: "Laptop".into(),
                vendor: "LG".into(),
                name: "Gram 2019".into(),
                year: 2019,
                model: "15ZD990-VX50K".into(),
                chip: "Intel wireless BT".into(),
                os_or_firmware: "Windows 10".into(),
                stack: VendorStack::Windows,
                bt_version: "5.0".into(),
                link_type: LinkType::BrEdr,
                dual_mode: false,
                addr: BdAddr::new([0x34, 0xE1, 0x2D, 0x10, 0x00, 0x07]),
                class: DeviceClass::Computer,
                service_ports: 11,
                processing_cost_micros: 250,
                vuln_probabilities: vec![],
            },
            ProfileId::D8 => DeviceProfile {
                id,
                device_type: "Laptop".into(),
                vendor: "LG".into(),
                name: "Gram 2017".into(),
                year: 2017,
                model: "15ZD970-GX55K".into(),
                chip: "Intel wireless BT".into(),
                os_or_firmware: "Ubuntu 18.04.4".into(),
                stack: VendorStack::BlueZ,
                bt_version: "5.0".into(),
                link_type: LinkType::BrEdr,
                dual_mode: false,
                addr: BdAddr::new([0x34, 0xE1, 0x2D, 0x10, 0x00, 0x08]),
                class: DeviceClass::Computer,
                service_ports: 13,
                processing_cost_micros: 420,
                vuln_probabilities: vec![("bluez-general-protection".into(), 0.00015)],
            },
        }
    }

    /// All eight Table V profiles.
    pub fn all() -> Vec<DeviceProfile> {
        ProfileId::ALL
            .iter()
            .map(|id| DeviceProfile::table5(*id))
            .collect()
    }

    /// The extended scenario profiles (LE-only wearable, dual-mode phone
    /// fuzzed over LE, ERTM-capable audio device).
    pub fn extended() -> Vec<DeviceProfile> {
        ProfileId::EXTENDED
            .iter()
            .map(|id| DeviceProfile::table5(*id))
            .collect()
    }

    /// Returns `true` if the paper found a zero-day on this device.
    pub fn has_seeded_vulnerability(&self) -> bool {
        !self.vuln_probabilities.is_empty()
    }

    /// Instantiates the vulnerability specifications for this profile.
    pub fn vulnerabilities(&self) -> Vec<VulnerabilitySpec> {
        self.vuln_probabilities
            .iter()
            .map(|(kind, p)| match kind.as_str() {
                "bluedroid-config-null-deref" => VulnerabilitySpec::bluedroid_config_null_deref(*p),
                "bluedroid-create-channel-dos" => {
                    VulnerabilitySpec::bluedroid_create_channel_dos(*p)
                }
                "rtkit-psm-crash" => VulnerabilitySpec::rtkit_psm_crash(*p),
                "bluez-general-protection" => VulnerabilitySpec::bluez_general_protection(*p),
                "zephyr-le-credit-underflow" => VulnerabilitySpec::zephyr_credit_underflow_dos(*p),
                "bluedroid-spsm-confusion" => VulnerabilitySpec::bluedroid_spsm_confusion_crash(*p),
                "bluez-ertm-mode-confusion" => VulnerabilitySpec::bluez_ertm_mode_confusion_dos(*p),
                other => panic!("unknown seeded vulnerability kind {other:?}"),
            })
            .collect()
    }

    /// The service catalogue this profile exposes over the given transport.
    pub fn services_on(&self, link_type: LinkType) -> ServiceTable {
        match link_type {
            LinkType::BrEdr => ServiceTable::typical(self.service_ports),
            LinkType::Le => ServiceTable::le_typical(self.service_ports),
        }
    }

    /// Builds the simulated device for this profile.  LE profiles get the
    /// LE acceptor and the SPSM service catalogue; classic profiles are
    /// built exactly as before.  A dual-mode profile additionally serves
    /// links over the other transport, each with its own acceptor.
    pub fn build(&self, clock: SimClock, rng: FuzzRng) -> SimulatedDevice {
        let mut device = SimulatedDevice::new(
            DeviceMeta::new(self.addr, self.name.clone(), self.class)
                .with_link_type(self.link_type),
            self.stack.default_quirks(),
            self.services_on(self.link_type),
            self.vulnerabilities(),
            clock,
            self.processing_cost_micros,
            rng,
        );
        if self.dual_mode {
            let other = match self.link_type {
                LinkType::BrEdr => LinkType::Le,
                LinkType::Le => LinkType::BrEdr,
            };
            device.enable_dual_mode(self.services_on(other));
        }
        device
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn there_are_eight_profiles_with_unique_addresses() {
        let profiles = DeviceProfile::all();
        assert_eq!(profiles.len(), 8);
        let addrs: BTreeSet<_> = profiles.iter().map(|p| p.addr).collect();
        assert_eq!(addrs.len(), 8);
    }

    #[test]
    fn vulnerable_devices_match_table6() {
        let vulnerable: Vec<ProfileId> = DeviceProfile::all()
            .into_iter()
            .filter(|p| p.has_seeded_vulnerability())
            .map(|p| p.id)
            .collect();
        assert_eq!(
            vulnerable,
            vec![
                ProfileId::D1,
                ProfileId::D2,
                ProfileId::D3,
                ProfileId::D5,
                ProfileId::D8
            ]
        );
    }

    #[test]
    fn hardened_devices_have_no_seeded_vulnerability() {
        for id in [ProfileId::D4, ProfileId::D6, ProfileId::D7] {
            let p = DeviceProfile::table5(id);
            assert!(!p.has_seeded_vulnerability());
            assert!(p.vulnerabilities().is_empty());
            assert!(p.stack.default_quirks().strict_malformed_filtering);
        }
    }

    #[test]
    fn stacks_match_table5() {
        assert_eq!(
            DeviceProfile::table5(ProfileId::D1).stack,
            VendorStack::BlueDroid
        );
        assert_eq!(
            DeviceProfile::table5(ProfileId::D4).stack,
            VendorStack::AppleIos
        );
        assert_eq!(
            DeviceProfile::table5(ProfileId::D5).stack,
            VendorStack::AppleRtkit
        );
        assert_eq!(DeviceProfile::table5(ProfileId::D6).stack, VendorStack::Btw);
        assert_eq!(
            DeviceProfile::table5(ProfileId::D7).stack,
            VendorStack::Windows
        );
        assert_eq!(
            DeviceProfile::table5(ProfileId::D8).stack,
            VendorStack::BlueZ
        );
    }

    #[test]
    fn d8_has_the_most_ports_and_narrowest_trigger() {
        let profiles = DeviceProfile::all();
        let d8 = profiles.iter().find(|p| p.id == ProfileId::D8).unwrap();
        assert_eq!(d8.service_ports, 13);
        let d5 = profiles.iter().find(|p| p.id == ProfileId::D5).unwrap();
        assert_eq!(d5.service_ports, 6);
        let p_d8 = d8.vuln_probabilities[0].1;
        let p_d5 = d5.vuln_probabilities[0].1;
        assert!(
            p_d8 < p_d5 / 100.0,
            "D8's trigger must be far narrower than D5's"
        );
    }

    #[test]
    fn profiles_build_working_devices() {
        use hci::device::VirtualDevice;
        let clock = SimClock::new();
        for profile in DeviceProfile::all() {
            let dev = profile.build(clock.clone(), FuzzRng::seed_from(1));
            assert_eq!(dev.services().len(), profile.service_ports);
            assert!(dev.bluetooth_alive());
            assert_eq!(dev.meta().addr, profile.addr);
        }
    }

    #[test]
    fn table5_profiles_are_all_classic() {
        use hci::device::VirtualDevice;
        for profile in DeviceProfile::all() {
            assert_eq!(profile.link_type, btcore::LinkType::BrEdr);
            assert_eq!(
                profile
                    .build(SimClock::new(), FuzzRng::seed_from(1))
                    .meta()
                    .link_type,
                btcore::LinkType::BrEdr
            );
        }
    }

    #[test]
    fn extended_profiles_cover_the_new_scenarios() {
        use hci::device::VirtualDevice;
        let extended = DeviceProfile::extended();
        assert_eq!(extended.len(), 3);
        let d9 = &extended[0];
        assert_eq!(d9.id, ProfileId::D9);
        assert_eq!(d9.link_type, btcore::LinkType::Le);
        assert_eq!(d9.stack, VendorStack::Zephyr);
        let d10 = &extended[1];
        assert_eq!(d10.link_type, btcore::LinkType::Le);
        let d11 = &extended[2];
        assert_eq!(d11.link_type, btcore::LinkType::BrEdr);
        assert_eq!(d11.stack, VendorStack::BlueZ);
        // Every extended profile carries a seeded vulnerability and builds a
        // working device announcing its link type.
        let clock = SimClock::new();
        for profile in &extended {
            assert!(profile.has_seeded_vulnerability());
            assert!(!profile.vulnerabilities().is_empty());
            let dev = profile.build(clock.clone(), FuzzRng::seed_from(2));
            assert!(dev.bluetooth_alive());
            assert_eq!(dev.meta().link_type, profile.link_type);
        }
        // Addresses stay unique across the full eleven-device set.
        let all: Vec<DeviceProfile> = DeviceProfile::all()
            .into_iter()
            .chain(DeviceProfile::extended())
            .collect();
        let addrs: BTreeSet<_> = all.iter().map(|p| p.addr).collect();
        assert_eq!(addrs.len(), 11);
    }
}
