//! The simulated L2CAP acceptor.
//!
//! [`L2capEndpoint`] is the device-side signalling handler: it routes
//! incoming commands to per-channel state machines, enforces the rejection
//! rules of the specification ("command not understood", "invalid CID in
//! request", "signaling MTU exceeded"), applies the vendor [`Quirks`] that
//! soften those rules on real stacks, and evaluates the device's seeded
//! [`VulnerabilitySpec`]s against every processed packet.

use btcore::{Cid, FuzzRng, Identifier, LinkType, Psm};
use l2cap::code::CommandCode;
use l2cap::command::{
    Command, CommandReject, ConfigureRequest, ConfigureResponse, ConnectionParameterUpdateResponse,
    ConnectionResponse, CreateChannelResponse, CreditBasedConnectionResponse,
    CreditBasedReconfigureResponse, DisconnectionRequest, DisconnectionResponse, EchoResponse,
    InformationResponse, LeCreditBasedConnectionResponse, MoveChannelConfirmationResponse,
    MoveChannelResponse,
};
use l2cap::consts::{ConfigureResult, ConnectionResult, MoveResult, RejectReason};
use l2cap::fields;
use l2cap::jobs::{job_of, Job};
use l2cap::options::ConfigOption;
use l2cap::packet::{L2capFrame, SignalingPacket, DEFAULT_SIGNALING_MTU};
use l2cap::state::{Action, ChannelState};

use std::sync::Arc;

use crate::ccb::CcbTable;
use crate::services::ServiceTable;
use crate::vendor::Quirks;
use crate::vuln::{PacketContext, VulnerabilitySpec};

/// Result of feeding one frame to the endpoint.
#[derive(Debug)]
pub struct EndpointOutcome {
    /// Frames the device sends back, in order.
    pub responses: Vec<L2capFrame>,
    /// The vulnerability that fired while processing this frame, if any.
    pub triggered: Option<VulnerabilitySpec>,
}

impl EndpointOutcome {
    fn none() -> Self {
        EndpointOutcome {
            responses: Vec::new(),
            triggered: None,
        }
    }
}

/// Initial credits the simulated acceptor grants on every LE credit-based
/// channel it accepts.
const LE_ACCEPT_CREDITS: u16 = 8;

use l2cap::ranges::LE_MIN_MTU;

/// The device-side L2CAP signalling acceptor.
pub struct L2capEndpoint {
    link_type: LinkType,
    quirks: Quirks,
    services: ServiceTable,
    signaling_mtu: u16,
    ccbs: CcbTable,
    next_identifier: Identifier,
    /// Shared, immutable vulnerability catalog.  An `Arc` slice (rather than
    /// an owned `Vec`) lets every rebuilt device of a profile share one
    /// allocation and guarantees the per-packet check never copies the specs.
    vulns: Arc<[VulnerabilitySpec]>,
    rng: FuzzRng,
    packets_processed: u64,
    rejects_sent: u64,
    /// Arena recycling response-frame buffers: a reply's payload buffer
    /// returns here once the initiator (and any tap) is done with it.
    arena: btcore::FrameArena,
}

impl L2capEndpoint {
    /// Creates a BR/EDR acceptor with the given behaviour, service table and
    /// seeded vulnerabilities.
    pub fn new(
        quirks: Quirks,
        services: ServiceTable,
        vulns: impl Into<Arc<[VulnerabilitySpec]>>,
        rng: FuzzRng,
    ) -> Self {
        L2capEndpoint::new_on(LinkType::BrEdr, quirks, services, vulns, rng)
    }

    /// Creates an acceptor for the given link type.  An LE acceptor rejects
    /// classic-only commands as "command not understood" and serves the
    /// credit-based channel flows instead of connect/configure.
    pub fn new_on(
        link_type: LinkType,
        quirks: Quirks,
        services: ServiceTable,
        vulns: impl Into<Arc<[VulnerabilitySpec]>>,
        rng: FuzzRng,
    ) -> Self {
        L2capEndpoint {
            link_type,
            quirks,
            services,
            signaling_mtu: DEFAULT_SIGNALING_MTU,
            ccbs: CcbTable::new(),
            next_identifier: Identifier::FIRST,
            vulns: vulns.into(),
            rng,
            packets_processed: 0,
            rejects_sent: 0,
            arena: btcore::FrameArena::new(),
        }
    }

    /// The device's service table.
    pub fn services(&self) -> &ServiceTable {
        &self.services
    }

    /// The link type this acceptor serves.
    pub fn link_type(&self) -> LinkType {
        self.link_type
    }

    /// Number of signalling packets processed so far.
    pub fn packets_processed(&self) -> u64 {
        self.packets_processed
    }

    /// Number of Command Reject packets sent so far.
    pub fn rejects_sent(&self) -> u64 {
        self.rejects_sent
    }

    /// Number of currently open channels.
    pub fn open_channels(&self) -> usize {
        self.ccbs.len()
    }

    /// States visited by every channel of this endpoint so far (useful for
    /// white-box assertions in tests; the black-box experiments use the
    /// sniffer instead).
    pub fn visited_states(&self) -> Vec<ChannelState> {
        let mut out: Vec<ChannelState> = vec![ChannelState::Closed];
        for ccb in self.ccbs.iter() {
            for s in ccb.machine.visited() {
                if !out.contains(s) {
                    out.push(*s);
                }
            }
        }
        out
    }

    fn next_id(&mut self) -> Identifier {
        let id = self.next_identifier;
        self.next_identifier = id.next();
        id
    }

    fn reply(&mut self, identifier: Identifier, command: Command) -> L2capFrame {
        l2cap::packet::signaling_frame_in(&self.arena, identifier, &command)
    }

    fn reject(
        &mut self,
        identifier: Identifier,
        reason: RejectReason,
        data: Vec<u8>,
    ) -> L2capFrame {
        self.rejects_sent += 1;
        self.reply(
            identifier,
            Command::CommandReject(CommandReject { reason, data }),
        )
    }

    /// Processes one inbound L2CAP frame and returns the response frames plus
    /// any vulnerability that fired.
    pub fn handle_frame(&mut self, frame: &L2capFrame) -> EndpointOutcome {
        if !frame.cid.is_signaling() {
            // Data traffic on a (possibly open) channel: the simulated
            // services simply consume it.
            return EndpointOutcome::none();
        }
        let packet = match SignalingPacket::parse_buf(&frame.payload) {
            Ok(p) => p,
            Err(_) => return EndpointOutcome::none(),
        };
        self.packets_processed += 1;

        // Signalling MTU check: oversized C-frames are rejected outright.
        if packet.wire_len() > usize::from(self.signaling_mtu) {
            let rsp = self.reject(
                packet.identifier,
                RejectReason::SignalingMtuExceeded,
                self.signaling_mtu.to_le_bytes().to_vec(),
            );
            return EndpointOutcome {
                responses: vec![rsp],
                triggered: None,
            };
        }

        // Hardened stacks run an extra sanity filter and silently drop
        // anything inconsistent before command handling (the paper's
        // explanation for the devices in which nothing was found).
        if self.quirks.strict_malformed_filtering
            && (!packet.is_length_consistent() || packet.garbage_len() > 0)
        {
            return EndpointOutcome::none();
        }

        self.handle_signaling(&packet)
    }

    fn handle_signaling(&mut self, packet: &SignalingPacket) -> EndpointOutcome {
        let code = CommandCode::from_u8(packet.code);

        // Undefined command codes: "command not understood".
        let Some(code) = code else {
            let rsp = self.reject(
                packet.identifier,
                RejectReason::CommandNotUnderstood,
                Vec::new(),
            );
            return EndpointOutcome {
                responses: vec![rsp],
                triggered: None,
            };
        };

        // Commands belonging to the other transport: "command not
        // understood", regardless of state.  On BR/EDR the LE-only commands
        // keep flowing through the (equivalent) per-channel rejection paths
        // below, preserving the classic acceptor's observable behaviour.
        if self.link_type.is_le() && !code.valid_on(LinkType::Le) {
            let rsp = self.reject(
                packet.identifier,
                RejectReason::CommandNotUnderstood,
                Vec::new(),
            );
            return EndpointOutcome {
                responses: vec![rsp],
                triggered: None,
            };
        }

        // Determine the channel (and thus state/job) this packet lands in.
        let core = fields::extract_core_values(code, &packet.data);
        let (channel_cid, cidp_matches) = self.resolve_channel(code, &core.cidp);
        let (state, job) = match channel_cid {
            Some(cid) => {
                let state = self
                    .ccbs
                    .by_local(cid)
                    .map(|c| c.machine.state())
                    .unwrap_or(ChannelState::Closed);
                (state, job_of(state))
            }
            None => (ChannelState::Closed, Job::Closed),
        };

        // Vulnerability evaluation happens "inside" packet processing: a
        // packet that reaches a defective path takes the stack down before a
        // response is produced.
        let le = fields::extract_le_values(code, &packet.data);
        let rfc_option = match code {
            CommandCode::ConfigureRequest if packet.data.len() >= 4 => {
                ConfigOption::scan_rfc_option(&packet.data[4..])
            }
            CommandCode::ConfigureResponse if packet.data.len() >= 6 => {
                ConfigOption::scan_rfc_option(&packet.data[6..])
            }
            _ => None,
        };
        let ctx = PacketContext {
            job,
            state,
            code: Some(code),
            psm: core.psm,
            cidp: core.cidp,
            cidp_matches_allocation: cidp_matches,
            garbage_len: packet.garbage_len(),
            length_consistent: packet.is_length_consistent(),
            spsm: le.spsm,
            credits: le.credits,
            rfc_option,
        };
        if let Some(vuln) = self.check_vulns(&ctx) {
            return EndpointOutcome {
                responses: Vec::new(),
                triggered: Some(vuln),
            };
        }

        // Decode only for packets that survive the vulnerability evaluation,
        // and without materializing a `Raw` copy of undecodable payloads —
        // dispatch never looks at raw bytes.
        let responses = match Command::decode_opt(packet.code, &packet.data) {
            Some(command) => self.dispatch(packet, code, command, channel_cid),
            // Defined code, unparseable structure (`Command::Raw` territory):
            // strict stacks reject, lenient ones stay silent.
            None => {
                if self.quirks.strict_malformed_filtering {
                    Vec::new()
                } else {
                    vec![self.reject(
                        packet.identifier,
                        RejectReason::CommandNotUnderstood,
                        Vec::new(),
                    )]
                }
            }
        };
        EndpointOutcome {
            responses,
            triggered: None,
        }
    }

    fn check_vulns(&mut self, ctx: &PacketContext) -> Option<VulnerabilitySpec> {
        // Disjoint borrows of `vulns` and `rng` keep this allocation-free on
        // the per-packet path; only the (rare) matching spec is cloned.
        let Self { vulns, rng, .. } = self;
        vulns
            .iter()
            .find(|vuln| vuln.trigger.matches(ctx) && rng.chance(vuln.trigger.hit_probability))
            .cloned()
    }

    /// Resolves which local channel a command refers to, returning the local
    /// CID and whether every CIDP value matched an allocated channel.
    fn resolve_channel(&mut self, code: CommandCode, cidp: &[u16]) -> (Option<Cid>, bool) {
        if cidp.is_empty() {
            return (None, true);
        }
        let mut all_match = true;
        let mut resolved: Option<Cid> = None;
        for value in cidp {
            if let Some(ccb) = self.ccbs.by_any(Cid(*value)) {
                if resolved.is_none() {
                    resolved = Some(ccb.local_cid);
                }
            } else {
                all_match = false;
            }
        }
        if resolved.is_none() {
            // No CIDP value matched.  Lenient stacks still route
            // configuration-job traffic to the most recently opened channel —
            // the behaviour that exposes the null-CCB path.
            let is_config_cmd = matches!(
                code,
                CommandCode::ConfigureRequest | CommandCode::ConfigureResponse
            );
            if self.quirks.lenient_cid_validation_in_config && is_config_cmd {
                resolved = self.ccbs.iter().last().map(|c| c.local_cid);
            }
        }
        (resolved, all_match)
    }

    fn dispatch(
        &mut self,
        packet: &SignalingPacket,
        code: CommandCode,
        command: Command,
        channel_cid: Option<Cid>,
    ) -> Vec<L2capFrame> {
        match command {
            Command::ConnectionRequest(req) => {
                self.handle_connection_like(packet.identifier, req.psm, req.scid, false, 0)
            }
            Command::CreateChannelRequest(req) => self.handle_connection_like(
                packet.identifier,
                req.psm,
                req.scid,
                true,
                req.controller_id,
            ),
            // LE credit-based channel flows; on a BR/EDR link these commands
            // keep falling through to the per-channel rejection paths below.
            Command::LeCreditBasedConnectionRequest(req) if self.link_type.is_le() => self
                .handle_le_connect(
                    packet.identifier,
                    req.spsm,
                    std::slice::from_ref(&req.scid),
                    req.mtu,
                    req.mps,
                    req.initial_credits,
                    false,
                ),
            Command::CreditBasedConnectionRequest(req) if self.link_type.is_le() => self
                .handle_le_connect(
                    packet.identifier,
                    req.spsm,
                    &req.scids,
                    req.mtu,
                    req.mps,
                    req.initial_credits,
                    true,
                ),
            Command::FlowControlCreditInd(ind) if self.link_type.is_le() => {
                self.handle_credit_ind(ind.cid, ind.credits)
            }
            Command::CreditBasedReconfigureRequest(req) if self.link_type.is_le() => {
                self.handle_reconfigure(packet.identifier, req.mtu, req.mps, &req.dcids)
            }
            Command::ConnectionParameterUpdateRequest(_) if self.link_type.is_le() => {
                vec![self.reply(
                    packet.identifier,
                    Command::ConnectionParameterUpdateResponse(ConnectionParameterUpdateResponse {
                        result: 0,
                    }),
                )]
            }
            Command::EchoRequest(req) => {
                if self.quirks.supports_echo {
                    // The decoded request owns its payload copy; the echo
                    // moves it into the response instead of re-copying.
                    vec![self.reply(
                        packet.identifier,
                        Command::EchoResponse(EchoResponse { data: req.data }),
                    )]
                } else {
                    Vec::new()
                }
            }
            Command::InformationRequest(req) => {
                let data = match req.info_type {
                    0x0002 => vec![0xB8, 0x02, 0x00, 0x00], // extended features mask
                    0x0003 => vec![0x06, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00],
                    _ => Vec::new(),
                };
                let result = if (0x0001..=0x0003).contains(&req.info_type) {
                    0
                } else {
                    1
                };
                vec![self.reply(
                    packet.identifier,
                    Command::InformationResponse(InformationResponse {
                        info_type: req.info_type,
                        result,
                        data,
                    }),
                )]
            }
            // Raw payloads whose code is defined but whose structure did not
            // parse: strict stacks reject them, lenient ones ignore them.
            Command::Raw { .. } => {
                if self.quirks.strict_malformed_filtering {
                    Vec::new()
                } else {
                    vec![self.reject(
                        packet.identifier,
                        RejectReason::CommandNotUnderstood,
                        Vec::new(),
                    )]
                }
            }
            _ => self.handle_channel_command(packet, code, channel_cid),
        }
    }

    fn handle_connection_like(
        &mut self,
        identifier: Identifier,
        psm: Psm,
        scid: Cid,
        is_create: bool,
        _controller_id: u8,
    ) -> Vec<L2capFrame> {
        let make_response = |dcid: Cid, scid: Cid, result: ConnectionResult| {
            if is_create {
                Command::CreateChannelResponse(CreateChannelResponse {
                    dcid,
                    scid,
                    result,
                    status: 0,
                })
            } else {
                Command::ConnectionResponse(ConnectionResponse {
                    dcid,
                    scid,
                    result,
                    status: 0,
                })
            }
        };

        if is_create && !self.quirks.supports_amp_channels {
            let rsp = make_response(Cid::NULL, scid, ConnectionResult::RefusedNoResources);
            self.rejects_sent += 1;
            return vec![self.reply(identifier, rsp)];
        }

        // Refusals: unsupported PSM, pairing-protected PSM, channel limit.
        let result = if !self.services.supports(psm) {
            Some(ConnectionResult::RefusedPsmNotSupported)
        } else if !self.services.connectable_without_pairing(psm) {
            Some(ConnectionResult::RefusedSecurityBlock)
        } else if self.ccbs.len() >= self.quirks.max_channels_per_link {
            Some(ConnectionResult::RefusedNoResources)
        } else {
            None
        };
        if let Some(refusal) = result {
            self.rejects_sent += 1;
            let rsp = make_response(Cid::NULL, scid, refusal);
            return vec![self.reply(identifier, rsp)];
        }

        // Accept: allocate a CCB and run its state machine.
        let id = self.ccbs.allocate(psm, scid);
        let (local_cid, actions) = {
            let ccb = self
                .ccbs
                .by_remote(scid)
                .expect("freshly allocated channel must be resolvable");
            let reaction = ccb.machine.on_command(
                if is_create {
                    CommandCode::CreateChannelRequest
                } else {
                    CommandCode::ConnectionRequest
                },
                true,
            );
            (ccb.local_cid, reaction.actions)
        };
        let _ = id;

        let mut out = Vec::new();
        for action in actions {
            match action {
                Action::Respond(
                    CommandCode::ConnectionResponse | CommandCode::CreateChannelResponse,
                ) => {
                    let rsp = make_response(local_cid, scid, ConnectionResult::Success);
                    out.push(self.reply(identifier, rsp));
                }
                Action::Initiate(CommandCode::ConfigureRequest) => {
                    let id = self.next_id();
                    out.push(self.reply(
                        id,
                        Command::ConfigureRequest(ConfigureRequest {
                            dcid: scid,
                            flags: 0,
                            options: vec![ConfigOption::Mtu(DEFAULT_SIGNALING_MTU)],
                        }),
                    ));
                }
                _ => {}
            }
        }
        out
    }

    /// Handles an LE credit-based connection request (`0x14`, one channel)
    /// or an enhanced credit-based connection request (`0x17`, up to five
    /// channels at once).
    #[allow(clippy::too_many_arguments)]
    fn handle_le_connect(
        &mut self,
        identifier: Identifier,
        spsm: u16,
        scids: &[Cid],
        mtu: u16,
        mps: u16,
        initial_credits: u16,
        enhanced: bool,
    ) -> Vec<L2capFrame> {
        let make_response = |dcids: Vec<Cid>, result: u16| {
            if enhanced {
                Command::CreditBasedConnectionResponse(CreditBasedConnectionResponse {
                    mtu,
                    mps,
                    initial_credits: LE_ACCEPT_CREDITS,
                    result,
                    dcids,
                })
            } else {
                Command::LeCreditBasedConnectionResponse(LeCreditBasedConnectionResponse {
                    dcid: dcids.first().copied().unwrap_or(Cid::NULL),
                    mtu,
                    mps,
                    initial_credits: LE_ACCEPT_CREDITS,
                    result,
                })
            }
        };

        // Refusals, in the order the specification checks them: undefined or
        // unsupported SPSM, pairing-protected SPSM, unacceptable parameters
        // (including the five-channel cap of the enhanced request), a source
        // CID already bound to a channel (or repeated within the request),
        // channel budget.
        let psm = Psm(spsm);
        let budget = self
            .quirks
            .max_channels_per_link
            .saturating_sub(self.ccbs.len());
        let scid_taken = |ccbs: &CcbTable, scid: Cid| ccbs.iter().any(|c| c.remote_cid == scid);
        let refusal = if !psm.is_valid_spsm() || !self.services.supports(psm) {
            Some(0x0002) // SPSM not supported
        } else if !self.services.connectable_without_pairing(psm) {
            Some(0x0005) // insufficient authentication
        } else if mtu < LE_MIN_MTU || mps < LE_MIN_MTU || scids.is_empty() || scids.len() > 5 {
            Some(0x000B) // unacceptable parameters
        } else if scids
            .iter()
            .enumerate()
            .any(|(i, scid)| scids[..i].contains(scid) || scid_taken(&self.ccbs, *scid))
        {
            Some(0x000A) // source CID already allocated
        } else if budget == 0 {
            Some(0x0004) // no resources
        } else {
            None
        };
        if let Some(result) = refusal {
            self.rejects_sent += 1;
            return vec![self.reply(identifier, make_response(Vec::new(), result))];
        }

        let code = if enhanced {
            CommandCode::CreditBasedConnectionRequest
        } else {
            CommandCode::LeCreditBasedConnectionRequest
        };
        let requested = scids.len();
        let mut dcids = Vec::new();
        for scid in scids.iter().take(requested.min(budget)) {
            self.ccbs
                .allocate_on(LinkType::Le, psm, *scid, initial_credits);
            let ccb = self
                .ccbs
                .by_remote(*scid)
                .expect("freshly allocated channel must be resolvable");
            ccb.machine.on_command(code, true);
            dcids.push(ccb.local_cid);
        }
        // Partial grants answer "some connections refused – insufficient
        // resources" while still carrying the allocated DCIDs.
        let result = if dcids.len() < requested { 0x0004 } else { 0 };
        vec![self.reply(identifier, make_response(dcids, result))]
    }

    /// Handles a flow-control credit indication: accumulates the grant and —
    /// as the specification requires — disconnects the channel when the
    /// accumulated total exceeds 65535.
    fn handle_credit_ind(&mut self, cid: Cid, credits: u16) -> Vec<L2capFrame> {
        let Some(ccb) = self.ccbs.by_any(cid) else {
            // Credits for a channel that does not exist are ignored silently
            // (an indication has no response to reject with).
            return Vec::new();
        };
        let (local, remote) = (ccb.local_cid, ccb.remote_cid);
        let overflow = ccb.grant_credits(credits);
        ccb.machine
            .on_command(CommandCode::FlowControlCreditInd, true);
        if overflow {
            self.ccbs.release_by_local(local);
            let id = self.next_id();
            return vec![self.reply(
                id,
                Command::DisconnectionRequest(DisconnectionRequest {
                    dcid: remote,
                    scid: local,
                }),
            )];
        }
        Vec::new()
    }

    /// Handles an enhanced credit-based reconfigure request over the named
    /// channels.
    fn handle_reconfigure(
        &mut self,
        identifier: Identifier,
        mtu: u16,
        mps: u16,
        dcids: &[Cid],
    ) -> Vec<L2capFrame> {
        let all_known =
            !dcids.is_empty() && dcids.iter().all(|cid| self.ccbs.by_local(*cid).is_some());
        let result = if !all_known {
            0x0002 // invalid destination CID
        } else if mtu < LE_MIN_MTU || mps < LE_MIN_MTU {
            0x0001 // unacceptable parameters
        } else {
            for cid in dcids {
                if let Some(ccb) = self.ccbs.by_local(*cid) {
                    ccb.machine
                        .on_command(CommandCode::CreditBasedReconfigureRequest, true);
                }
            }
            0
        };
        if result != 0 {
            self.rejects_sent += 1;
        }
        vec![self.reply(
            identifier,
            Command::CreditBasedReconfigureResponse(CreditBasedReconfigureResponse { result }),
        )]
    }

    fn handle_channel_command(
        &mut self,
        packet: &SignalingPacket,
        code: CommandCode,
        channel_cid: Option<Cid>,
    ) -> Vec<L2capFrame> {
        let Some(local_cid) = channel_cid else {
            // No channel matched.  Responses to requests we never made are
            // either ignored (lenient) or rejected; channel requests with an
            // unknown CID are rejected with "invalid CID".
            if code.is_response() && self.quirks.lenient_unexpected_responses {
                return Vec::new();
            }
            let reason = if code.is_response() {
                RejectReason::CommandNotUnderstood
            } else {
                RejectReason::InvalidCidInRequest
            };
            return vec![self.reject(packet.identifier, reason, Vec::new())];
        };

        // Moves are refused outright on stacks without AMP support.
        if matches!(code, CommandCode::MoveChannelRequest) && !self.quirks.supports_amp_channels {
            let icid = self
                .ccbs
                .by_local(local_cid)
                .map(|c| c.remote_cid)
                .unwrap_or(Cid::NULL);
            self.rejects_sent += 1;
            return vec![self.reply(
                packet.identifier,
                Command::MoveChannelResponse(MoveChannelResponse {
                    icid,
                    result: MoveResult::RefusedNotAllowed,
                }),
            )];
        }

        let (remote_cid, reaction) = {
            let ccb = self
                .ccbs
                .by_local(local_cid)
                .expect("resolved channel must exist");
            (ccb.remote_cid, ccb.machine.on_command(code, true))
        };

        let mut out = Vec::new();
        let mut release = false;
        for action in &reaction.actions {
            match action {
                Action::Respond(CommandCode::ConfigureResponse) => {
                    out.push(self.reply(
                        packet.identifier,
                        Command::ConfigureResponse(ConfigureResponse {
                            scid: remote_cid,
                            flags: 0,
                            result: ConfigureResult::Success,
                            options: Vec::new(),
                        }),
                    ));
                }
                Action::Respond(CommandCode::DisconnectionResponse) => {
                    out.push(self.reply(
                        packet.identifier,
                        Command::DisconnectionResponse(DisconnectionResponse {
                            dcid: local_cid,
                            scid: remote_cid,
                        }),
                    ));
                    release = true;
                }
                Action::Respond(CommandCode::MoveChannelResponse) => {
                    out.push(self.reply(
                        packet.identifier,
                        Command::MoveChannelResponse(MoveChannelResponse {
                            icid: remote_cid,
                            result: MoveResult::Success,
                        }),
                    ));
                }
                Action::Respond(CommandCode::MoveChannelConfirmationResponse) => {
                    out.push(self.reply(
                        packet.identifier,
                        Command::MoveChannelConfirmationResponse(MoveChannelConfirmationResponse {
                            icid: remote_cid,
                        }),
                    ));
                }
                Action::Respond(other) => {
                    // Generic response we do not model structurally.
                    out.push(self.reply(
                        packet.identifier,
                        Command::Raw {
                            code: other.value(),
                            data: Vec::new(),
                        },
                    ));
                }
                Action::Initiate(CommandCode::ConfigureRequest) => {
                    let id = self.next_id();
                    out.push(self.reply(
                        id,
                        Command::ConfigureRequest(ConfigureRequest {
                            dcid: remote_cid,
                            flags: 0,
                            options: vec![ConfigOption::Mtu(DEFAULT_SIGNALING_MTU)],
                        }),
                    ));
                }
                Action::Initiate(_) => {}
                Action::Reject(reason) => {
                    if code.is_response() && self.quirks.lenient_unexpected_responses {
                        // Quirk: unexpected responses are dropped silently.
                        continue;
                    }
                    out.push(self.reject(packet.identifier, *reason, Vec::new()));
                }
                Action::Ignore => {}
            }
        }
        if release {
            self.ccbs.release_by_local(local_cid);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vendor::VendorStack;
    use l2cap::command::{
        ConnectionRequest, DisconnectionRequest, EchoRequest, InformationRequest,
    };
    use l2cap::packet::signaling_frame;

    fn endpoint(stack: VendorStack, services: ServiceTable) -> L2capEndpoint {
        L2capEndpoint::new(
            stack.default_quirks(),
            services,
            Vec::new(),
            FuzzRng::seed_from(7),
        )
    }

    fn connect_frame(psm: Psm, scid: u16, id: u8) -> L2capFrame {
        signaling_frame(
            Identifier(id),
            Command::ConnectionRequest(ConnectionRequest {
                psm,
                scid: Cid(scid),
            }),
        )
    }

    fn first_command(frames: &[L2capFrame]) -> Vec<Command> {
        frames
            .iter()
            .map(|f| l2cap::packet::parse_signaling(f).unwrap().command())
            .collect()
    }

    #[test]
    fn sdp_connect_succeeds_and_allocates_a_channel() {
        let mut ep = endpoint(VendorStack::BlueDroid, ServiceTable::typical(6));
        let out = ep.handle_frame(&connect_frame(Psm::SDP, 0x0040, 1));
        assert!(out.triggered.is_none());
        let cmds = first_command(&out.responses);
        match &cmds[0] {
            Command::ConnectionResponse(rsp) => {
                assert_eq!(rsp.result, ConnectionResult::Success);
                assert_eq!(rsp.scid, Cid(0x0040));
                assert!(rsp.dcid.is_dynamic());
            }
            other => panic!("expected connection response, got {other:?}"),
        }
        assert_eq!(ep.open_channels(), 1);

        // The device's own Configuration Request goes out as soon as the
        // initiator sends configuration traffic for the channel.
        let out = ep.handle_frame(&signaling_frame(
            Identifier(2),
            Command::ConfigureRequest(ConfigureRequest {
                dcid: Cid(0x0040),
                flags: 0,
                options: vec![],
            }),
        ));
        let cmds = first_command(&out.responses);
        assert!(cmds
            .iter()
            .any(|c| matches!(c, Command::ConfigureRequest(_))));
        assert!(cmds
            .iter()
            .any(|c| matches!(c, Command::ConfigureResponse(_))));
    }

    #[test]
    fn unsupported_psm_is_refused() {
        let mut ep = endpoint(VendorStack::BlueDroid, ServiceTable::sdp_only());
        let out = ep.handle_frame(&connect_frame(Psm::AVDTP, 0x0040, 1));
        match &first_command(&out.responses)[0] {
            Command::ConnectionResponse(rsp) => {
                assert_eq!(rsp.result, ConnectionResult::RefusedPsmNotSupported)
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ep.open_channels(), 0);
    }

    #[test]
    fn pairing_protected_psm_is_refused_with_security_block() {
        let mut ep = endpoint(VendorStack::BlueDroid, ServiceTable::typical(6));
        let out = ep.handle_frame(&connect_frame(Psm::HID_CONTROL, 0x0040, 1));
        match &first_command(&out.responses)[0] {
            Command::ConnectionResponse(rsp) => {
                assert_eq!(rsp.result, ConnectionResult::RefusedSecurityBlock)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn channel_limit_refuses_with_no_resources() {
        let mut ep = endpoint(VendorStack::AppleRtkit, ServiceTable::typical(6));
        let limit = VendorStack::AppleRtkit
            .default_quirks()
            .max_channels_per_link;
        for i in 0..limit {
            let out = ep.handle_frame(&connect_frame(Psm::SDP, 0x0040 + i as u16, i as u8 + 1));
            match &first_command(&out.responses)[0] {
                Command::ConnectionResponse(rsp) => {
                    assert_eq!(rsp.result, ConnectionResult::Success)
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let out = ep.handle_frame(&connect_frame(Psm::SDP, 0x00A0, 99));
        match &first_command(&out.responses)[0] {
            Command::ConnectionResponse(rsp) => {
                assert_eq!(rsp.result, ConnectionResult::RefusedNoResources)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn echo_and_information_requests_are_answered() {
        let mut ep = endpoint(VendorStack::BlueZ, ServiceTable::typical(13));
        let out = ep.handle_frame(&signaling_frame(
            Identifier(9),
            Command::EchoRequest(EchoRequest {
                data: vec![1, 2, 3],
            }),
        ));
        assert!(matches!(
            first_command(&out.responses)[0],
            Command::EchoResponse(_)
        ));

        let out = ep.handle_frame(&signaling_frame(
            Identifier(10),
            Command::InformationRequest(InformationRequest { info_type: 2 }),
        ));
        match &first_command(&out.responses)[0] {
            Command::InformationResponse(rsp) => assert_eq!(rsp.result, 0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn full_handshake_reaches_open_and_disconnect_frees_the_channel() {
        let mut ep = endpoint(VendorStack::BlueDroid, ServiceTable::typical(6));
        ep.handle_frame(&connect_frame(Psm::SDP, 0x0040, 1));

        // Fuzzer sends its Configure Request addressed to the allocated DCID.
        let dcid = 0x0040u16; // first allocation
        let out = ep.handle_frame(&signaling_frame(
            Identifier(2),
            Command::ConfigureRequest(ConfigureRequest {
                dcid: Cid(dcid),
                flags: 0,
                options: vec![ConfigOption::Mtu(672)],
            }),
        ));
        assert!(first_command(&out.responses)
            .iter()
            .any(|c| matches!(c, Command::ConfigureResponse(_))));

        // Fuzzer answers the device's own Configure Request.
        ep.handle_frame(&signaling_frame(
            Identifier(1),
            Command::ConfigureResponse(ConfigureResponse {
                scid: Cid(dcid),
                flags: 0,
                result: ConfigureResult::Success,
                options: Vec::new(),
            }),
        ));
        assert!(ep.visited_states().contains(&ChannelState::Open));

        let out = ep.handle_frame(&signaling_frame(
            Identifier(3),
            Command::DisconnectionRequest(DisconnectionRequest {
                dcid: Cid(dcid),
                scid: Cid(0x0040),
            }),
        ));
        assert!(matches!(
            first_command(&out.responses)[0],
            Command::DisconnectionResponse(_)
        ));
        assert_eq!(ep.open_channels(), 0);
    }

    #[test]
    fn unknown_cid_in_request_is_rejected_on_strict_stacks() {
        let mut ep = endpoint(VendorStack::Windows, ServiceTable::typical(10));
        let out = ep.handle_frame(&signaling_frame(
            Identifier(5),
            Command::DisconnectionRequest(DisconnectionRequest {
                dcid: Cid(0x0999),
                scid: Cid(0x0998),
            }),
        ));
        match &first_command(&out.responses)[0] {
            Command::CommandReject(rej) => {
                assert_eq!(rej.reason, RejectReason::InvalidCidInRequest)
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ep.rejects_sent(), 1);
    }

    #[test]
    fn lenient_stack_routes_mismatched_config_cid_to_latest_channel() {
        let mut ep = endpoint(VendorStack::BlueDroid, ServiceTable::typical(6));
        ep.handle_frame(&connect_frame(Psm::SDP, 0x0040, 1));
        // Configure Request with a DCID the device never allocated.
        let out = ep.handle_frame(&signaling_frame(
            Identifier(2),
            Command::ConfigureRequest(ConfigureRequest {
                dcid: Cid(0x7B8F),
                flags: 0,
                options: Vec::new(),
            }),
        ));
        // Not rejected: the lenient stack processed it against the open
        // channel.
        assert!(first_command(&out.responses)
            .iter()
            .any(|c| matches!(c, Command::ConfigureResponse(_))));
    }

    #[test]
    fn oversized_signaling_packet_is_rejected_with_mtu_exceeded() {
        let mut ep = endpoint(VendorStack::BlueDroid, ServiceTable::typical(6));
        let packet = SignalingPacket::from_raw(Identifier(7), 0x08, vec![0xAA; 700]);
        let frame = packet.into_frame();
        let out = ep.handle_frame(&frame);
        match &first_command(&out.responses)[0] {
            Command::CommandReject(rej) => {
                assert_eq!(rej.reason, RejectReason::SignalingMtuExceeded)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn strict_stack_silently_drops_garbage_packets() {
        let mut ep = endpoint(VendorStack::AppleIos, ServiceTable::typical(8));
        // Connection request with a garbage tail.
        let mut data = vec![0x01, 0x00, 0x40, 0x00];
        data.extend_from_slice(&[0xD2, 0x3A, 0x91, 0x0E]);
        let packet = SignalingPacket {
            identifier: Identifier(3),
            code: 0x02,
            declared_data_len: 4,
            data: data.into(),
        };
        let out = ep.handle_frame(&packet.into_frame());
        assert!(out.responses.is_empty());
        assert!(out.triggered.is_none());
    }

    #[test]
    fn seeded_vulnerability_fires_on_matching_malformed_packet() {
        let vuln = VulnerabilitySpec::bluedroid_config_null_deref(1.0);
        let mut ep = L2capEndpoint::new(
            VendorStack::BlueDroid.default_quirks(),
            ServiceTable::typical(6),
            vec![vuln.clone()],
            FuzzRng::seed_from(11),
        );
        ep.handle_frame(&connect_frame(Psm::SDP, 0x0040, 1));

        // Malformed Configure Request: unallocated DCID plus garbage.
        let packet = SignalingPacket {
            identifier: Identifier(6),
            code: 0x04,
            declared_data_len: 8,
            data: vec![
                0x8F, 0x7B, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xD2, 0x3A, 0x91, 0x0E,
            ]
            .into(),
        };
        let out = ep.handle_frame(&packet.into_frame());
        assert_eq!(
            out.triggered.as_ref().map(|v| v.id.as_str()),
            Some(vuln.id.as_str())
        );
        assert!(out.responses.is_empty());
    }

    #[test]
    fn well_formed_traffic_never_triggers_the_seeded_vulnerability() {
        let vuln = VulnerabilitySpec::bluedroid_config_null_deref(1.0);
        let mut ep = L2capEndpoint::new(
            VendorStack::BlueDroid.default_quirks(),
            ServiceTable::typical(6),
            vec![vuln],
            FuzzRng::seed_from(11),
        );
        let out = ep.handle_frame(&connect_frame(Psm::SDP, 0x0040, 1));
        assert!(out.triggered.is_none());
        let out = ep.handle_frame(&signaling_frame(
            Identifier(2),
            Command::ConfigureRequest(ConfigureRequest {
                dcid: Cid(0x0040),
                flags: 0,
                options: vec![ConfigOption::Mtu(672)],
            }),
        ));
        assert!(out.triggered.is_none());
    }

    #[test]
    fn unknown_command_code_gets_command_not_understood() {
        let mut ep = endpoint(VendorStack::BlueZ, ServiceTable::typical(13));
        let packet = SignalingPacket::from_raw(Identifier(1), 0x7E, vec![1, 2, 3]);
        let out = ep.handle_frame(&packet.into_frame());
        match &first_command(&out.responses)[0] {
            Command::CommandReject(rej) => {
                assert_eq!(rej.reason, RejectReason::CommandNotUnderstood)
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_signaling_frames_are_consumed_silently() {
        let mut ep = endpoint(VendorStack::BlueDroid, ServiceTable::typical(6));
        let out = ep.handle_frame(&L2capFrame::new(Cid(0x0040), vec![1, 2, 3]));
        assert!(out.responses.is_empty());
        assert_eq!(ep.packets_processed(), 0);
    }

    fn le_endpoint(services: ServiceTable) -> L2capEndpoint {
        L2capEndpoint::new_on(
            LinkType::Le,
            VendorStack::Zephyr.default_quirks(),
            services,
            Vec::new(),
            FuzzRng::seed_from(7),
        )
    }

    fn le_connect_frame(spsm: u16, scid: u16, id: u8) -> L2capFrame {
        signaling_frame(
            Identifier(id),
            Command::LeCreditBasedConnectionRequest(
                l2cap::command::LeCreditBasedConnectionRequest {
                    spsm,
                    scid: Cid(scid),
                    mtu: 512,
                    mps: 64,
                    initial_credits: 8,
                },
            ),
        )
    }

    #[test]
    fn le_credit_based_connect_succeeds_on_a_supported_spsm() {
        let mut ep = le_endpoint(ServiceTable::le_typical(3));
        let out = ep.handle_frame(&le_connect_frame(Psm::EATT.value(), 0x0040, 1));
        match &first_command(&out.responses)[0] {
            Command::LeCreditBasedConnectionResponse(rsp) => {
                assert_eq!(rsp.result, 0);
                assert!(rsp.dcid.is_dynamic());
                assert!(rsp.initial_credits > 0);
            }
            other => panic!("expected LE credit based response, got {other:?}"),
        }
        assert_eq!(ep.open_channels(), 1);
        // The channel went straight to OPEN — no configuration phase on LE.
        assert!(ep.visited_states().contains(&ChannelState::Open));
        assert!(!ep
            .visited_states()
            .contains(&ChannelState::WaitConfigReqRsp));
    }

    #[test]
    fn le_connect_refusals_use_the_spec_result_codes() {
        let mut ep = le_endpoint(ServiceTable::le_typical(4));
        // Undefined SPSM (outside 0x0001..=0x00FF).
        let out = ep.handle_frame(&le_connect_frame(0x1234, 0x0040, 1));
        match &first_command(&out.responses)[0] {
            Command::LeCreditBasedConnectionResponse(rsp) => assert_eq!(rsp.result, 0x0002),
            other => panic!("unexpected {other:?}"),
        }
        // Pairing-protected SPSM.
        let out = ep.handle_frame(&le_connect_frame(0x0081, 0x0041, 2));
        match &first_command(&out.responses)[0] {
            Command::LeCreditBasedConnectionResponse(rsp) => assert_eq!(rsp.result, 0x0005),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ep.open_channels(), 0);
    }

    #[test]
    fn enhanced_connect_opens_up_to_five_channels_and_reconfigure_works() {
        let mut ep = le_endpoint(ServiceTable::le_typical(3));
        let scids: Vec<Cid> = (0x0040..0x0045).map(Cid).collect();
        let out = ep.handle_frame(&signaling_frame(
            Identifier(1),
            Command::CreditBasedConnectionRequest(l2cap::command::CreditBasedConnectionRequest {
                spsm: Psm::EATT.value(),
                mtu: 247,
                mps: 64,
                initial_credits: 4,
                scids: scids.clone(),
            }),
        ));
        let dcids = match &first_command(&out.responses)[0] {
            Command::CreditBasedConnectionResponse(rsp) => {
                // Five channels requested against Zephyr's budget of four:
                // a partial grant with "some refused – no resources".
                assert_eq!(rsp.result, 0x0004);
                assert_eq!(rsp.dcids.len(), 4);
                rsp.dcids.clone()
            }
            other => panic!("unexpected {other:?}"),
        };
        let out = ep.handle_frame(&signaling_frame(
            Identifier(2),
            Command::CreditBasedReconfigureRequest(l2cap::command::CreditBasedReconfigureRequest {
                mtu: 1024,
                mps: 128,
                dcids,
            }),
        ));
        match &first_command(&out.responses)[0] {
            Command::CreditBasedReconfigureResponse(rsp) => assert_eq!(rsp.result, 0),
            other => panic!("unexpected {other:?}"),
        }
        assert!(ep.visited_states().contains(&ChannelState::WaitConfig));
    }

    #[test]
    fn reused_or_repeated_source_cids_are_refused_with_0x000a() {
        let mut ep = le_endpoint(ServiceTable::le_typical(3));
        ep.handle_frame(&le_connect_frame(Psm::EATT.value(), 0x0040, 1));
        assert_eq!(ep.open_channels(), 1);
        // A second connect reusing the bound SCID: refused, nothing leaks.
        let out = ep.handle_frame(&le_connect_frame(Psm::EATT.value(), 0x0040, 2));
        match &first_command(&out.responses)[0] {
            Command::LeCreditBasedConnectionResponse(rsp) => assert_eq!(rsp.result, 0x000A),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ep.open_channels(), 1);
        // An enhanced request repeating an SCID within itself: same refusal.
        let out = ep.handle_frame(&signaling_frame(
            Identifier(3),
            Command::CreditBasedConnectionRequest(l2cap::command::CreditBasedConnectionRequest {
                spsm: Psm::EATT.value(),
                mtu: 247,
                mps: 64,
                initial_credits: 4,
                scids: vec![Cid(0x0050), Cid(0x0050)],
            }),
        ));
        match &first_command(&out.responses)[0] {
            Command::CreditBasedConnectionResponse(rsp) => {
                assert_eq!(rsp.result, 0x000A);
                assert!(rsp.dcids.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ep.open_channels(), 1);
    }

    #[test]
    fn enhanced_connect_with_more_than_five_channels_is_refused() {
        let mut ep = le_endpoint(ServiceTable::le_typical(3));
        let out = ep.handle_frame(&signaling_frame(
            Identifier(1),
            Command::CreditBasedConnectionRequest(l2cap::command::CreditBasedConnectionRequest {
                spsm: Psm::EATT.value(),
                mtu: 247,
                mps: 64,
                initial_credits: 4,
                scids: (0x0040..0x0046).map(Cid).collect(),
            }),
        ));
        match &first_command(&out.responses)[0] {
            Command::CreditBasedConnectionResponse(rsp) => {
                assert_eq!(rsp.result, 0x000B);
                assert!(rsp.dcids.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(ep.open_channels(), 0);
    }

    #[test]
    fn credit_overflow_disconnects_the_channel() {
        let mut ep = le_endpoint(ServiceTable::le_typical(3));
        ep.handle_frame(&le_connect_frame(Psm::EATT.value(), 0x0040, 1));
        assert_eq!(ep.open_channels(), 1);
        // Two maximal grants push the accumulated total past 65535; the
        // acceptor must disconnect per the specification.
        let grant = |credits: u16, id: u8| {
            signaling_frame(
                Identifier(id),
                Command::FlowControlCreditInd(l2cap::command::FlowControlCreditInd {
                    cid: Cid(0x0040),
                    credits,
                }),
            )
        };
        let out = ep.handle_frame(&grant(0xFFF0, 2));
        assert!(out.responses.is_empty());
        let out = ep.handle_frame(&grant(0xFFF0, 3));
        assert!(matches!(
            first_command(&out.responses)[0],
            Command::DisconnectionRequest(_)
        ));
        assert_eq!(ep.open_channels(), 0);
    }

    #[test]
    fn classic_commands_are_rejected_on_le_symmetrically() {
        let mut ep = le_endpoint(ServiceTable::le_typical(3));
        for frame in [
            connect_frame(Psm::SDP, 0x0040, 1),
            signaling_frame(
                Identifier(2),
                Command::EchoRequest(EchoRequest { data: vec![1] }),
            ),
            signaling_frame(
                Identifier(3),
                Command::ConfigureRequest(ConfigureRequest {
                    dcid: Cid(0x0040),
                    flags: 0,
                    options: vec![],
                }),
            ),
        ] {
            let out = ep.handle_frame(&frame);
            match &first_command(&out.responses)[0] {
                Command::CommandReject(rej) => {
                    assert_eq!(rej.reason, RejectReason::CommandNotUnderstood)
                }
                other => panic!("classic command must be rejected on LE, got {other:?}"),
            }
        }
        assert_eq!(ep.open_channels(), 0);
    }

    #[test]
    fn move_refused_without_amp_support() {
        let mut ep = endpoint(VendorStack::Windows, ServiceTable::typical(10));
        ep.handle_frame(&connect_frame(Psm::SDP, 0x0040, 1));
        let out = ep.handle_frame(&signaling_frame(
            Identifier(4),
            Command::MoveChannelRequest(l2cap::command::MoveChannelRequest {
                icid: Cid(0x0040),
                dest_controller_id: 1,
            }),
        ));
        match &first_command(&out.responses)[0] {
            Command::MoveChannelResponse(rsp) => {
                assert_eq!(rsp.result, MoveResult::RefusedNotAllowed)
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
