//! SDP-lite service/port tables.
//!
//! The paper's target-scanning phase asks the device for its supported
//! service ports and tries to connect to each one, looking for a port that
//! does not require pairing (falling back to SDP, which never does).  The
//! simulated devices expose the same information through a [`ServiceTable`].

use btcore::Psm;
use serde::{Deserialize, Serialize};

/// One service offered by a device.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceRecord {
    /// The service's L2CAP port.
    pub psm: Psm,
    /// Human-readable service name.
    pub name: String,
    /// Whether connecting to this port requires a completed pairing.
    pub requires_pairing: bool,
}

impl ServiceRecord {
    /// Creates a service record.
    pub fn new(psm: Psm, name: impl Into<String>, requires_pairing: bool) -> Self {
        ServiceRecord {
            psm,
            name: name.into(),
            requires_pairing,
        }
    }
}

/// The set of services a device offers.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceTable {
    records: Vec<ServiceRecord>,
}

impl ServiceTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ServiceTable::default()
    }

    /// Creates a table from records.
    pub fn from_records(records: Vec<ServiceRecord>) -> Self {
        ServiceTable { records }
    }

    /// A minimal table containing only SDP (every Bluetooth device has it).
    pub fn sdp_only() -> Self {
        ServiceTable::from_records(vec![ServiceRecord::new(Psm::SDP, "SDP", false)])
    }

    /// Builds a typical table with `n` services; SDP and the first few audio /
    /// HID services never require pairing, the rest do.  Used by the device
    /// profiles to model "supports 6 service ports" vs "supports 13 service
    /// ports" without enumerating real SDP records.
    pub fn typical(n: usize) -> Self {
        let catalogue: [(Psm, &str, bool); 13] = [
            (Psm::SDP, "SDP", false),
            (Psm::RFCOMM, "RFCOMM", true),
            (Psm::AVDTP, "AVDTP", false),
            (Psm::AVCTP, "AVCTP", false),
            (Psm::HID_CONTROL, "HID Control", true),
            (Psm::HID_INTERRUPT, "HID Interrupt", true),
            (Psm::BNEP, "BNEP", true),
            (Psm::AVCTP_BROWSING, "AVCTP Browsing", false),
            (Psm::ATT, "ATT", false),
            (Psm::UPNP, "UPnP", true),
            (Psm::TCS_BIN, "TCS-BIN", true),
            (Psm::IPSP, "IPSP", true),
            (Psm::OTS, "OTS", true),
        ];
        let records = catalogue
            .iter()
            .take(n.clamp(1, catalogue.len()))
            .map(|(psm, name, pairing)| ServiceRecord::new(*psm, *name, *pairing))
            .collect();
        ServiceTable { records }
    }

    /// Builds a typical LE service table with `n` services, drawn from the
    /// SPSM catalogue (SIG-assigned fixed SPSMs first, then vendor SPSMs in
    /// the dynamic `0x0080..=0x00FF` range).  The LE counterpart of
    /// [`ServiceTable::typical`]: EATT and OTS never require pairing, the
    /// deeper vendor channels do.
    pub fn le_typical(n: usize) -> Self {
        let catalogue: [(Psm, &str, bool); 6] = [
            (Psm::EATT, "EATT", false),
            (Psm::OTS_LE, "OTS", false),
            (Psm::LE_DYNAMIC_START, "Vendor Stream", false),
            (Psm(0x0081), "Vendor Sync", true),
            (Psm(0x0082), "Vendor Debug", true),
            (Psm(0x0029), "3D Sync", true),
        ];
        let records = catalogue
            .iter()
            .take(n.clamp(1, catalogue.len()))
            .map(|(psm, name, pairing)| ServiceRecord::new(*psm, *name, *pairing))
            .collect();
        ServiceTable { records }
    }

    /// Adds a record.
    pub fn push(&mut self, record: ServiceRecord) {
        self.records.push(record);
    }

    /// All records.
    pub fn records(&self) -> &[ServiceRecord] {
        &self.records
    }

    /// Number of services (the paper correlates this with time-to-detection).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Looks up a service by port.
    pub fn find(&self, psm: Psm) -> Option<&ServiceRecord> {
        self.records.iter().find(|r| r.psm == psm)
    }

    /// Returns `true` if the given port is offered at all.
    pub fn supports(&self, psm: Psm) -> bool {
        self.find(psm).is_some()
    }

    /// Returns `true` if the given port is offered and does not require
    /// pairing.
    pub fn connectable_without_pairing(&self, psm: Psm) -> bool {
        self.find(psm).map(|r| !r.requires_pairing).unwrap_or(false)
    }

    /// The ports that do not require pairing (potentially exploitable ports
    /// in the paper's terminology).
    pub fn pairing_free_ports(&self) -> Vec<Psm> {
        self.records
            .iter()
            .filter(|r| !r.requires_pairing)
            .map(|r| r.psm)
            .collect()
    }

    /// Every offered port.
    pub fn ports(&self) -> Vec<Psm> {
        self.records.iter().map(|r| r.psm).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdp_only_table() {
        let t = ServiceTable::sdp_only();
        assert_eq!(t.len(), 1);
        assert!(t.supports(Psm::SDP));
        assert!(t.connectable_without_pairing(Psm::SDP));
        assert!(!t.is_empty());
    }

    #[test]
    fn typical_table_sizes() {
        assert_eq!(ServiceTable::typical(6).len(), 6);
        assert_eq!(ServiceTable::typical(13).len(), 13);
        // Clamped to the catalogue size.
        assert_eq!(ServiceTable::typical(50).len(), 13);
        assert_eq!(ServiceTable::typical(0).len(), 1);
    }

    #[test]
    fn sdp_is_always_pairing_free() {
        for n in 1..=13 {
            let t = ServiceTable::typical(n);
            assert!(t.connectable_without_pairing(Psm::SDP));
            assert!(t.pairing_free_ports().contains(&Psm::SDP));
        }
    }

    #[test]
    fn le_typical_table_exposes_eatt_without_pairing() {
        let t = ServiceTable::le_typical(4);
        assert_eq!(t.len(), 4);
        assert!(t.connectable_without_pairing(Psm::EATT));
        assert!(t.supports(Psm::LE_DYNAMIC_START));
        for record in t.records() {
            assert!(
                record.psm.is_valid_spsm(),
                "{} must be a defined SPSM",
                record.psm
            );
        }
        // Clamped like the classic catalogue.
        assert_eq!(ServiceTable::le_typical(50).len(), 6);
        assert_eq!(ServiceTable::le_typical(0).len(), 1);
    }

    #[test]
    fn unsupported_port_is_not_connectable() {
        let t = ServiceTable::typical(3);
        assert!(!t.supports(Psm(0x0F0F)));
        assert!(!t.connectable_without_pairing(Psm(0x0F0F)));
        assert!(t.find(Psm(0x0F0F)).is_none());
    }

    #[test]
    fn ports_lists_every_record() {
        let t = ServiceTable::typical(5);
        assert_eq!(t.ports().len(), 5);
        assert!(t.ports().contains(&Psm::SDP));
    }

    #[test]
    fn push_extends_the_table() {
        let mut t = ServiceTable::new();
        assert!(t.is_empty());
        t.push(ServiceRecord::new(Psm::RFCOMM, "Serial", true));
        assert_eq!(t.len(), 1);
        assert!(t.supports(Psm::RFCOMM));
        assert!(!t.connectable_without_pairing(Psm::RFCOMM));
    }
}
