//! Channel control blocks (CCBs) and CID allocation.
//!
//! Real stacks keep a `t_l2c_ccb`-style control block per L2CAP channel —
//! exactly the structure the paper's case study shows being dereferenced
//! through a null pointer (`l2c_csm_execute(t_l2c_ccb*, ...)`).  The
//! simulated acceptor keeps the equivalent here: one [`ChannelControlBlock`]
//! per channel with the local/remote CIDs, the PSM it was opened for and its
//! state machine.

use btcore::{Cid, LinkType, Psm};
use l2cap::state::StateMachine;
use serde::{Deserialize, Serialize};

/// Identifier of one channel control block within a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CcbId(pub usize);

/// Per-channel bookkeeping of the simulated acceptor.
#[derive(Debug)]
pub struct ChannelControlBlock {
    /// The CID allocated locally (what the initiator must use as DCID).
    pub local_cid: Cid,
    /// The initiator's CID (what we use as DCID when talking back).
    pub remote_cid: Cid,
    /// The service port the channel was opened for.
    pub psm: Psm,
    /// The channel's protocol state machine.
    pub machine: StateMachine,
    /// Accumulated send credits the initiator has granted this channel
    /// (LE credit-based channels only; stays zero on basic-mode channels).
    /// Wider than `u16` so the overflow check can see past the wire limit.
    pub credits: u32,
}

impl ChannelControlBlock {
    /// Adds a credit grant to the channel's accumulated total and returns
    /// `true` if the total now exceeds 65535 — the condition under which the
    /// specification requires the channel to be disconnected.
    pub fn grant_credits(&mut self, grant: u16) -> bool {
        self.credits = self.credits.saturating_add(u32::from(grant));
        self.credits > u32::from(u16::MAX)
    }
}

/// The CCB table of one device: allocates local CIDs in the dynamic range and
/// resolves incoming CID references.
#[derive(Debug, Default)]
pub struct CcbTable {
    channels: Vec<ChannelControlBlock>,
    next_cid: u16,
}

impl CcbTable {
    /// Creates an empty table; local CIDs are allocated from `0x0040` up.
    pub fn new() -> Self {
        CcbTable {
            channels: Vec::new(),
            next_cid: Cid::DYNAMIC_START.value(),
        }
    }

    /// Number of live channels.
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// Returns `true` if no channels are open.
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// Allocates a new BR/EDR channel for `psm` with the initiator's
    /// `remote_cid`.  Returns the new block's id.
    pub fn allocate(&mut self, psm: Psm, remote_cid: Cid) -> CcbId {
        self.allocate_on(LinkType::BrEdr, psm, remote_cid, 0)
    }

    /// Allocates a new channel on the given link type, seeding the credit
    /// counter for LE credit-based channels.  Returns the new block's id.
    pub fn allocate_on(
        &mut self,
        link: LinkType,
        psm: Psm,
        remote_cid: Cid,
        initial_credits: u16,
    ) -> CcbId {
        let local_cid = Cid(self.next_cid);
        self.next_cid = self
            .next_cid
            .wrapping_add(1)
            .max(Cid::DYNAMIC_START.value());
        self.channels.push(ChannelControlBlock {
            local_cid,
            remote_cid,
            psm,
            machine: StateMachine::for_link(link),
            credits: u32::from(initial_credits),
        });
        CcbId(self.channels.len() - 1)
    }

    /// Releases the channel with the given local CID; returns `true` if it
    /// existed.
    pub fn release_by_local(&mut self, local_cid: Cid) -> bool {
        let before = self.channels.len();
        self.channels.retain(|c| c.local_cid != local_cid);
        self.channels.len() != before
    }

    /// Looks up a channel by the CID we allocated (the DCID the initiator
    /// addresses).
    pub fn by_local(&mut self, local_cid: Cid) -> Option<&mut ChannelControlBlock> {
        self.channels.iter_mut().find(|c| c.local_cid == local_cid)
    }

    /// Looks up a channel by the initiator's CID (the SCID it announced).
    pub fn by_remote(&mut self, remote_cid: Cid) -> Option<&mut ChannelControlBlock> {
        self.channels
            .iter_mut()
            .find(|c| c.remote_cid == remote_cid)
    }

    /// Looks up a channel by either CID, preferring the local match.  This is
    /// the lenient resolution lenient stacks perform when a payload CID does
    /// not identify a channel exactly.
    pub fn by_any(&mut self, cid: Cid) -> Option<&mut ChannelControlBlock> {
        if self.channels.iter().any(|c| c.local_cid == cid) {
            return self.by_local(cid);
        }
        self.by_remote(cid)
    }

    /// Iterates over all channels.
    pub fn iter(&self) -> impl Iterator<Item = &ChannelControlBlock> {
        self.channels.iter()
    }

    /// Iterates mutably over all channels.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut ChannelControlBlock> {
        self.channels.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_starts_in_dynamic_range_and_increments() {
        let mut table = CcbTable::new();
        table.allocate(Psm::SDP, Cid(0x0040));
        table.allocate(Psm::SDP, Cid(0x0041));
        let cids: Vec<Cid> = table.iter().map(|c| c.local_cid).collect();
        assert_eq!(cids, vec![Cid(0x0040), Cid(0x0041)]);
        assert!(cids.iter().all(|c| c.is_dynamic()));
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn lookup_by_local_remote_and_any() {
        let mut table = CcbTable::new();
        table.allocate(Psm::SDP, Cid(0x0077));
        assert!(table.by_local(Cid(0x0040)).is_some());
        assert!(table.by_remote(Cid(0x0077)).is_some());
        assert!(table.by_any(Cid(0x0040)).is_some());
        assert!(table.by_any(Cid(0x0077)).is_some());
        assert!(table.by_any(Cid(0x1234)).is_none());
        assert!(table.by_local(Cid(0x0077)).is_none());
    }

    #[test]
    fn release_removes_the_channel() {
        let mut table = CcbTable::new();
        table.allocate(Psm::SDP, Cid(0x0050));
        assert!(table.release_by_local(Cid(0x0040)));
        assert!(!table.release_by_local(Cid(0x0040)));
        assert!(table.is_empty());
    }

    #[test]
    fn le_allocation_tracks_credits_and_flags_overflow() {
        let mut table = CcbTable::new();
        table.allocate_on(LinkType::Le, Psm::EATT, Cid(0x0040), 10);
        let ccb = table.by_local(Cid(0x0040)).unwrap();
        assert_eq!(ccb.machine.link(), LinkType::Le);
        assert_eq!(ccb.credits, 10);
        assert!(!ccb.grant_credits(100));
        assert_eq!(ccb.credits, 110);
        // One oversized grant pushes the accumulated total past 65535.
        assert!(ccb.grant_credits(u16::MAX));
    }

    #[test]
    fn each_channel_has_its_own_state_machine() {
        let mut table = CcbTable::new();
        table.allocate(Psm::SDP, Cid(0x0060));
        table.allocate(Psm::AVDTP, Cid(0x0061));
        let states: Vec<_> = table.iter().map(|c| c.machine.state()).collect();
        assert_eq!(states.len(), 2);
    }
}
